//! `gallery` — a command-line client over a durable, file-backed Gallery.
//!
//! State lives in a data directory (default `./gallery-data`): metadata in
//! a WAL-backed store, blobs in a content-sharded directory. Every
//! invocation opens the store, applies one operation, and exits — the
//! paper's stateless-service property at CLI scale.
//!
//! ```text
//! gallery [--data DIR] [--retries N] [--timeout-ms MS] COMMAND ...
//!
//! commands:
//!   create-model PROJECT BASE_ID [--name N] [--owner O] [--desc D]
//!   models [--project P]
//!   upload MODEL_ID BLOB_FILE [--meta key=value]...
//!   instances MODEL_ID | base BASE_ID
//!   fetch INSTANCE_ID OUT_FILE
//!   metric INSTANCE_ID NAME SCOPE VALUE
//!   metrics INSTANCE_ID
//!   query [key=value|key<value|key>value]...
//!   deploy MODEL_ID INSTANCE_ID ENV
//!   deployed MODEL_ID ENV
//!   dep-add MODEL_ID UPSTREAM_ID | dep-rm MODEL_ID UPSTREAM_ID
//!   deps MODEL_ID
//!   deprecate (model|instance) ID
//!   stage INSTANCE_ID [NEW_STAGE]
//!   health INSTANCE_ID
//!   monitor INSTANCE_ID [--window-ms W] [--mean M] [--std S] [--z Z]
//!   alerts INSTANCE_ID EXPR [--for-ms F] [--action NAME] [--env ENV]
//!           [monitor flags]
//!   audit [--repair]
//!   compact
//!   stats [--probe]
//!   stats --cluster [--nodes N] [--shards S] [--replication R] [--writes W]
//!   explain TABLE [key=value|key<value|key>value]...
//!   slowlog [--probe]
//!   profile [--collapsed] [--probe]
//!   lint RULES_FILE | lint --expr EXPR
//!   lockgraph [--dot]
//!   cluster [--nodes N] [--shards S] [--replication R] [--writes W]
//!           [--kill NODE] [--seed SEED]
//! ```
//!
//! `monitor` replays the instance's stored production metrics through a
//! sliding-window [`ModelMonitor`] and prints the snapshot plus the
//! published `gallery_monitor_*` gauges. `alerts` runs the same replay,
//! then compiles EXPR (rule language over metric family names, e.g.
//! `gallery_monitor_drift_score > 3.0`) into an alert rule, evaluates one
//! tick, and prints the status board; `--action deprecate_instance` or
//! `--action rollback_production` arms the corresponding lifecycle hook.
//!
//! `stats` opens the store (replaying the WAL) and prints the
//! Prometheus-style exposition of every telemetry counter, gauge, and
//! histogram the invocation produced — with `--probe` it first runs a
//! model scan + query so the DAL/query paths show non-zero samples.
//! `stats --cluster` instead spins up an in-process sharded cluster,
//! drives a few writes and reads through it, and prints the *federated*
//! exposition ([`ClusterRouter::federate`]): every node's registry
//! relabeled with `node="<id>"` plus the derived `gallery_cluster_*`
//! gauges (docs/observability.md, "Cluster tracing & federation").
//!
//! `explain` plans and runs one store-level query against TABLE (e.g.
//! `models`, `instances`) and prints the [`Explain`] artifact: chosen
//! access path, estimated vs. actual rows scanned, deferred-index
//! tail-merge size, and per-stage timings. `slowlog` prints the store's
//! bounded slow-query ring (docs/observability.md, "Profiling & query
//! introspection"); `profile` folds the tracer's finished spans into a
//! self/total-time profile — `--collapsed` emits collapsed-stack lines
//! that flamegraph tooling ingests directly. All three read *this
//! invocation's* process-local state, so `--probe` first drives a model
//! scan + query (wrapped in spans for `profile`) to produce samples.
//!
//! `lockgraph` turns on lock-rank checking (normally off in release
//! builds), drives an in-memory model workload through the full write
//! path, and prints the acquired-before lock graph plus any `GLnnnn`
//! ordering diagnostics (docs/concurrency.md) — `--dot` emits Graphviz
//! instead of text. A running server exposes the same dump as
//! `Probe{section: "lockgraph"}`.
//!
//! `--retries N` re-attempts an operation up to N times when it fails
//! with a *transient* storage error (I/O, injected fault); semantic
//! errors (duplicate key, missing model) are never retried. `--timeout-ms`
//! caps the total time spent across attempts and backoff.

use bytes::Bytes;
use gallery::core::metadata::Metadata;
use gallery::core::monitor::{ModelMonitor, MonitorConfig, MonitorSnapshot, ScoringEvent};
use gallery::core::ManualClock;
use gallery::prelude::*;
use gallery::rules::{compile_condition, register_lifecycle_actions};
use gallery::store::blob::localfs::LocalFsBlobStore;
use gallery::store::{Dal, MetadataStore, SyncPolicy};
use gallery::telemetry::{AlertEngine, AlertRule};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn open(data_dir: &std::path::Path) -> Result<Gallery, String> {
    let meta = MetadataStore::durable(data_dir.join("wal.log"), SyncPolicy::Always)
        .map_err(|e| e.to_string())?;
    let blobs = LocalFsBlobStore::open(data_dir.join("blobs")).map_err(|e| e.to_string())?;
    let dal = Dal::new(Arc::new(meta), Arc::new(blobs));
    Gallery::open(Arc::new(dal), Arc::new(gallery::core::SystemClock)).map_err(|e| e.to_string())
}

/// Retry `op` up to `retries` attempts, backing off exponentially, as
/// long as the failure is transient ([`GalleryError::is_transient`]) and
/// the optional wall-clock budget has room for the next sleep.
fn retrying<T>(
    retries: u32,
    timeout_ms: Option<u64>,
    mut op: impl FnMut() -> Result<T, GalleryError>,
) -> Result<T, GalleryError> {
    let started = std::time::Instant::now();
    let budget = timeout_ms.map(std::time::Duration::from_millis);
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < retries.max(1) => {
                let delay = std::time::Duration::from_millis(10u64 << attempt.min(6));
                if let Some(budget) = budget {
                    if started.elapsed() + delay > budget {
                        return Err(e);
                    }
                }
                std::thread::sleep(delay);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 < args.len() {
        let value = args.remove(pos + 1);
        args.remove(pos);
        Some(value)
    } else {
        args.remove(pos);
        None
    }
}

fn collect_meta(args: &mut Vec<String>) -> Metadata {
    let mut meta = Metadata::new();
    while let Some(kv) = flag_value(args, "--meta") {
        if let Some((k, v)) = kv.split_once('=') {
            if let Ok(n) = v.parse::<f64>() {
                meta.insert(k, n);
            } else {
                meta.insert(k, v);
            }
        }
    }
    meta
}

fn parse_constraint(s: &str) -> Option<Constraint> {
    for (sep, op) in [
        ("<=", Op::Le),
        (">=", Op::Ge),
        ("<", Op::Lt),
        (">", Op::Gt),
        ("=", Op::Eq),
    ] {
        if let Some((k, v)) = s.split_once(sep) {
            let value: gallery::store::Value = match v.parse::<f64>() {
                Ok(n) if sep != "=" || v.contains('.') => n.into(),
                _ => v.into(),
            };
            return Some(Constraint {
                field: k.to_owned(),
                op,
                value,
            });
        }
    }
    None
}

/// Parse the shared `monitor`/`alerts` tuning flags. The CLI default
/// window is a day: stored metric histories usually span far more than the
/// library's 60 s live-stream default.
fn monitor_config_from_flags(args: &mut Vec<String>) -> Result<MonitorConfig, String> {
    let mut config = MonitorConfig {
        window_ms: 86_400_000,
        ..MonitorConfig::default()
    };
    if let Some(v) = flag_value(args, "--window-ms") {
        config.window_ms = v.parse().map_err(|e| format!("bad --window-ms: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--mean") {
        config.baseline_mean = v.parse().map_err(|e| format!("bad --mean: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--std") {
        config.baseline_std = v.parse().map_err(|e| format!("bad --std: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--z") {
        config.drift_z_threshold = v.parse().map_err(|e| format!("bad --z: {e}"))?;
    }
    Ok(config)
}

/// Replay an instance's stored production metrics through a sliding-window
/// monitor, publishing `gallery_monitor_*` into the global registry.
fn replay_monitor(
    g: &Gallery,
    instance_id: &InstanceId,
    config: MonitorConfig,
) -> Result<(ModelMonitor, MonitorSnapshot), String> {
    let mut records = g
        .metrics_of_instance(instance_id)
        .map_err(|e| e.to_string())?;
    records.retain(|m| m.scope == MetricScope::Production);
    records.sort_by_key(|m| m.created_at);
    let last_ts = records.last().map(|m| m.created_at).unwrap_or(0);
    let clock = Arc::new(ManualClock::new(last_ts + 1));
    let mut monitor = ModelMonitor::new(
        instance_id.clone(),
        config,
        clock,
        gallery::telemetry::global(),
    );
    for m in &records {
        monitor.record(ScoringEvent::new(m.created_at, m.value));
    }
    let snapshot = monitor.evaluate();
    Ok((monitor, snapshot))
}

fn print_snapshot(snapshot: &MonitorSnapshot) {
    println!("window events:   {}", snapshot.window_events);
    match snapshot.drift_score {
        Some(score) => println!(
            "drift:           z={score:.3} ({})",
            if snapshot.drifted { "DRIFTED" } else { "ok" }
        ),
        None => println!("drift:           (empty window)"),
    }
    println!("completeness:    {:.3}", snapshot.feature_completeness);
    println!("staleness:       {} ms", snapshot.staleness_ms);
}

/// `gallery lint` — run the rule-language static analyzer.
///
/// `gallery lint FILE` lints a rule document (JSON object) or rule set
/// (JSON array); `gallery lint --expr EXPR` lints an alert condition.
/// Findings are rendered rustc-style; error-severity findings make the
/// command fail, which is what makes it usable as a pre-commit gate.
fn cmd_lint(args: &mut Vec<String>) -> Result<(), String> {
    use gallery::rules::{analyze_condition, analyze_rule_json, analyze_rule_set, LintReport};

    let report: LintReport = if let Some(expr) = flag_value(args, "--expr") {
        analyze_condition(&expr)
    } else {
        let [path]: [String; 1] = std::mem::take(args)
            .try_into()
            .map_err(|_| "usage: lint RULES_FILE | lint --expr EXPR".to_string())?;
        let content =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let trimmed = content.trim_start();
        if trimmed.starts_with('[') {
            match serde_json::from_str::<Vec<gallery::rules::RuleDoc>>(&content) {
                Ok(docs) => analyze_rule_set(&docs),
                Err(e) => return Err(format!("{path}: not a JSON array of rule documents: {e}")),
            }
        } else {
            analyze_rule_json(&content)
        }
    };
    if report.is_empty() {
        println!("clean: no diagnostics");
        return Ok(());
    }
    print!("{}", report.render());
    if report.has_errors() {
        return Err("lint failed".into());
    }
    Ok(())
}

/// `gallery lockgraph [--dot]` — dump the lock-rank analyzer's report.
///
/// Rank checking is off in release builds by default, so the command
/// turns it on first, then drives an in-memory model workload through
/// the full write path (create → upload → metric → query → fetch) to
/// populate the acquired-before graph before printing the report.
/// `GLnnnn` diagnostics (docs/concurrency.md) make the command fail, so
/// it doubles as a pre-commit smoke gate for lock-order regressions.
fn cmd_lockgraph(args: &mut Vec<String>) -> Result<(), String> {
    use gallery::core::sync::checker;

    let dot = args.iter().any(|a| a == "--dot");
    args.retain(|a| a != "--dot");
    if !args.is_empty() {
        return Err("usage: lockgraph [--dot]".into());
    }

    checker::enable();
    checker::reset();
    let g = Gallery::in_memory();
    let model = g
        .create_model(ModelSpec::new("lockgraph", "smoke").name("probe"))
        .map_err(|e| e.to_string())?;
    let instance = g
        .upload_instance(
            &model.id,
            InstanceSpec::new(),
            Bytes::from_static(b"weights"),
        )
        .map_err(|e| e.to_string())?;
    g.insert_metric(
        &instance.id,
        MetricSpec::new("mape", MetricScope::Validation, 0.1),
    )
    .map_err(|e| e.to_string())?;
    g.find_models(&Query::all()).map_err(|e| e.to_string())?;
    g.fetch_instance_blob(&instance.id)
        .map_err(|e| e.to_string())?;

    let report = checker::report();
    if dot {
        print!("{}", report.render_dot());
    } else {
        print!("{}", report.render_text());
    }
    if !report.is_clean() {
        return Err(format!(
            "lock graph has {} diagnostics",
            report.diagnostics.len()
        ));
    }
    Ok(())
}

/// `cluster` — run an in-process kill-a-node failover drill against a
/// sharded, replicated cluster (docs/replication.md) and print the
/// report. Exits non-zero if any replication invariant is violated.
fn cmd_cluster(args: &mut Vec<String>) -> Result<(), String> {
    use gallery::core::ManualClock as Clock;
    use gallery::service::telemetry::Telemetry;
    use gallery::service::{run_drill, ClusterConfig, DrillPlan, SimCluster};

    let parse = |args: &mut Vec<String>, flag: &str, default: u64| -> Result<u64, String> {
        flag_value(args, flag)
            .map(|v| v.parse().map_err(|e| format!("bad {flag}: {e}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let nodes = parse(args, "--nodes", 3)? as usize;
    let shards = parse(args, "--shards", nodes as u64 * 2)? as u32;
    let replication = parse(args, "--replication", 2)? as usize;
    let writes = parse(args, "--writes", 30)? as usize;
    let kill = parse(args, "--kill", 0)? as usize % nodes.max(1);
    let seed = parse(args, "--seed", 1)?;

    let clock = Clock::new(0);
    let cluster = SimCluster::start_with(
        ClusterConfig::new(nodes)
            .with_shards(shards)
            .with_replication(replication)
            .with_follower_reads(true, 0),
        Arc::new(clock.clone()),
        Telemetry::new(),
    );
    let plan = DrillPlan::kill_one(seed, writes, kill);
    let report = run_drill(&cluster, &clock, &plan);
    println!("cluster:    {nodes} nodes, {shards} shards, replication {replication}");
    println!(
        "drill:      kill node {kill} at write {}, revive at {} (seed {seed})",
        writes / 3,
        writes * 2 / 3
    );
    println!(
        "writes:     {} attempted, {} acked, {} rejected",
        report.attempted, report.acked, report.rejected
    );
    println!("failovers:  {}", report.failovers);
    println!(
        "reads:      {} served by followers, max lag {} ops (budget {})",
        report.follower_reads, report.max_follower_lag_ops, report.staleness_budget_ops
    );
    println!("lost acked: {}", report.lost);
    println!("diverged:   {}", report.diverged);
    if report.holds() {
        println!("drill holds: zero lost acknowledged writes, zero divergence, bounded staleness");
        Ok(())
    } else {
        Err("drill violated a replication invariant".into())
    }
}

/// `stats --cluster` — build an in-process sharded cluster, push a small
/// traced workload through the router, and print the federated metrics
/// exposition the router serves for `Probe{section: "cluster"}`.
fn cmd_cluster_stats(args: &mut Vec<String>) -> Result<(), String> {
    use gallery::core::ManualClock as Clock;
    use gallery::service::telemetry::Telemetry;
    use gallery::service::{ClusterConfig, GalleryClient, SimCluster};

    let parse = |args: &mut Vec<String>, flag: &str, default: u64| -> Result<u64, String> {
        flag_value(args, flag)
            .map(|v| v.parse().map_err(|e| format!("bad {flag}: {e}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let nodes = parse(args, "--nodes", 3)? as usize;
    let shards = parse(args, "--shards", nodes as u64 * 2)? as u32;
    let replication = parse(args, "--replication", 2)? as usize;
    let writes = parse(args, "--writes", 12)? as usize;

    let clock = Clock::new(0);
    let cluster = SimCluster::start_with(
        ClusterConfig::new(nodes)
            .with_shards(shards)
            .with_replication(replication)
            .with_follower_reads(true, 0),
        Arc::new(clock),
        Telemetry::new(),
    );
    let client =
        GalleryClient::new(cluster.transport()).with_telemetry(Arc::clone(cluster.telemetry()));
    let mut ids = Vec::new();
    for i in 0..writes {
        let model = client
            .create_model("stats", &format!("bv-{i}"), "m", "cli", "", "{}")
            .map_err(|e| e.to_string())?;
        ids.push(model.id);
    }
    for id in &ids {
        client.get_model(id).map_err(|e| e.to_string())?;
    }
    client.model_query(Vec::new()).map_err(|e| e.to_string())?;
    print!("{}", client.probe("cluster").map_err(|e| e.to_string())?);
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let data_dir =
        PathBuf::from(flag_value(&mut args, "--data").unwrap_or_else(|| "gallery-data".to_owned()));
    let retries: u32 = flag_value(&mut args, "--retries")
        .map(|v| v.parse().map_err(|e| format!("bad --retries: {e}")))
        .transpose()?
        .unwrap_or(1);
    let timeout_ms: Option<u64> = flag_value(&mut args, "--timeout-ms")
        .map(|v| v.parse().map_err(|e| format!("bad --timeout-ms: {e}")))
        .transpose()?;
    let Some(command) = (if args.is_empty() {
        None
    } else {
        Some(args.remove(0))
    }) else {
        eprintln!("usage: gallery [--data DIR] COMMAND ... (see --help)");
        return Err("no command".into());
    };
    if command == "--help" || command == "help" {
        println!("see the module docs at the top of src/bin/gallery.rs for the command list");
        return Ok(());
    }
    // `lint` is author-time static analysis: it needs no store, so it is
    // dispatched before the data directory is opened (or created).
    if command == "lint" {
        return cmd_lint(&mut args);
    }
    // `lockgraph` instruments its own in-memory workload — store-less too.
    if command == "lockgraph" {
        return cmd_lockgraph(&mut args);
    }
    // `cluster` builds its own in-process multi-node cluster — it never
    // touches the data directory either.
    if command == "cluster" {
        return cmd_cluster(&mut args);
    }
    // `stats --cluster` likewise: federated metrics come from an
    // in-process cluster, not the local store.
    if command == "stats" && args.iter().any(|a| a == "--cluster") {
        args.retain(|a| a != "--cluster");
        return cmd_cluster_stats(&mut args);
    }
    let g = Arc::new(open(&data_dir)?);
    let err = |e: GalleryError| e.to_string();

    match command.as_str() {
        "create-model" => {
            let name = flag_value(&mut args, "--name").unwrap_or_else(|| "unnamed".into());
            let owner = flag_value(&mut args, "--owner").unwrap_or_default();
            let desc = flag_value(&mut args, "--desc").unwrap_or_default();
            let meta = collect_meta(&mut args);
            let [project, base]: [String; 2] = args
                .try_into()
                .map_err(|_| "usage: create-model PROJECT BASE_ID".to_string())?;
            let spec = ModelSpec::new(project, base)
                .name(name)
                .owner(owner)
                .description(desc)
                .metadata(meta);
            let model =
                retrying(retries, timeout_ms, || g.create_model(spec.clone())).map_err(err)?;
            println!("{}", model.id);
        }
        "models" => {
            let project = flag_value(&mut args, "--project");
            let mut q = Query::all();
            if let Some(p) = project {
                q = q.and(Constraint::eq("project", p));
            }
            for m in g.find_models(&q).map_err(err)? {
                println!("{}\t{}\t{}\t{}", m.id, m.project, m.base_version_id, m.name);
            }
        }
        "upload" => {
            let meta = collect_meta(&mut args);
            let [model_id, blob_file]: [String; 2] = args
                .try_into()
                .map_err(|_| "usage: upload MODEL_ID BLOB_FILE [--meta k=v]".to_string())?;
            let blob = std::fs::read(&blob_file).map_err(|e| format!("{blob_file}: {e}"))?;
            let model_id = ModelId(model_id);
            let blob = Bytes::from(blob);
            let inst = retrying(retries, timeout_ms, || {
                g.upload_instance(
                    &model_id,
                    InstanceSpec::new().metadata(meta.clone()),
                    blob.clone(),
                )
            })
            .map_err(err)?;
            println!("{}\t{}", inst.id, inst.display_version);
        }
        "instances" => {
            let [model_id]: [String; 1] = args
                .try_into()
                .map_err(|_| "usage: instances MODEL_ID".to_string())?;
            for i in g.instances_of_model(&ModelId(model_id)).map_err(err)? {
                println!(
                    "{}\t{}\t{}\t{:?}",
                    i.id, i.display_version, i.created_at, i.trigger
                );
            }
        }
        "base" => {
            let [base]: [String; 1] = args
                .try_into()
                .map_err(|_| "usage: base BASE_ID".to_string())?;
            for i in g.instances_of_base_version(&base).map_err(err)? {
                println!("{}\t{}\t{}", i.id, i.display_version, i.created_at);
            }
        }
        "fetch" => {
            let [instance_id, out]: [String; 2] = args
                .try_into()
                .map_err(|_| "usage: fetch INSTANCE_ID OUT_FILE".to_string())?;
            let instance_id = InstanceId(instance_id);
            let blob = retrying(retries, timeout_ms, || g.fetch_instance_blob(&instance_id))
                .map_err(err)?;
            std::fs::write(&out, &blob).map_err(|e| format!("{out}: {e}"))?;
            println!("{} bytes -> {out}", blob.len());
        }
        "metric" => {
            let [instance_id, name, scope, value]: [String; 4] = args
                .try_into()
                .map_err(|_| "usage: metric INSTANCE_ID NAME SCOPE VALUE".to_string())?;
            let scope = MetricScope::parse(&scope).map_err(err)?;
            let value: f64 = value.parse().map_err(|e| format!("bad value: {e}"))?;
            let instance_id = InstanceId(instance_id);
            retrying(retries, timeout_ms, || {
                g.insert_metric(&instance_id, MetricSpec::new(name.clone(), scope, value))
            })
            .map_err(err)?;
            println!("ok");
        }
        "metrics" => {
            let [instance_id]: [String; 1] = args
                .try_into()
                .map_err(|_| "usage: metrics INSTANCE_ID".to_string())?;
            for m in g
                .metrics_of_instance(&InstanceId(instance_id))
                .map_err(err)?
            {
                println!("{}\t{}\t{}\t{}", m.name, m.scope, m.value, m.created_at);
            }
        }
        "query" => {
            let constraints: Vec<Constraint> = args
                .iter()
                .map(|s| parse_constraint(s).ok_or_else(|| format!("bad constraint: {s}")))
                .collect::<Result<_, _>>()?;
            for i in g.model_query(&constraints).map_err(err)? {
                println!("{}\t{}\t{}", i.id, i.base_version_id, i.display_version);
            }
        }
        "deploy" => {
            let [model_id, instance_id, env]: [String; 3] = args
                .try_into()
                .map_err(|_| "usage: deploy MODEL_ID INSTANCE_ID ENV".to_string())?;
            let (model_id, instance_id) = (ModelId(model_id), InstanceId(instance_id));
            retrying(retries, timeout_ms, || {
                g.deploy(&model_id, &instance_id, &env)
            })
            .map_err(err)?;
            println!("ok");
        }
        "deployed" => {
            let [model_id, env]: [String; 2] = args
                .try_into()
                .map_err(|_| "usage: deployed MODEL_ID ENV".to_string())?;
            match g.deployed_instance(&ModelId(model_id), &env).map_err(err)? {
                Some(i) => println!("{i}"),
                None => println!("(none)"),
            }
        }
        "dep-add" | "dep-rm" => {
            let [model_id, upstream]: [String; 2] = args
                .try_into()
                .map_err(|_| format!("usage: {command} MODEL_ID UPSTREAM_ID"))?;
            let (m, u) = (ModelId(model_id), ModelId(upstream));
            if command == "dep-add" {
                g.add_dependency(&m, &u).map_err(err)?;
            } else {
                g.remove_dependency(&m, &u).map_err(err)?;
            }
            println!("ok");
        }
        "deps" => {
            let [model_id]: [String; 1] = args
                .try_into()
                .map_err(|_| "usage: deps MODEL_ID".to_string())?;
            let m = ModelId(model_id);
            println!("upstream:");
            for u in g.upstream_of(&m).map_err(err)? {
                println!("  {u}");
            }
            println!("downstream:");
            for d in g.downstream_of(&m).map_err(err)? {
                println!("  {d}");
            }
        }
        "deprecate" => {
            let [kind, id]: [String; 2] = args
                .try_into()
                .map_err(|_| "usage: deprecate (model|instance) ID".to_string())?;
            match kind.as_str() {
                "model" => g.deprecate_model(&ModelId(id)).map_err(err)?,
                "instance" => g.deprecate_instance(&InstanceId(id)).map_err(err)?,
                other => return Err(format!("unknown kind {other}")),
            }
            println!("ok");
        }
        "stage" => {
            if args.len() == 1 {
                let stage = g.stage_of(&InstanceId(args.remove(0))).map_err(err)?;
                println!("{stage}");
            } else if args.len() == 2 {
                let id = InstanceId(args.remove(0));
                let next = Stage::parse(&args.remove(0)).map_err(err)?;
                let stage = g.set_stage(&id, next).map_err(err)?;
                println!("{stage}");
            } else {
                return Err("usage: stage INSTANCE_ID [NEW_STAGE]".into());
            }
        }
        "health" => {
            let [instance_id]: [String; 1] = args
                .try_into()
                .map_err(|_| "usage: health INSTANCE_ID".to_string())?;
            let report = g.health_report(&InstanceId(instance_id)).map_err(err)?;
            println!("score:           {:.2}", report.score());
            println!(
                "reproducibility: {:.0}%",
                100.0 * report.reproducibility_score
            );
            println!("missing fields:  {:?}", report.missing_fields);
            println!(
                "metrics:         training={} validation={} production={}",
                report.has_training_metrics,
                report.has_validation_metrics,
                report.has_production_metrics
            );
            for skew in &report.skew {
                println!(
                    "skew {}:        offline {:.4} vs production {:.4} ({})",
                    skew.metric_name,
                    skew.offline_value,
                    skew.production_value,
                    if skew.skewed { "SKEWED" } else { "ok" }
                );
            }
        }
        "monitor" => {
            let config = monitor_config_from_flags(&mut args)?;
            let [instance_id]: [String; 1] = args.try_into().map_err(|_| {
                "usage: monitor INSTANCE_ID [--window-ms W] [--mean M] [--std S] [--z Z]"
                    .to_string()
            })?;
            let (_, snapshot) = replay_monitor(&g, &InstanceId(instance_id), config)?;
            print_snapshot(&snapshot);
            for line in gallery::telemetry::global().render_text().lines() {
                if line.contains("gallery_monitor_") {
                    println!("{line}");
                }
            }
        }
        "alerts" => {
            let config = monitor_config_from_flags(&mut args)?;
            let for_ms: i64 = flag_value(&mut args, "--for-ms")
                .map(|v| v.parse().map_err(|e| format!("bad --for-ms: {e}")))
                .transpose()?
                .unwrap_or(0);
            let env = flag_value(&mut args, "--env").unwrap_or_else(|| "production".into());
            let mut actions = Vec::new();
            while let Some(a) = flag_value(&mut args, "--action") {
                actions.push(a);
            }
            let [instance_id, expr]: [String; 2] = args.try_into().map_err(|_| {
                "usage: alerts INSTANCE_ID EXPR [--for-ms F] [--action NAME] [--env ENV]"
                    .to_string()
            })?;
            let instance_id = InstanceId(instance_id);
            let model_id = g.get_instance(&instance_id).map_err(err)?.model_id;
            let (monitor, snapshot) = replay_monitor(&g, &instance_id, config)?;
            print_snapshot(&snapshot);

            let engine = AlertEngine::new(gallery::telemetry::global());
            register_lifecycle_actions(&engine, Arc::clone(&g));
            let condition = compile_condition(&expr).map_err(|e| e.to_string())?;
            let mut rule = AlertRule::new("cli", condition)
                .for_ms(for_ms)
                .annotate("instance", instance_id.as_str())
                .annotate("model", model_id.as_str())
                .annotate("environment", &env)
                .exemplar_from(monitor.error_histogram());
            for action in actions {
                rule = rule.action(action);
            }
            engine.add_rule(rule);
            engine.evaluate();
            print!("{}", engine.render_text());
        }
        "stats" => {
            // Metrics are per-process: everything since `open` above
            // (WAL replay, table scans) is already in the global registry.
            if args.iter().any(|a| a == "--probe") {
                let _ = g.find_models(&Query::all()).map_err(err)?;
                let _ = g.model_query(&[]).map_err(err)?;
            }
            g.dal().refresh_storage_gauges();
            print!("{}", gallery::telemetry::global().registry().render_text());
        }
        "explain" => {
            if args.is_empty() {
                return Err("usage: explain TABLE [key=value|key<value|key>value]...".into());
            }
            let table = args.remove(0);
            let mut q = Query::all();
            for s in &args {
                q = q.and(parse_constraint(s).ok_or_else(|| format!("bad constraint: {s}"))?);
            }
            let (rows, explain) = g
                .dal()
                .query_explain_full(&table, &q)
                .map_err(|e| e.to_string())?;
            println!("{explain}");
            println!("returned: {} rows", rows.len());
        }
        "slowlog" => {
            // The ring is per-process: only queries this invocation ran
            // are in it. `--probe` drives a scan + query first so a fresh
            // store still demonstrates the capture format.
            if args.iter().any(|a| a == "--probe") {
                let _ = g.find_models(&Query::all()).map_err(err)?;
                let _ = g.model_query(&[]).map_err(err)?;
            }
            print!("{}", g.dal().metadata().slow_log().render_text());
        }
        "profile" => {
            if args.iter().any(|a| a == "--probe") {
                let tracer = gallery::telemetry::global().tracer();
                let root = tracer.start_span("cli");
                let scan = tracer.start_child("find_models", root.context());
                let _ = g.find_models(&Query::all()).map_err(err)?;
                scan.finish();
                let query = tracer.start_child("model_query", root.context());
                let _ = g.model_query(&[]).map_err(err)?;
                query.finish();
                root.finish();
            }
            let profile = gallery::telemetry::global().profile();
            if args.iter().any(|a| a == "--collapsed") {
                print!("{}", profile.collapsed());
            } else if profile.is_empty() {
                println!("# span profile: no finished spans");
            } else {
                print!("{}", profile.render_text());
            }
        }
        "compact" => {
            let entries = g.dal().metadata().compact().map_err(|e| e.to_string())?;
            println!("compacted WAL to {entries} entries");
        }
        "audit" => {
            let repair = args.iter().any(|a| a == "--repair");
            if repair {
                let report = g
                    .dal()
                    .repair_orphans(&["instances"])
                    .map_err(|e| e.to_string())?;
                println!(
                    "rows: {}, blobs: {}, dangling: {}, orphans gc'd: {}, gc failed: {}",
                    report.audit.rows_checked,
                    report.audit.blobs_checked,
                    report.audit.dangling_metadata.len(),
                    report.deleted.len(),
                    report.failed.len(),
                );
                for (loc, e) in &report.failed {
                    eprintln!("  failed to delete {loc:?}: {e}");
                }
            } else {
                let report = g
                    .dal()
                    .audit_consistency(&["instances"])
                    .map_err(|e| e.to_string())?;
                println!(
                    "rows: {}, blobs: {}, dangling: {}, orphans: {} -> {}",
                    report.rows_checked,
                    report.blobs_checked,
                    report.dangling_metadata.len(),
                    report.orphan_blobs.len(),
                    if report.is_consistent() {
                        "CONSISTENT"
                    } else {
                        "INCONSISTENT"
                    }
                );
            }
        }
        other => return Err(format!("unknown command: {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
