//! # gallery
//!
//! A from-scratch Rust reproduction of **Gallery: A Machine Learning Model
//! Management System at Uber** (Sun, Azari, Turakhia; EDBT 2020).
//!
//! This façade crate re-exports the workspace:
//!
//! - [`core`] (`gallery-core`) — data model, UUID versioning with base
//!   version ids, dependency propagation, model health, lifecycle;
//! - [`store`] (`gallery-store`) — embedded metadata store (indexes +
//!   WAL), blob store with cache, the unified DAL with blob-first writes;
//! - [`rules`] (`gallery-rules`) — the Given/When/Then orchestration rule
//!   engine with a JEXL-like expression language, versioned rule repo, and
//!   event-driven job queue;
//! - [`service`] (`gallery-service`) — Thrift-like wire protocol, stateless
//!   server, typed client;
//! - [`forecast`] (`gallery-forecast`) — the Marketplace-Forecasting
//!   substrate: synthetic city demand + a from-scratch model zoo;
//! - [`marketsim`] (`gallery-marketsim`) — the agent-based marketplace
//!   discrete-event simulator of the §4.3 case study;
//! - [`telemetry`] (`gallery-telemetry`) — process-wide metrics registry,
//!   span tracer, and structured event sink instrumenting all of the above
//!   (Prometheus-style exposition via `render_text`).
//!
//! ## Quickstart
//!
//! ```
//! use gallery::prelude::*;
//! use bytes::Bytes;
//!
//! let g = Gallery::in_memory();
//! let model = g
//!     .create_model(ModelSpec::new("example-project", "supply_rejection").name("random_forest"))
//!     .unwrap();
//! let instance = g
//!     .upload_instance(&model.id, InstanceSpec::new(), Bytes::from_static(b"weights"))
//!     .unwrap();
//! g.insert_metric(&instance.id, MetricSpec::new("bias", MetricScope::Validation, 0.05))
//!     .unwrap();
//! assert_eq!(g.fetch_instance_blob(&instance.id).unwrap(), Bytes::from_static(b"weights"));
//! ```

pub use gallery_core as core;
pub use gallery_forecast as forecast;
pub use gallery_marketsim as marketsim;
pub use gallery_rules as rules;
pub use gallery_service as service;
pub use gallery_store as store;
pub use gallery_telemetry as telemetry;

/// The most common imports for Gallery users.
pub mod prelude {
    pub use gallery_core::{
        Gallery, GalleryError, InstanceId, InstanceSpec, Metadata, MetricScope, MetricSpec, Model,
        ModelId, ModelInstance, ModelSpec, Stage,
    };
    pub use gallery_rules::{ActionRegistry, CompiledRule, RuleEngine, RuleRepo};
    pub use gallery_store::{Constraint, Op, Query};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use bytes::Bytes;

    #[test]
    fn facade_reexports_work() {
        let g = Gallery::in_memory();
        let m = g.create_model(ModelSpec::new("p", "b").name("m")).unwrap();
        let i = g
            .upload_instance(&m.id, InstanceSpec::new(), Bytes::from_static(b"x"))
            .unwrap();
        assert_eq!(
            g.fetch_instance_blob(&i.id).unwrap(),
            Bytes::from_static(b"x")
        );
    }
}
