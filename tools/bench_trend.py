#!/usr/bin/env python3
"""Bench-trend gate: compare a fresh BENCH_exp_scale_1m.json against the
committed baseline and fail on a collapse, not on noise.

Usage: bench_trend.py BASELINE.json FRESH.json [--tolerance FACTOR]

Two checks, both deliberately generous because CI runners and the
baseline host differ in raw speed:

1. *Per-decade medians*: for every (arm, rows) decade present in both
   files, the fresh median insert rate must be at least
   ``baseline / FACTOR`` (default 4x). Absolute throughput varies by
   host; an order-of-magnitude collapse is a regression, a 2-3x swing
   is a different machine.
2. *Paper shape*: the tuned arm's 1e6-vs-1e5 ratio is host-independent
   (it is a ratio of rates measured on the same host), so it gets a
   tighter bound: fresh ratio >= half the baseline ratio.

Exits non-zero with a per-row report on any violation.
"""

import argparse
import json
import sys


def decades(doc):
    """{(arm, rows): median_rows_per_s} from a BENCH_exp_scale_1m 'results'."""
    out = {}
    for arm in doc["results"]["arms"]:
        for d in arm["decades"]:
            out[(arm["arm"], d["rows"])] = d["median_rows_per_s"]
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=4.0,
        help="fresh decade medians may be up to this factor below baseline",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base_decades = decades(baseline)
    fresh_decades = decades(fresh)

    bad = False
    print(f"bench trend vs {args.baseline} (tolerance {args.tolerance}x):")
    for key in sorted(base_decades, key=lambda k: (k[0], k[1])):
        if key not in fresh_decades:
            # Smoke and full runs cover different decade sets; only
            # decades measured in both files are comparable.
            continue
        arm, rows = key
        base, cur = base_decades[key], fresh_decades[key]
        floor = base / args.tolerance
        verdict = "ok" if cur >= floor else "REGRESSED"
        print(
            f"  {arm:>6} @ {rows:>9,} rows: {cur:>12,.0f} rows/s "
            f"(baseline {base:,.0f}, floor {floor:,.0f}) {verdict}"
        )
        if cur < floor:
            bad = True

    base_ratio = baseline["results"]["tuned_ratio_1e6_vs_1e5"]
    fresh_ratio = fresh["results"].get("tuned_ratio_1e6_vs_1e5")
    if base_ratio is not None and fresh_ratio is not None:
        floor = base_ratio / 2.0
        verdict = "ok" if fresh_ratio >= floor else "REGRESSED"
        print(
            f"  tuned 1e6/1e5 ratio: {fresh_ratio:.3f} "
            f"(baseline {base_ratio:.3f}, floor {floor:.3f}) {verdict}"
        )
        if fresh_ratio < floor:
            bad = True

    if bad:
        print("bench trend: REGRESSION against committed baseline", file=sys.stderr)
        return 1
    print("bench trend: within tolerance of committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
