//! Case study 1 (§4.2): managing a per-city forecasting fleet.
//!
//! Trains four model classes for each of several cities, uploads every
//! trained instance to Gallery with searchable metadata, records
//! validation metrics, then uses a model-selection rule to pick the
//! champion per city and deploys it — the per-city "which model class to
//! serve" decision the Marketplace Forecasting team automates with
//! Gallery.
//!
//! Run with: `cargo run --release --example forecasting_fleet`

use gallery::forecast::{
    city_fleet, AnyForecaster, Ewma, FleetTrainer, Forecaster, MeanOfLastK, RandomForest,
    RidgeForecaster,
};
use gallery::prelude::*;
use gallery::rules::{RuleBody, RuleDoc};
use std::sync::Arc;

fn main() {
    let gallery = Arc::new(Gallery::in_memory());
    let trainer = FleetTrainer::new(&gallery, "marketplace-forecasting");

    let cities = city_fleet(6, 2026);
    let mut champion_rules = Vec::new();

    for city in &cities {
        let day = city.samples_per_day();
        let series = city.generate(day * 21, 0);
        let test_start = day * 14;
        let (train, _) = series.split_at(test_start);

        let zoo: Vec<AnyForecaster> = vec![
            AnyForecaster::MeanOfLastK(MeanOfLastK::new(5)),
            AnyForecaster::Ewma(Ewma::new(0.3)),
            AnyForecaster::Ridge(RidgeForecaster::standard(day, 1.0)),
            AnyForecaster::Forest(RandomForest::new(day, 8, 7, 10, city.seed)),
        ];
        println!("city {}:", city.name);
        for forecaster in zoo {
            let class = forecaster.name();
            let model = trainer.register_model(&city.name, class).expect("register");
            let entry = trainer
                .train_and_upload(&model, forecaster, city, &train, &series, test_start)
                .expect("train");
            println!(
                "  {:28} validation mape {:.2}%",
                class,
                100.0 * entry.validation_mape
            );
        }

        // A selection rule per city: among this city's models, require a
        // sane MAPE and pick the lowest.
        let rule = RuleDoc {
            team: "forecasting".into(),
            uuid: format!("champion-{}", city.name),
            rule: RuleBody {
                given: format!(r#"city == "{}""#, city.name),
                when: "metrics.mape <= 0.5".into(),
                environment: "production".into(),
                model_selection: Some("a.metrics.mape < b.metrics.mape".into()),
                callback_actions: vec![],
            },
        };
        champion_rules.push(rule);
    }

    // Run champion selection through the rule engine and deploy winners.
    let (actions, _log) = ActionRegistry::with_defaults();
    let engine = RuleEngine::new(Arc::clone(&gallery), actions, 2);
    for rule in &champion_rules {
        engine.register(CompiledRule::compile(rule).expect("valid rule"));
    }
    println!("\nchampions:");
    for rule in &champion_rules {
        let champion = engine
            .select(&rule.uuid)
            .expect("selection")
            .expect("at least one candidate");
        gallery
            .deploy(&champion.model_id, &champion.id, "production")
            .expect("deploy");
        let city = champion
            .metadata
            .get_str("city")
            .unwrap_or("<unknown>")
            .to_owned();
        let class = champion.metadata.get_str("model_name").unwrap_or("?");
        println!("  {city:10} -> {class} (instance {})", champion.id);
    }

    // The production pointer now answers "which model do I serve?"
    let stats = engine.stats();
    println!(
        "\nrule engine: {} selections, mean latency {:?}",
        stats.completed,
        stats.mean_latency()
    );
}
