//! The orchestration rule engine end-to-end (§3.7, Listings 1–2).
//!
//! Checks the paper's two example rules into a versioned rule repo (with
//! validation and peer review), loads them into the engine, and shows:
//! 1. the action rule auto-deploying a Random Forest instance the moment a
//!    within-corridor bias metric is recorded (Listing 2);
//! 2. the selection rule answering "which linear_regression should I
//!    serve?" at serving time (Listing 1).
//!
//! Run with: `cargo run --example rule_automation`

use bytes::Bytes;
use gallery::core::metadata::fields;
use gallery::prelude::*;
use gallery::rules::rule::{listing1_selection_rule, listing2_action_rule};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let gallery = Arc::new(Gallery::in_memory());

    // --- Rule repo: validated, peer-reviewed, versioned (§3.7.2) -------
    let repo = RuleRepo::new();
    let selection_json = serde_json::to_string_pretty(&listing1_selection_rule()).unwrap();
    let action_json = serde_json::to_string_pretty(&listing2_action_rule()).unwrap();
    repo.commit_rule("alice", "bob", "forecasting/champion.json", &selection_json)
        .expect("valid rule commits");
    repo.commit_rule("alice", "bob", "forecasting/auto_deploy.json", &action_json)
        .expect("valid rule commits");
    // A broken rule never lands:
    let err = repo.commit_rule("mallory", "bob", "forecasting/bad.json", "{ not json");
    println!("broken rule rejected before production: {}", err.is_err());
    // Self-review is rejected too:
    let err = repo.commit_rule("alice", "alice", "forecasting/x.json", &selection_json);
    println!("self-review rejected: {}", err.is_err());

    // --- Engine with a real deployment callback ------------------------
    let (actions, _log) = ActionRegistry::with_defaults();
    let deployed: Arc<Mutex<Vec<String>>> = Arc::default();
    {
        let gallery = Arc::clone(&gallery);
        let deployed = Arc::clone(&deployed);
        actions.register("forecasting_deployment", move |inv| {
            // The paper's deployment action flips the served version via a
            // config change; here it is a real Gallery deployment.
            gallery
                .deploy(&inv.model_id, &inv.instance_id, &inv.environment)
                .map_err(|e| gallery::rules::EngineError::ActionFailed(e.to_string()))?;
            deployed.lock().push(inv.instance_id.to_string());
            Ok(())
        });
    }
    let engine = RuleEngine::new(Arc::clone(&gallery), actions, 2);
    engine.register_all(repo.load_rules().expect("repo rules compile"));
    engine.attach(); // event-driven triggering from here on

    // --- Listing 2 in action: metric insert fires auto-deployment ------
    let rf = gallery
        .create_model(ModelSpec::new("forecasting", "rf_demand").name("Random Forest"))
        .unwrap();
    let rf_instance = gallery
        .upload_instance(
            &rf.id,
            InstanceSpec::new().metadata(
                Metadata::new()
                    .with(fields::MODEL_NAME, "Random Forest")
                    .with(fields::MODEL_DOMAIN, "UberX"),
            ),
            Bytes::from_static(b"rf weights"),
        )
        .unwrap();
    gallery
        .insert_metric(
            &rf_instance.id,
            MetricSpec::new("bias", MetricScope::Validation, 0.05),
        )
        .unwrap();
    engine.drain();
    println!(
        "auto-deployed after in-corridor bias metric: {:?}",
        deployed.lock().clone()
    );
    assert_eq!(
        gallery.deployed_instance(&rf.id, "production").unwrap(),
        Some(rf_instance.id.clone())
    );

    // Out-of-corridor bias does NOT deploy.
    let rf_bad = gallery
        .upload_instance(
            &rf.id,
            InstanceSpec::new().metadata(
                Metadata::new()
                    .with(fields::MODEL_NAME, "Random Forest")
                    .with(fields::MODEL_DOMAIN, "UberX"),
            ),
            Bytes::from_static(b"biased weights"),
        )
        .unwrap();
    gallery
        .insert_metric(
            &rf_bad.id,
            MetricSpec::new("bias", MetricScope::Validation, 0.4),
        )
        .unwrap();
    engine.drain();
    assert_eq!(
        gallery.deployed_instance(&rf.id, "production").unwrap(),
        Some(rf_instance.id.clone()),
        "production pointer unchanged for the biased instance"
    );
    println!("out-of-corridor instance was not deployed");

    // --- Listing 1 in action: champion selection ------------------------
    let lr = gallery
        .create_model(ModelSpec::new("forecasting", "lr_demand").name("linear_regression"))
        .unwrap();
    for (r2, label) in [
        (0.85, "older"),
        (0.88, "newer"),
        (0.95, "too-good-to-trust"),
    ] {
        let inst = gallery
            .upload_instance(
                &lr.id,
                InstanceSpec::new().metadata(
                    Metadata::new()
                        .with(fields::MODEL_NAME, "linear_regression")
                        .with(fields::MODEL_DOMAIN, "UberX")
                        .with("label", label),
                ),
                Bytes::from(format!("lr weights {label}")),
            )
            .unwrap();
        gallery
            .insert_metric(&inst.id, MetricSpec::new("r2", MetricScope::Validation, r2))
            .unwrap();
        // metric inserts re-trigger the action rule; drain between uploads
        engine.drain();
    }
    let champion = engine
        .select(&listing1_selection_rule().uuid)
        .expect("selection runs")
        .expect("a champion exists");
    println!(
        "selection rule champion: label={:?} (latest instance with r2 <= 0.9)",
        champion.metadata.get_str("label")
    );
    assert_eq!(champion.metadata.get_str("label"), Some("newer"));

    let stats = engine.stats();
    println!(
        "engine stats: triggered={} fired={} actions={} errors={} mean latency {:?}",
        stats.triggered,
        stats.fired,
        stats.actions_executed,
        stats.errors,
        stats.mean_latency()
    );
}
