//! §3.7's model-combination pattern plus §6.2 reproducibility.
//!
//! Part 1 — GuardedServing: serve the complex champion while it behaves,
//! fall back to the stable mean-of-last-5 heuristic when an unanticipated
//! event breaks it ("complex forecasting models ... may not perform well
//! when there are unanticipated events"), and recover automatically.
//!
//! Part 2 — reproducibility: build a ReproductionPlan from the champion's
//! metadata, re-run training, and verify the attempt.
//!
//! Run with: `cargo run --release --example champion_fallback`

use bytes::Bytes;
use gallery::core::metadata::fields;
use gallery::core::ReproductionMatch;
use gallery::forecast::{
    backtest, AnyForecaster, CityConfig, EventWindow, Forecaster, GuardedServing, MeanOfLastK,
    RidgeForecaster, Served,
};
use gallery::prelude::*;

fn main() {
    let g = Gallery::in_memory();

    // A market with a violent unanticipated event in the serving window
    // (think: public transit outage — §4.2 mentions exactly this case).
    let cfg = CityConfig::new("fallback_city", 31).with_event(EventWindow {
        start: 96 * 16,
        end: 96 * 16 + 48,
        multiplier: 3.0,
    });
    let day = cfg.samples_per_day();
    let series = cfg.generate(day * 18, 0);
    let serve_start = day * 14;
    let (train, _) = series.split_at(serve_start);

    // Champion: ridge on day-scale structure (good normally, blind-sided
    // by the event). Fallback: mean of last 5 (adapts within minutes).
    let mut champion = AnyForecaster::Ridge(RidgeForecaster::standard(day, 1.0));
    champion.fit(&train).expect("fit champion");
    let mut fallback = AnyForecaster::MeanOfLastK(MeanOfLastK::new(5));
    fallback.fit(&train).expect("fit fallback");

    // Register both in Gallery with full reproducibility metadata.
    let model = g
        .create_model(ModelSpec::new("marketplace", "fallback_demo").name("ridge"))
        .unwrap();
    let repro_meta = Metadata::new()
        .with(fields::CITY, cfg.name.clone())
        .with(fields::MODEL_NAME, "ridge")
        .with(
            fields::TRAINING_DATA,
            format!("citygen://{}/{}", cfg.name, cfg.seed),
        )
        .with(fields::TRAINING_DATA_VERSION, format!("n={}", train.len()))
        .with(fields::TRAINING_FRAMEWORK, "gallery-forecast/0.1")
        .with(fields::TRAINING_CODE, "examples/champion_fallback.rs")
        .with(fields::FEATURES, "lags,daily_fourier,weekly_fourier")
        .with(fields::HYPERPARAMETERS, "lambda=1.0")
        .with(fields::RANDOM_SEED, cfg.seed as i64);
    let champ_instance = g
        .upload_instance(
            &model.id,
            InstanceSpec::new().metadata(repro_meta.clone()),
            Bytes::from(champion.to_blob()),
        )
        .unwrap();

    // ---- Part 1: guarded serving over the event window -----------------
    let mut policy = GuardedServing::new(&champion, &fallback, 6, 1.5);
    let mut champion_only_err = Vec::new();
    let mut served_err = Vec::new();
    let mut fallback_intervals = 0u64;
    for t in serve_start..series.len() {
        let event_now = series.event_flags[t];
        let history = &series.values[..t];
        let (served_pred, who) = policy.serve(history, t, event_now);
        let champ_pred = champion.forecast_next(history, t, event_now);
        let actual = series.values[t];
        policy.observe(history, t, event_now, actual);
        if who == Served::Fallback {
            fallback_intervals += 1;
        }
        if actual > 0.0 {
            champion_only_err.push(((champ_pred - actual) / actual).abs());
            served_err.push(((served_pred - actual) / actual).abs());
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "champion-only MAPE: {:.1}%",
        100.0 * mean(&champion_only_err)
    );
    println!(
        "guarded-serving MAPE: {:.1}% (fallback served {} intervals, {} switches)",
        100.0 * mean(&served_err),
        fallback_intervals,
        policy.switches()
    );
    assert!(mean(&served_err) < mean(&champion_only_err));
    println!("combining models beats the champion alone during the outage ✓\n");

    // ---- Part 2: reproduce the champion from its metadata --------------
    let plan = g.reproduction_plan(&champ_instance.id).expect("plan");
    println!(
        "reproduction plan: data={} seed={:?}",
        plan.training_data, plan.random_seed
    );
    // Re-run training exactly as recorded (same generator, same seed).
    let re_series = CityConfig::new("fallback_city", plan.random_seed.unwrap() as u64)
        .with_event(EventWindow {
            start: 96 * 16,
            end: 96 * 16 + 48,
            multiplier: 3.0,
        })
        .generate(day * 18, 0);
    let (re_train, _) = re_series.split_at(serve_start);
    let mut re_champion = AnyForecaster::Ridge(RidgeForecaster::standard(day, 1.0));
    re_champion.fit(&re_train).expect("refit");
    let attempt = g
        .upload_instance(
            &model.id,
            InstanceSpec::new().metadata(repro_meta),
            Bytes::from(re_champion.to_blob()),
        )
        .unwrap();
    let verdict = g.verify_reproduction(&plan, &attempt).expect("verify");
    println!("reproduction verdict: {verdict:?}");
    assert_eq!(
        verdict,
        ReproductionMatch::Exact,
        "deterministic training reproduces exactly"
    );

    // And the reproduced model scores identically on a backtest.
    let original_eval = backtest(&champion, &series, serve_start);
    let reproduced_eval = backtest(&re_champion, &series, serve_start);
    assert_eq!(original_eval.mape, reproduced_eval.mape);
    println!(
        "reproduced model backtests identically (mape {:.2}%) ✓",
        100.0 * original_eval.mape
    );
}
