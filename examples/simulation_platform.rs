//! Case study 2 (§4.3): the Marketplace Simulation Platform, before and
//! after Gallery.
//!
//! Runs the agent-based marketplace simulator twice with identical seeds:
//! once training its demand forecaster *inline* (the pre-Gallery design),
//! once fetching a pretrained instance from Gallery (decoupled). Prints
//! the memory and training-CPU savings the decoupling buys.
//!
//! Run with: `cargo run --release --example simulation_platform`

use bytes::Bytes;
use gallery::core::metadata::fields;
use gallery::forecast::{AnyForecaster, Forecaster, RidgeForecaster};
use gallery::marketsim::{run, run_gallery_backed, InlineModel, ModelSource, SimConfig};
use gallery::prelude::*;

fn main() {
    let config = SimConfig::small(42);
    let day = config.city.samples_per_day();
    let interval_ms = config.interval_ms();

    // ---- Pre-Gallery: train inside the simulator -----------------------
    let inline = ModelSource::inline(
        vec![InlineModel {
            template: AnyForecaster::Ridge(RidgeForecaster::standard(day, 1.0)),
            fitted: None,
            retrain_every: day / 2,
        }],
        interval_ms,
        day + day / 2,
    );
    let before = run(&config, inline);

    // ---- Post-Gallery: offline training, fetch from Gallery ------------
    // The offline process: fit on a historical window, upload the blob.
    let gallery = Gallery::in_memory();
    let model = gallery
        .create_model(
            ModelSpec::new("simulation-platform", "sim_demand")
                .name("ridge")
                .owner("simulation"),
        )
        .unwrap();
    let history = config.historical_counts(14);
    let mut forecaster = AnyForecaster::Ridge(RidgeForecaster::standard(day, 1.0));
    forecaster.fit(&history).expect("offline fit");
    let instance = gallery
        .upload_instance(
            &model.id,
            InstanceSpec::new().metadata(
                Metadata::new()
                    .with(fields::MODEL_NAME, "ridge")
                    .with(fields::CITY, config.city.name.clone()),
            ),
            Bytes::from(forecaster.to_blob()),
        )
        .unwrap();
    let after = run_gallery_backed(&config, &gallery, &[instance.id]).expect("gallery run");

    // ---- Report ---------------------------------------------------------
    println!(
        "marketplace simulation: {} days, {} drivers\n",
        config.days, config.n_drivers
    );
    println!(
        "{:34} {:>14} {:>14}",
        "", "inline (before)", "gallery (after)"
    );
    let row = |label: &str, a: String, b: String| println!("{label:34} {a:>14} {b:>14}");
    row(
        "trips served",
        before.trips_served.to_string(),
        after.trips_served.to_string(),
    );
    row(
        "service rate",
        format!("{:.1}%", 100.0 * before.service_rate()),
        format!("{:.1}%", 100.0 * after.service_rate()),
    );
    row(
        "online forecast MAPE",
        format!("{:.1}%", 100.0 * before.forecast_mape),
        format!("{:.1}%", 100.0 * after.forecast_mape),
    );
    row(
        "peak model memory (bytes)",
        before.peak_model_bytes.to_string(),
        after.peak_model_bytes.to_string(),
    );
    row(
        "in-sim trainings",
        before.trainings.to_string(),
        after.trainings.to_string(),
    );
    row(
        "in-sim training samples",
        before.training_samples.to_string(),
        after.training_samples.to_string(),
    );
    row(
        "in-sim training wall (ms)",
        format!("{:.1}", before.training_wall_ms),
        format!("{:.1}", after.training_wall_ms),
    );
    row(
        "total wall (ms)",
        format!("{:.1}", before.total_wall_ms),
        format!("{:.1}", after.total_wall_ms),
    );

    let mem_saving = before
        .peak_model_bytes
        .saturating_sub(after.peak_model_bytes);
    println!(
        "\ndecoupling saved {} bytes of peak simulator memory and {} in-sim training runs",
        mem_saving, before.trainings
    );
    assert!(after.peak_model_bytes < before.peak_model_bytes);
    assert_eq!(after.trainings, 0);
}
