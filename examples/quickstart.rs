//! Quickstart: the paper's Listings 3–5 as a runnable program.
//!
//! Creates a Gallery, registers a model, uploads a trained instance with
//! metadata (Listing 3), records a validation metric (Listing 4), and
//! searches for instances by project/model/metric constraints (Listing 5).
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use gallery::core::metadata::fields;
use gallery::prelude::*;

fn main() {
    let g = Gallery::in_memory();

    // Listing 3: create a model and upload a trained instance.
    // (The "SparkML pipeline" is any serialized bytes — Gallery is
    // model-neutral and never interprets the blob.)
    let model = g
        .create_model(
            ModelSpec::new("example-project", "supply_rejection")
                .name("random_forest")
                .owner("marketplace-forecasting")
                .description("per-city supply rejection classifier"),
        )
        .expect("create model");
    println!(
        "created model {} (base {})",
        model.id, model.base_version_id
    );

    let model_blob = Bytes::from_static(b"<serialized model bytes>");
    let instance = g
        .upload_instance(
            &model.id,
            InstanceSpec::new().metadata(
                Metadata::new()
                    .with(fields::MODEL_NAME, "random_forest")
                    .with(fields::CITY, "New York City")
                    .with(fields::MODEL_TYPE, "SparkML")
                    .with(fields::TRAINING_FRAMEWORK, "sparkml-2.4")
                    .with(fields::TRAINING_DATA, "hdfs://warehouse/trips/2026-06")
                    .with(fields::TRAINING_DATA_VERSION, "v42")
                    .with(
                        fields::TRAINING_CODE,
                        "git://models/supply_rejection@abc123",
                    )
                    .with(fields::FEATURES, "hour_of_week,weather,events")
                    .with(fields::HYPERPARAMETERS, "trees=100,depth=12"),
            ),
            model_blob.clone(),
        )
        .expect("upload instance");
    println!(
        "uploaded instance {} as version {}",
        instance.id, instance.display_version
    );

    // Listing 4: record a validation metric.
    g.insert_metric(
        &instance.id,
        MetricSpec::new("bias", MetricScope::Validation, 0.05),
    )
    .expect("insert metric");
    println!("recorded bias=0.05 (validation)");

    // Listing 5: search by project + model name + metric threshold.
    let found = g
        .model_query(&[
            Constraint::eq("projectName", "example-project"),
            Constraint::eq("modelName", "random_forest"),
            Constraint::eq("metricName", "bias"),
            Constraint::lt("metricValue", 0.25),
        ])
        .expect("model query");
    println!("search matched {} instance(s)", found.len());
    assert_eq!(found.len(), 1);

    // Serving: fetch the opaque blob back.
    let blob = g.fetch_instance_blob(&found[0].id).expect("fetch blob");
    assert_eq!(blob, model_blob);
    println!("fetched {} blob bytes for serving", blob.len());

    // Model health: the instance carries full reproducibility metadata.
    let health = g.health_report(&instance.id).expect("health");
    println!(
        "health: reproducibility={:.0}%, missing fields: {:?}",
        100.0 * health.reproducibility_score,
        health.missing_fields
    );
    assert!(health.missing_fields.is_empty());
}
