//! Dependency management walkthrough (§3.4.2, Figures 5–7).
//!
//! Builds the paper's five-model dependency graph, retrains Model B, and
//! adds a new dependency D — printing the automatic version bumps Gallery
//! creates for every downstream model while production pointers stay put.
//!
//! Run with: `cargo run --example model_dependencies`

use bytes::Bytes;
use gallery::core::ManualClock;
use gallery::prelude::*;
use std::sync::Arc;

fn version_of(g: &Gallery, id: &ModelId) -> String {
    g.latest_instance(id)
        .unwrap()
        .map(|i| i.display_version.to_string())
        .unwrap_or_else(|| "-".into())
}

fn show(g: &Gallery, names: &[(&str, &ModelId)]) {
    let versions: Vec<String> = names
        .iter()
        .map(|(n, id)| format!("{n}={}", version_of(g, id)))
        .collect();
    println!("  {}", versions.join("  "));
}

fn main() {
    let g = Gallery::in_memory_with_clock(Arc::new(ManualClock::new(1_000)));
    let mk = |base: &str, major: u32| {
        let m = g
            .create_model_with_major(
                ModelSpec::new("marketplace", base).name(base).owner("fc"),
                major,
            )
            .unwrap();
        g.upload_instance(&m.id, InstanceSpec::new(), Bytes::from(base.to_owned()))
            .unwrap();
        m.id
    };

    // Figure 5: X and Y depend on A; A depends on B and C. Display majors
    // match the paper's numbering (X=7, Y=8, A=4, B=2, C=3).
    let x = mk("model_x", 7);
    let y = mk("model_y", 8);
    let a = mk("model_a", 4);
    let b = mk("model_b", 2);
    let c = mk("model_c", 3);
    g.add_dependency(&a, &b).unwrap();
    g.add_dependency(&a, &c).unwrap();
    g.add_dependency(&x, &a).unwrap();
    g.add_dependency(&y, &a).unwrap();

    let names: Vec<(&str, &ModelId)> = vec![("X", &x), ("Y", &y), ("A", &a), ("B", &b), ("C", &c)];
    println!("figure 5 graph established (X,Y -> A -> B,C):");
    show(&g, &names);

    // Deploy A's current instance so we can watch the production pointer.
    let prod = g.latest_instance(&a).unwrap().unwrap();
    g.deploy(&a, &prod.id, "production").unwrap();

    // Figure 6: retrain B; A, X, Y get automatic new versions.
    println!("\nretraining B (figure 6):");
    g.upload_instance(&b, InstanceSpec::new(), Bytes::from_static(b"b-retrained"))
        .unwrap();
    show(&g, &names);
    let latest_a = g.latest_instance(&a).unwrap().unwrap();
    println!(
        "  A's new version is automatic: trigger = {:?}",
        latest_a.trigger
    );
    assert_eq!(
        g.deployed_instance(&a, "production").unwrap(),
        Some(prod.id.clone()),
        "production pointer must not move automatically"
    );
    println!("  production pointer of A unchanged ✓ (owner opts in explicitly)");

    // The owner opts in: deploy the new version.
    g.deploy(&a, &latest_a.id, "production").unwrap();
    println!(
        "  owner opted in: A now serves {}",
        latest_a.display_version
    );

    // Figure 7: add a new dependency D to A.
    println!("\nadding dependency D to A (figure 7):");
    let d = mk("model_d", 1);
    g.add_dependency(&a, &d).unwrap();
    let names: Vec<(&str, &ModelId)> = vec![
        ("X", &x),
        ("Y", &y),
        ("A", &a),
        ("B", &b),
        ("C", &c),
        ("D", &d),
    ];
    show(&g, &names);

    // Traversals: the holistic view §3.4.2 motivates.
    println!(
        "\nupstream of X: {:?}",
        g.transitive_upstream(&x).unwrap().len()
    );
    println!(
        "downstream of B: {:?}",
        g.transitive_downstream(&b).unwrap().len()
    );

    // Full lineage of A, with triggers.
    println!("\nA's instance lineage (newest first):");
    let latest = g.latest_instance(&a).unwrap().unwrap();
    for inst in g.instance_lineage(&latest.id).unwrap() {
        println!("  {}  {:?}", inst.display_version, inst.trigger);
    }
}
