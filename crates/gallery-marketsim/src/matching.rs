//! Dispatch: match a trip request to the nearest idle driver.

use crate::agents::Driver;
use crate::geo::Point;

/// Find the nearest idle driver to `origin`; ties break by lowest driver
/// id (determinism). Returns the index into `drivers`.
pub fn nearest_idle_driver(drivers: &[Driver], origin: &Point) -> Option<usize> {
    drivers
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_idle())
        .min_by_key(|(_, d)| (d.position.manhattan(origin), d.id))
        .map(|(i, _)| i)
}

/// Count idle drivers (the supply signal pricing consumes).
pub fn idle_count(drivers: &[Driver]) -> usize {
    drivers.iter().filter(|d| d.is_idle()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::DriverStatus;

    fn driver(id: u64, x: i32, y: i32, idle: bool) -> Driver {
        let mut d = Driver::new(id, Point::new(x, y));
        if !idle {
            d.status = DriverStatus::Busy { until: 100 };
        }
        d
    }

    #[test]
    fn picks_nearest_idle() {
        let drivers = vec![
            driver(1, 10, 10, true),
            driver(2, 1, 1, false), // nearest but busy
            driver(3, 3, 3, true),  // nearest idle
        ];
        let idx = nearest_idle_driver(&drivers, &Point::new(0, 0)).unwrap();
        assert_eq!(drivers[idx].id, 3);
    }

    #[test]
    fn ties_break_by_id() {
        let drivers = vec![driver(7, 2, 0, true), driver(3, 0, 2, true)];
        let idx = nearest_idle_driver(&drivers, &Point::new(0, 0)).unwrap();
        assert_eq!(drivers[idx].id, 3);
    }

    #[test]
    fn none_when_all_busy() {
        let drivers = vec![driver(1, 0, 0, false)];
        assert!(nearest_idle_driver(&drivers, &Point::new(0, 0)).is_none());
        assert_eq!(idle_count(&drivers), 0);
    }
}
