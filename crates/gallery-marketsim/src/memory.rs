//! Resource accounting for the §4.3 comparison.
//!
//! The paper reports that decoupling model training from the simulator
//! "saved the simulation platform an estimated 8GB memory and one hour CPU
//! time per simulation". We track both resources explicitly: bytes held by
//! training state inside the simulator process, and training CPU cost (in
//! both accounted work units and measured wall time).

use std::time::Duration;

/// Tracks bytes attributable to in-simulator model training state.
#[derive(Debug, Default, Clone)]
pub struct ResourceTracker {
    current_bytes: u64,
    peak_bytes: u64,
    /// Work units: training samples processed inside the simulation.
    training_samples: u64,
    /// Measured wall time spent inside training calls.
    training_wall: Duration,
    trainings: u64,
}

impl ResourceTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Account an allocation of training state.
    pub fn alloc(&mut self, bytes: u64) {
        self.current_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
    }

    /// Account a release of training state.
    pub fn free(&mut self, bytes: u64) {
        self.current_bytes = self.current_bytes.saturating_sub(bytes);
    }

    /// Account one training run over `samples` samples taking `wall` time.
    pub fn record_training(&mut self, samples: u64, wall: Duration) {
        self.training_samples += samples;
        self.training_wall += wall;
        self.trainings += 1;
    }

    pub fn current_bytes(&self) -> u64 {
        self.current_bytes
    }

    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    pub fn training_samples(&self) -> u64 {
        self.training_samples
    }

    pub fn training_wall(&self) -> Duration {
        self.training_wall
    }

    pub fn trainings(&self) -> u64 {
        self.trainings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut t = ResourceTracker::new();
        t.alloc(100);
        t.alloc(50);
        t.free(120);
        t.alloc(10);
        assert_eq!(t.current_bytes(), 40);
        assert_eq!(t.peak_bytes(), 150);
    }

    #[test]
    fn free_saturates() {
        let mut t = ResourceTracker::new();
        t.alloc(10);
        t.free(100);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn training_accumulates() {
        let mut t = ResourceTracker::new();
        t.record_training(1000, Duration::from_millis(5));
        t.record_training(500, Duration::from_millis(3));
        assert_eq!(t.training_samples(), 1500);
        assert_eq!(t.trainings(), 2);
        assert_eq!(t.training_wall(), Duration::from_millis(8));
    }
}
