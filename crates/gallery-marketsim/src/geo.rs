//! Grid-city geometry.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A location on the city grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Point {
    pub x: i32,
    pub y: i32,
}

impl Point {
    pub fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Manhattan distance — the natural street-grid metric.
    pub fn manhattan(&self, other: &Point) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// The city: a `size x size` grid with a denser core (trips cluster
/// downtown, like real demand).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CityGrid {
    pub size: i32,
    /// Fraction of trip endpoints drawn from the core quarter of the grid.
    pub core_bias: f64,
}

impl CityGrid {
    pub fn new(size: i32) -> Self {
        CityGrid {
            size: size.max(2),
            core_bias: 0.6,
        }
    }

    /// Sample a random point, biased toward the core.
    pub fn sample_point(&self, rng: &mut impl Rng) -> Point {
        let (lo, hi) = if rng.gen_bool(self.core_bias) {
            (self.size * 3 / 8, self.size * 5 / 8 + 1)
        } else {
            (0, self.size)
        };
        Point::new(rng.gen_range(lo..hi), rng.gen_range(lo..hi))
    }

    pub fn contains(&self, p: &Point) -> bool {
        p.x >= 0 && p.y >= 0 && p.x < self.size && p.y < self.size
    }

    /// Travel time in ms for a distance, at a fixed grid-cell speed.
    pub fn travel_time_ms(&self, from: &Point, to: &Point, ms_per_cell: u64) -> u64 {
        from.manhattan(to) as u64 * ms_per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn manhattan_distance() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.manhattan(&b), 7);
        assert_eq!(b.manhattan(&a), 7);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    fn sampled_points_in_bounds() {
        let grid = CityGrid::new(50);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let p = grid.sample_point(&mut rng);
            assert!(grid.contains(&p), "{p:?}");
        }
    }

    #[test]
    fn core_bias_concentrates_points() {
        let grid = CityGrid::new(64);
        let mut rng = StdRng::seed_from_u64(2);
        let core = 24..41; // 3/8..5/8+1 of 64
        let in_core = (0..2000)
            .filter(|_| {
                let p = grid.sample_point(&mut rng);
                core.contains(&p.x) && core.contains(&p.y)
            })
            .count();
        // ~60% biased draws land entirely in the core + some uniform hits
        assert!(in_core > 1000, "core hits {in_core}");
    }

    #[test]
    fn travel_time_scales() {
        let grid = CityGrid::new(10);
        let t = grid.travel_time_ms(&Point::new(0, 0), &Point::new(2, 3), 30_000);
        assert_eq!(t, 5 * 30_000);
    }
}
