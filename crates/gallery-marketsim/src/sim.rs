//! The agent-based marketplace simulator (§4.3): riders arrive following
//! a demand process, drivers serve trips on a city grid, and a surge
//! pricing module consults a demand forecaster each interval. The
//! forecaster comes from a [`ModelSource`] — trained inline or fetched
//! from Gallery — which is what the E8 experiment compares.

use crate::agents::Driver;
use crate::event::{EventQueue, SimTime};
use crate::geo::{CityGrid, Point};
use crate::matching::{idle_count, nearest_idle_driver};
use crate::memory::ResourceTracker;
use crate::modelsource::ModelSource;
use crate::pricing::SurgePolicy;
use gallery_forecast::citygen::CityConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Poisson};
use std::time::Instant;

/// Domain events.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SimEvent {
    /// A rider requests a trip.
    Arrival { origin: Point, destination: Point },
    /// Driver `index` finishes its trip.
    TripEnd { driver: usize, fare_cents: u64 },
    /// Per-interval bookkeeping: demand accounting, forecast, surge.
    IntervalTick { index: usize },
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub city: CityConfig,
    pub days: usize,
    pub n_drivers: usize,
    pub grid_size: i32,
    /// Travel time per grid cell.
    pub ms_per_cell: u64,
    /// Demand scale: expected arrivals per interval = series value * scale.
    pub demand_scale: f64,
    pub surge: SurgePolicy,
    pub seed: u64,
}

impl SimConfig {
    pub fn small(seed: u64) -> Self {
        SimConfig {
            city: CityConfig::new("simcity", seed),
            days: 2,
            n_drivers: 40,
            grid_size: 32,
            ms_per_cell: 45_000,
            demand_scale: 0.15,
            surge: SurgePolicy::default(),
            seed,
        }
    }

    pub fn intervals(&self) -> usize {
        self.city.samples_per_day() * self.days
    }

    pub fn interval_ms(&self) -> i64 {
        self.city.interval_minutes as i64 * 60_000
    }

    /// Historical demand in *arrival-count units* (the generator's mean
    /// demand scaled by `demand_scale`) — what offline training uses so
    /// that Gallery-fetched models speak the same units as the simulator's
    /// observed counts.
    pub fn historical_counts(&self, days: usize) -> gallery_forecast::TimeSeries {
        let raw = self.city.generate(self.city.samples_per_day() * days, 0);
        gallery_forecast::TimeSeries::new(
            raw.start_ms,
            raw.interval_ms,
            raw.values.iter().map(|v| v * self.demand_scale).collect(),
        )
        .with_events(raw.event_flags.clone())
    }
}

/// Everything the run produced.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub trips_served: u64,
    pub trips_lost: u64,
    pub total_revenue: f64,
    /// Mean pickup wait (ms) across served trips.
    pub mean_wait_ms: f64,
    /// Online one-step forecast MAPE measured during the run.
    pub forecast_mape: f64,
    /// Peak simulator memory attributable to model state (bytes).
    pub peak_model_bytes: u64,
    /// Steady-state model memory at end of run.
    pub final_model_bytes: u64,
    /// Training runs executed inside the simulation.
    pub trainings: u64,
    /// Training samples processed inside the simulation.
    pub training_samples: u64,
    /// Wall time spent training inside the simulation.
    pub training_wall_ms: f64,
    /// Total wall time of the run.
    pub total_wall_ms: f64,
    pub events_processed: u64,
}

impl SimReport {
    pub fn service_rate(&self) -> f64 {
        let total = self.trips_served + self.trips_lost;
        if total == 0 {
            0.0
        } else {
            self.trips_served as f64 / total as f64
        }
    }
}

/// Run one simulation with the given model source.
pub fn run(config: &SimConfig, mut source: ModelSource) -> SimReport {
    let started = Instant::now();
    let mut tracker = ResourceTracker::new();
    // NOTE: when the source is Gallery-backed, its blob memory was already
    // accounted into the tracker passed to `from_gallery`; re-account a
    // fresh tracker here only for inline growth. To keep both paths
    // comparable the caller should build Gallery sources with a tracker
    // and pass its numbers through — we merge by taking the max at the
    // end, so the simpler path (building the source independently) still
    // reports sane numbers.
    let grid = CityGrid::new(config.grid_size);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5151);
    let demand = config.city.generate(config.intervals(), 0);
    let interval_ms = config.interval_ms() as SimTime;

    let mut drivers: Vec<Driver> = (0..config.n_drivers)
        .map(|i| Driver::new(i as u64, grid.sample_point(&mut rng)))
        .collect();

    let mut queue: EventQueue<SimEvent> = EventQueue::new();
    queue.schedule(0, SimEvent::IntervalTick { index: 0 });

    let mut trips_served = 0u64;
    let mut trips_lost = 0u64;
    let mut revenue_cents = 0u64;
    let mut wait_sum_ms = 0u64;
    let mut current_surge = 1.0f64;
    let mut arrivals_this_interval = 0u64;
    let mut forecast_abs_pct_err = 0.0f64;
    let mut forecast_points = 0usize;
    let mut pending_forecast: Option<f64> = None;
    // Observed arrival counts per closed interval — the canonical history
    // every model forecasts from (same units for inline and Gallery).
    let mut observed: Vec<f64> = Vec::with_capacity(config.intervals());

    while let Some(event) = queue.pop() {
        match event.kind {
            SimEvent::IntervalTick { index } => {
                // Close out the finished interval: compare forecast vs actual.
                if index > 0 {
                    let actual = arrivals_this_interval as f64;
                    if let Some(forecast) = pending_forecast.take() {
                        if actual > 0.0 {
                            forecast_abs_pct_err += ((forecast - actual) / actual).abs();
                            forecast_points += 1;
                        }
                    }
                    let prev_flag = demand.event_flags[index - 1];
                    observed.push(actual);
                    source.observe_interval(actual, prev_flag, &mut tracker);
                }
                arrivals_this_interval = 0;
                if index >= config.intervals() {
                    continue; // past the horizon: drain remaining trips
                }
                // Forecast the upcoming interval (arrival-count units)
                // and set surge from forecast demand vs idle supply.
                let event_now = demand.event_flags[index];
                let forecast_counts = source.forecast(&observed, index, event_now);
                pending_forecast = Some(forecast_counts);
                current_surge = config.surge.surge(forecast_counts, idle_count(&drivers));
                // Schedule this interval's arrivals (Poisson).
                let mean = (demand.values[index] * config.demand_scale).max(0.0);
                let count = if mean > 0.0 {
                    Poisson::new(mean)
                        .map(|p| p.sample(&mut rng) as u64)
                        .unwrap_or(0)
                } else {
                    0
                };
                for _ in 0..count {
                    let offset = rng.gen_range(0..interval_ms);
                    let origin = grid.sample_point(&mut rng);
                    let mut destination = grid.sample_point(&mut rng);
                    if destination == origin {
                        destination = Point::new((origin.x + 1).min(grid.size - 1), origin.y);
                    }
                    queue.schedule(
                        event.time + offset,
                        SimEvent::Arrival {
                            origin,
                            destination,
                        },
                    );
                }
                queue.schedule(
                    event.time + interval_ms,
                    SimEvent::IntervalTick { index: index + 1 },
                );
            }
            SimEvent::Arrival {
                origin,
                destination,
            } => {
                arrivals_this_interval += 1;
                match nearest_idle_driver(&drivers, &origin) {
                    None => trips_lost += 1,
                    Some(di) => {
                        let pickup_ms =
                            grid.travel_time_ms(&drivers[di].position, &origin, config.ms_per_cell);
                        let trip_ms =
                            grid.travel_time_ms(&origin, &destination, config.ms_per_cell);
                        let distance = origin.manhattan(&destination);
                        let fare = config.surge.fare(distance, current_surge);
                        let done_at = event.time + pickup_ms + trip_ms;
                        drivers[di].start_trip(destination, done_at);
                        wait_sum_ms += pickup_ms;
                        trips_served += 1;
                        queue.schedule(
                            done_at,
                            SimEvent::TripEnd {
                                driver: di,
                                fare_cents: (fare * 100.0) as u64,
                            },
                        );
                    }
                }
            }
            SimEvent::TripEnd { driver, fare_cents } => {
                drivers[driver].finish_trip(fare_cents as f64 / 100.0);
                revenue_cents += fare_cents;
            }
        }
    }

    SimReport {
        trips_served,
        trips_lost,
        total_revenue: revenue_cents as f64 / 100.0,
        mean_wait_ms: if trips_served == 0 {
            0.0
        } else {
            wait_sum_ms as f64 / trips_served as f64
        },
        forecast_mape: if forecast_points == 0 {
            0.0
        } else {
            forecast_abs_pct_err / forecast_points as f64
        },
        peak_model_bytes: tracker.peak_bytes(),
        final_model_bytes: tracker.current_bytes(),
        trainings: tracker.trainings(),
        training_samples: tracker.training_samples(),
        training_wall_ms: tracker.training_wall().as_secs_f64() * 1000.0,
        total_wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        events_processed: queue.processed(),
    }
}

/// Run with a Gallery-backed source, folding the blob-fetch memory into
/// the report (the fair comparison for E8).
pub fn run_gallery_backed(
    config: &SimConfig,
    gallery: &gallery_core::Gallery,
    instance_ids: &[gallery_core::InstanceId],
) -> Result<SimReport, String> {
    let mut fetch_tracker = ResourceTracker::new();
    let source = ModelSource::from_gallery(gallery, instance_ids, &mut fetch_tracker)?;
    let mut report = run(config, source);
    report.peak_model_bytes += fetch_tracker.peak_bytes();
    report.final_model_bytes += fetch_tracker.current_bytes();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelsource::InlineModel;
    use gallery_forecast::models::{AnyForecaster, MeanOfLastK};

    fn inline_source() -> ModelSource {
        ModelSource::inline(
            vec![InlineModel {
                template: AnyForecaster::MeanOfLastK(MeanOfLastK::new(5)),
                fitted: None,
                retrain_every: 24,
            }],
            60_000 * 15,
            8,
        )
    }

    #[test]
    fn simulation_serves_trips() {
        let config = SimConfig::small(1);
        let report = run(&config, inline_source());
        assert!(report.trips_served > 100, "served {}", report.trips_served);
        assert!(report.total_revenue > 0.0);
        assert!(report.events_processed > report.trips_served);
        assert!(report.service_rate() > 0.3);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = SimConfig::small(7);
        let a = run(&config, inline_source());
        let b = run(&config, inline_source());
        assert_eq!(a.trips_served, b.trips_served);
        assert_eq!(a.trips_lost, b.trips_lost);
        assert_eq!(a.total_revenue, b.total_revenue);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&SimConfig::small(1), inline_source());
        let b = run(&SimConfig::small(2), inline_source());
        assert_ne!(a.trips_served, b.trips_served);
    }

    #[test]
    fn inline_mode_trains_and_allocates() {
        let config = SimConfig::small(3);
        let report = run(&config, inline_source());
        assert!(report.trainings > 0);
        assert!(report.peak_model_bytes > 0);
        assert!(report.forecast_mape > 0.0, "forecasts were compared online");
    }

    #[test]
    fn more_drivers_serve_more() {
        let mut low = SimConfig::small(4);
        low.n_drivers = 5;
        let mut high = SimConfig::small(4);
        high.n_drivers = 120;
        let report_low = run(&low, inline_source());
        let report_high = run(&high, inline_source());
        assert!(report_high.service_rate() > report_low.service_rate());
    }
}
