//! Discrete-event core: a time-ordered event queue with deterministic
//! FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in milliseconds.
pub type SimTime = u64;

/// A scheduled occurrence. `K` is the domain event payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<K> {
    pub time: SimTime,
    seq: u64,
    pub kind: K,
}

impl<K: Eq> Ord for Scheduled<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest first, with
        // insertion order breaking ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<K: Eq> PartialOrd for Scheduled<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue driving a simulation.
#[derive(Debug)]
pub struct EventQueue<K: Eq> {
    heap: BinaryHeap<Scheduled<K>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl<K: Eq> Default for EventQueue<K> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            processed: 0,
        }
    }
}

impl<K: Eq> EventQueue<K> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `kind` at absolute time `time`. Scheduling in the past is
    /// clamped to `now` (the event fires immediately next).
    pub fn schedule(&mut self, time: SimTime, kind: K) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, kind });
    }

    /// Schedule `kind` at `now + delay`.
    pub fn schedule_in(&mut self, delay: SimTime, kind: K) {
        self.schedule(self.now.saturating_add(delay), kind);
    }

    /// Pop the earliest event, advancing simulated time.
    pub fn pop(&mut self) -> Option<Scheduled<K>> {
        let event = self.heap.pop()?;
        debug_assert!(event.time >= self.now, "time must be monotone");
        self.now = event.time;
        self.processed += 1;
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop().unwrap().kind, "a");
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop().unwrap().kind, "b");
        assert_eq!(q.pop().unwrap().kind, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        q.schedule(5, "third");
        assert_eq!(q.pop().unwrap().kind, "first");
        assert_eq!(q.pop().unwrap().kind, "second");
        assert_eq!(q.pop().unwrap().kind, "third");
    }

    #[test]
    fn past_scheduling_clamped() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.pop();
        q.schedule(3, "late");
        let e = q.pop().unwrap();
        assert_eq!(e.time, 10);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, "a");
        q.pop();
        q.schedule_in(50, "b");
        assert_eq!(q.pop().unwrap().time, 150);
    }
}
