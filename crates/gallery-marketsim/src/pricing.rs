//! Surge pricing driven by demand forecasts — the simulator's model
//! consumption point. The §4.3 case study hinges on *where the model comes
//! from*: trained inline during the run, or fetched pretrained from
//! Gallery.

/// Surge policy: quote a multiplier from forecast demand vs available
/// supply over the next interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgePolicy {
    /// Demand/supply ratio at which surge starts.
    pub threshold: f64,
    /// Multiplier gained per unit of excess ratio.
    pub slope: f64,
    pub max_surge: f64,
}

impl Default for SurgePolicy {
    fn default() -> Self {
        SurgePolicy {
            threshold: 1.0,
            slope: 0.8,
            max_surge: 3.0,
        }
    }
}

impl SurgePolicy {
    /// Compute the surge multiplier.
    pub fn surge(&self, forecast_demand: f64, idle_supply: usize) -> f64 {
        let supply = (idle_supply as f64).max(1.0);
        let ratio = (forecast_demand / supply).max(0.0);
        if ratio <= self.threshold {
            1.0
        } else {
            (1.0 + self.slope * (ratio - self.threshold)).min(self.max_surge)
        }
    }

    /// Base fare + per-distance fare, scaled by surge.
    pub fn fare(&self, distance: u32, surge: f64) -> f64 {
        (2.5 + 0.8 * distance as f64) * surge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_surge_when_supply_ample() {
        let p = SurgePolicy::default();
        assert_eq!(p.surge(10.0, 50), 1.0);
    }

    #[test]
    fn surge_rises_with_imbalance() {
        let p = SurgePolicy::default();
        let low = p.surge(20.0, 10);
        let high = p.surge(40.0, 10);
        assert!(high > low);
        assert!(low > 1.0);
    }

    #[test]
    fn surge_capped() {
        let p = SurgePolicy::default();
        assert_eq!(p.surge(1e9, 1), p.max_surge);
    }

    #[test]
    fn zero_supply_handled() {
        let p = SurgePolicy::default();
        let s = p.surge(10.0, 0);
        assert!(s.is_finite() && s > 1.0);
    }

    #[test]
    fn fare_scales_with_surge_and_distance() {
        let p = SurgePolicy::default();
        assert!(p.fare(10, 2.0) > p.fare(10, 1.0));
        assert!(p.fare(20, 1.0) > p.fare(10, 1.0));
    }
}
