//! Where the simulator's forecasting models come from — the crux of the
//! §4.3 case study.
//!
//! **Inline**: models are implemented in the simulator and "trained on the
//! fly as the simulator ran" — the simulator accumulates training buffers
//! and burns CPU retraining, which is exactly the memory and compute the
//! paper says Gallery eliminated.
//!
//! **Gallery-backed**: "offline processes can store reusable model
//! instances into Gallery, and the simulation backend service can
//! instantiate such models as they're needed" — the simulator fetches
//! opaque blobs and deserializes; no buffers, no training.

use crate::event::SimTime;
use crate::memory::ResourceTracker;
use gallery_core::{Gallery, InstanceId};
use gallery_forecast::models::{AnyForecaster, Forecaster};
use gallery_forecast::series::TimeSeries;
use std::time::Instant;

/// Bytes per buffered training sample (value + event flag + bookkeeping).
const BYTES_PER_SAMPLE: u64 = 24;

/// One inline-trained model: the untrained template plus its growing
/// training buffer.
#[derive(Debug, Clone)]
pub struct InlineModel {
    pub template: AnyForecaster,
    pub fitted: Option<AnyForecaster>,
    /// Intervals between retrains.
    pub retrain_every: usize,
}

/// The simulator's model provider.
pub enum ModelSource {
    /// Models trained inside the simulation loop.
    Inline {
        models: Vec<InlineModel>,
        /// Observed demand per interval (the shared training buffer).
        buffer: Vec<f64>,
        buffer_flags: Vec<bool>,
        interval_ms: i64,
        intervals_seen: usize,
        /// Warmup intervals before the first fit attempt.
        min_history: usize,
    },
    /// Pretrained models fetched from Gallery.
    GalleryBacked {
        models: Vec<AnyForecaster>,
        /// Blob bytes fetched (accounted once).
        fetched_bytes: u64,
    },
}

impl ModelSource {
    pub fn inline(models: Vec<InlineModel>, interval_ms: i64, min_history: usize) -> Self {
        ModelSource::Inline {
            models,
            buffer: Vec::new(),
            buffer_flags: Vec::new(),
            interval_ms,
            intervals_seen: 0,
            min_history,
        }
    }

    /// Fetch pretrained instances from Gallery (the §4.3 decoupled path).
    pub fn from_gallery(
        gallery: &Gallery,
        instance_ids: &[InstanceId],
        tracker: &mut ResourceTracker,
    ) -> Result<Self, String> {
        let mut models = Vec::with_capacity(instance_ids.len());
        let mut fetched_bytes = 0u64;
        for id in instance_ids {
            let blob = gallery.fetch_instance_blob(id).map_err(|e| e.to_string())?;
            fetched_bytes += blob.len() as u64;
            models.push(AnyForecaster::from_blob(&blob).map_err(|e| e.to_string())?);
        }
        // The only memory the decoupled simulator holds is the blobs.
        tracker.alloc(fetched_bytes);
        Ok(ModelSource::GalleryBacked {
            models,
            fetched_bytes,
        })
    }

    pub fn model_count(&self) -> usize {
        match self {
            ModelSource::Inline { models, .. } => models.len(),
            ModelSource::GalleryBacked { models, .. } => models.len(),
        }
    }

    /// Record an observed interval demand. Inline mode grows its buffer
    /// (accounted) and retrains due models; Gallery mode is a no-op.
    pub fn observe_interval(
        &mut self,
        actual_demand: f64,
        event_flag: bool,
        tracker: &mut ResourceTracker,
    ) {
        match self {
            ModelSource::GalleryBacked { .. } => {}
            ModelSource::Inline {
                models,
                buffer,
                buffer_flags,
                interval_ms,
                intervals_seen,
                min_history,
            } => {
                buffer.push(actual_demand);
                buffer_flags.push(event_flag);
                // Each inline model keeps its own training pipeline state
                // (features, buffers) — account per model, which is what
                // made the paper's simulator memory-heavy.
                tracker.alloc(BYTES_PER_SAMPLE * models.len().max(1) as u64);
                *intervals_seen += 1;
                if buffer.len() < *min_history {
                    return;
                }
                let series = TimeSeries::new(0, *interval_ms, buffer.clone())
                    .with_events(buffer_flags.clone());
                for model in models.iter_mut() {
                    let due = *intervals_seen % model.retrain_every == 0 || model.fitted.is_none();
                    if !due {
                        continue;
                    }
                    let mut candidate = model.template.clone();
                    // Transient training memory: a design-matrix-sized
                    // allocation lives for the duration of the fit.
                    let transient = buffer.len() as u64 * 16 * 8;
                    tracker.alloc(transient);
                    let started = Instant::now();
                    let fitted = candidate.fit(&series).is_ok();
                    tracker.record_training(buffer.len() as u64, started.elapsed());
                    tracker.free(transient);
                    if fitted {
                        model.fitted = Some(candidate);
                    }
                }
            }
        }
    }

    /// Forecast the next interval's demand with the primary model.
    ///
    /// Units contract: `history` is the sequence of *observed arrival
    /// counts per interval*; the returned forecast is in the same units.
    /// Gallery-backed models must therefore be trained offline on
    /// count-scale series (see `SimConfig::historical_counts`).
    pub fn forecast(&self, history: &[f64], t: usize, event_now: bool) -> f64 {
        match self {
            ModelSource::GalleryBacked { models, .. } => models
                .first()
                .map(|m| m.forecast_next(history, t, event_now))
                .unwrap_or(0.0),
            ModelSource::Inline { models, buffer, .. } => models
                .iter()
                .find_map(|m| m.fitted.as_ref())
                .map(|m| m.forecast_next(buffer, buffer.len(), event_now))
                .unwrap_or_else(|| {
                    // untrained warmup: last observed value
                    buffer
                        .last()
                        .copied()
                        .unwrap_or(history.last().copied().unwrap_or(0.0))
                }),
        }
    }

    /// When the next retrain would be due (Inline only; used by tests).
    pub fn is_inline(&self) -> bool {
        matches!(self, ModelSource::Inline { .. })
    }
}

impl std::fmt::Debug for ModelSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelSource::Inline { models, buffer, .. } => f
                .debug_struct("ModelSource::Inline")
                .field("models", &models.len())
                .field("buffered_samples", &buffer.len())
                .finish(),
            ModelSource::GalleryBacked {
                models,
                fetched_bytes,
            } => f
                .debug_struct("ModelSource::GalleryBacked")
                .field("models", &models.len())
                .field("fetched_bytes", fetched_bytes)
                .finish(),
        }
    }
}

/// Time helper: one interval in simulated ms.
pub fn interval_to_simtime(interval_ms: i64) -> SimTime {
    interval_ms.max(1) as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gallery_core::{InstanceSpec, ModelSpec};
    use gallery_forecast::models::MeanOfLastK;

    fn template() -> AnyForecaster {
        AnyForecaster::MeanOfLastK(MeanOfLastK::new(5))
    }

    #[test]
    fn inline_accumulates_memory_and_training_cost() {
        let mut tracker = ResourceTracker::new();
        let mut source = ModelSource::inline(
            vec![InlineModel {
                template: template(),
                fitted: None,
                retrain_every: 10,
            }],
            60_000,
            5,
        );
        for i in 0..100 {
            source.observe_interval(50.0 + i as f64, false, &mut tracker);
        }
        assert!(tracker.current_bytes() >= 100 * BYTES_PER_SAMPLE);
        assert!(
            tracker.trainings() >= 9,
            "trainings {}",
            tracker.trainings()
        );
        assert!(tracker.training_samples() > 0);
        // transient training memory shows in the peak, not the steady state
        assert!(tracker.peak_bytes() > tracker.current_bytes());
        // and forecasting works
        let f = source.forecast(&[], 100, false);
        assert!(f > 0.0);
    }

    #[test]
    fn gallery_backed_holds_only_blobs() {
        let gallery = Gallery::in_memory();
        let model = gallery
            .create_model(ModelSpec::new("p", "demand").name("heuristic"))
            .unwrap();
        let mut trained = template();
        trained
            .fit(&TimeSeries::new(0, 60_000, vec![40.0; 50]))
            .unwrap();
        let inst = gallery
            .upload_instance(
                &model.id,
                InstanceSpec::new(),
                Bytes::from(trained.to_blob()),
            )
            .unwrap();
        let mut tracker = ResourceTracker::new();
        let mut source = ModelSource::from_gallery(&gallery, &[inst.id], &mut tracker).unwrap();
        let blob_bytes = tracker.current_bytes();
        assert!(blob_bytes > 0);
        // Observing many intervals adds no memory and no training.
        for _ in 0..1000 {
            source.observe_interval(50.0, false, &mut tracker);
        }
        assert_eq!(tracker.current_bytes(), blob_bytes);
        assert_eq!(tracker.trainings(), 0);
        let f = source.forecast(&[40.0; 20], 20, false);
        assert!((f - 40.0).abs() < 1e-9);
    }

    #[test]
    fn inline_warmup_uses_last_value() {
        let mut tracker = ResourceTracker::new();
        let mut source = ModelSource::inline(
            vec![InlineModel {
                template: template(),
                fitted: None,
                retrain_every: 10,
            }],
            60_000,
            50,
        );
        source.observe_interval(42.0, false, &mut tracker);
        assert_eq!(source.forecast(&[], 1, false), 42.0);
    }

    #[test]
    fn missing_instance_reported() {
        let gallery = Gallery::in_memory();
        let mut tracker = ResourceTracker::new();
        let err = ModelSource::from_gallery(&gallery, &[InstanceId::from("ghost")], &mut tracker);
        assert!(err.is_err());
    }
}
