//! # gallery-marketsim
//!
//! The Marketplace Simulation Platform substrate (§4.3 of the Gallery
//! paper): an agent-based discrete-event simulator hosting "a simulated
//! world with driver-partners and riders". Surge pricing consults a demand
//! forecaster each interval; where that forecaster comes from is the §4.3
//! case study:
//!
//! - [`modelsource::ModelSource::Inline`] — models implemented in the
//!   simulator and trained on the fly (pre-Gallery), holding training
//!   buffers and burning CPU inside the run;
//! - [`modelsource::ModelSource::GalleryBacked`] — pretrained instances
//!   fetched from Gallery and instantiated on demand (post-Gallery).
//!
//! [`memory::ResourceTracker`] quantifies the memory and training-CPU
//! savings the paper reports (~8 GB and ~1 CPU-hour per simulation).

pub mod agents;
pub mod event;
pub mod geo;
pub mod matching;
pub mod memory;
pub mod modelsource;
pub mod pricing;
pub mod sim;

pub use agents::{Driver, DriverStatus, TripRequest};
pub use event::{EventQueue, SimTime};
pub use geo::{CityGrid, Point};
pub use memory::ResourceTracker;
pub use modelsource::{InlineModel, ModelSource};
pub use pricing::SurgePolicy;
pub use sim::{run, run_gallery_backed, SimConfig, SimReport};
