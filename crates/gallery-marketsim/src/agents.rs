//! Agents of the marketplace: riders (trip requests) and driver-partners.

use crate::event::SimTime;
use crate::geo::Point;
use serde::{Deserialize, Serialize};

/// A rider's trip request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripRequest {
    pub id: u64,
    pub origin: Point,
    pub destination: Point,
    pub requested_at: SimTime,
    /// Surge multiplier quoted at request time.
    pub quoted_surge: f64,
}

/// Driver availability state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriverStatus {
    Idle,
    /// En route to a pickup or carrying a rider; busy until the stored time.
    Busy {
        until: SimTime,
    },
}

/// A driver-partner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Driver {
    pub id: u64,
    pub position: Point,
    pub status: DriverStatus,
    pub trips_completed: u64,
    pub earnings: f64,
}

impl Driver {
    pub fn new(id: u64, position: Point) -> Self {
        Driver {
            id,
            position,
            status: DriverStatus::Idle,
            trips_completed: 0,
            earnings: 0.0,
        }
    }

    pub fn is_idle(&self) -> bool {
        matches!(self.status, DriverStatus::Idle)
    }

    /// Mark busy until `until`, ending at `destination`.
    pub fn start_trip(&mut self, destination: Point, until: SimTime) {
        self.status = DriverStatus::Busy { until };
        self.position = destination;
    }

    pub fn finish_trip(&mut self, fare: f64) {
        self.status = DriverStatus::Idle;
        self.trips_completed += 1;
        self.earnings += fare;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_trip_lifecycle() {
        let mut d = Driver::new(1, Point::new(0, 0));
        assert!(d.is_idle());
        d.start_trip(Point::new(5, 5), 1000);
        assert!(!d.is_idle());
        assert_eq!(d.position, Point::new(5, 5));
        d.finish_trip(12.5);
        assert!(d.is_idle());
        assert_eq!(d.trips_completed, 1);
        assert_eq!(d.earnings, 12.5);
    }
}
