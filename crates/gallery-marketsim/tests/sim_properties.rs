//! Property tests for the marketplace simulator.

use gallery_forecast::models::{AnyForecaster, MeanOfLastK};
use gallery_marketsim::{run, EventQueue, InlineModel, ModelSource, SimConfig};
use proptest::prelude::*;

fn inline_source(interval_ms: i64) -> ModelSource {
    ModelSource::inline(
        vec![InlineModel {
            template: AnyForecaster::MeanOfLastK(MeanOfLastK::new(5)),
            fitted: None,
            retrain_every: 24,
        }],
        interval_ms,
        8,
    )
}

proptest! {
    /// Event queue pops in nondecreasing time order with FIFO ties, for
    /// arbitrary schedules.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(*t, i);
        }
        let mut last_time = 0u64;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last_time);
            if e.time != last_time {
                seen_at_time.clear();
                last_time = e.time;
            }
            // FIFO within a timestamp: payload indices increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(e.kind > prev, "FIFO violated at t={}", e.time);
            }
            seen_at_time.push(e.kind);
        }
        prop_assert_eq!(q.processed(), times.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Simulation accounting identities hold for arbitrary seeds and fleet
    /// sizes: served + lost trips are consistent, revenue is nonnegative,
    /// and reports are reproducible per seed.
    #[test]
    fn simulation_accounting(seed in 0u64..100, drivers in 5usize..60) {
        let mut config = SimConfig::small(seed);
        config.days = 1;
        config.n_drivers = drivers;
        let report = run(&config, inline_source(config.interval_ms()));
        prop_assert!(report.trips_served + report.trips_lost > 0);
        prop_assert!(report.total_revenue >= 0.0);
        prop_assert!(report.service_rate() >= 0.0 && report.service_rate() <= 1.0);
        prop_assert!(report.mean_wait_ms >= 0.0);
        // reproducibility
        let again = run(&config, inline_source(config.interval_ms()));
        prop_assert_eq!(report.trips_served, again.trips_served);
        prop_assert_eq!(report.trips_lost, again.trips_lost);
        prop_assert_eq!(report.total_revenue, again.total_revenue);
        prop_assert_eq!(report.events_processed, again.events_processed);
    }
}
