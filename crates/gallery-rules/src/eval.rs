//! Evaluator for rule expressions.
//!
//! Semantics follow JEXL's lenient style where the paper depends on it:
//! unknown identifiers and missing members evaluate to `Null`, and any
//! comparison involving `Null` is false (so a rule over a metric that has
//! not been reported yet simply does not fire, rather than erroring).

use crate::ast::{BinOp, Expr, ExprKind, UnOp};
use crate::token::Span;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum AST depth the evaluator will recurse into. Parsed expressions
/// are already bounded by [`crate::parser::MAX_DEPTH`]; this guards
/// hand-built ASTs the same way.
pub const MAX_EVAL_DEPTH: usize = 256;

/// Runtime value of the expression language.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Object(BTreeMap<String, EvalValue>),
}

impl EvalValue {
    pub fn object(entries: impl IntoIterator<Item = (String, EvalValue)>) -> Self {
        EvalValue::Object(entries.into_iter().collect())
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            EvalValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            EvalValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            EvalValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness: used by `&&`, `||`, `!`. Null and false are falsy;
    /// everything else (including 0 and "") is an error-free truthy —
    /// except numbers/strings are NOT silently coerced: boolean operators
    /// require Bool or Null to keep rules unambiguous.
    fn truthy(&self, span: Span) -> Result<bool, EvalError> {
        match self {
            EvalValue::Bool(b) => Ok(*b),
            EvalValue::Null => Ok(false),
            other => Err(EvalError::at(
                span,
                format!("expected boolean, got {other}"),
            )),
        }
    }
}

impl fmt::Display for EvalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalValue::Null => write!(f, "null"),
            EvalValue::Bool(b) => write!(f, "{b}"),
            EvalValue::Num(x) => write!(f, "{x}"),
            EvalValue::Str(s) => write!(f, "{s}"),
            EvalValue::Object(o) => write!(f, "<object with {} fields>", o.len()),
        }
    }
}

impl From<bool> for EvalValue {
    fn from(b: bool) -> Self {
        EvalValue::Bool(b)
    }
}
impl From<f64> for EvalValue {
    fn from(x: f64) -> Self {
        EvalValue::Num(x)
    }
}
impl From<i64> for EvalValue {
    fn from(x: i64) -> Self {
        EvalValue::Num(x as f64)
    }
}
impl From<&str> for EvalValue {
    fn from(s: &str) -> Self {
        EvalValue::Str(s.to_owned())
    }
}
impl From<String> for EvalValue {
    fn from(s: String) -> Self {
        EvalValue::Str(s)
    }
}

/// Evaluation error, pointing at the subexpression that failed.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    pub message: String,
    pub span: Span,
}

impl EvalError {
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_dummy() {
            write!(f, "eval error: {}", self.message)
        } else {
            write!(f, "eval error at {}: {}", self.span, self.message)
        }
    }
}

impl std::error::Error for EvalError {}

/// Variable bindings for one evaluation.
#[derive(Debug, Clone, Default)]
pub struct EvalContext {
    vars: BTreeMap<String, EvalValue>,
}

impl EvalContext {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(mut self, name: impl Into<String>, value: impl Into<EvalValue>) -> Self {
        self.vars.insert(name.into(), value.into());
        self
    }

    pub fn set(&mut self, name: impl Into<String>, value: impl Into<EvalValue>) {
        self.vars.insert(name.into(), value.into());
    }

    pub fn get(&self, name: &str) -> Option<&EvalValue> {
        self.vars.get(name)
    }

    /// Merge another context's bindings under a prefix object, e.g.
    /// `a.created_time` for selection comparators.
    pub fn nest(&mut self, prefix: impl Into<String>, ctx: &EvalContext) {
        self.vars
            .insert(prefix.into(), EvalValue::Object(ctx.vars.clone()));
    }

    /// Set one entry of the `metrics` object (creating the object if
    /// absent) — used by the rule engine to bind the metric value that
    /// triggered an evaluation.
    pub fn set_metric(&mut self, name: impl Into<String>, value: f64) {
        match self.vars.get_mut("metrics") {
            Some(EvalValue::Object(map)) => {
                map.insert(name.into(), EvalValue::Num(value));
            }
            _ => {
                self.vars.insert(
                    "metrics".to_owned(),
                    EvalValue::object([(name.into(), EvalValue::Num(value))]),
                );
            }
        }
    }
}

/// Evaluate an expression against a context.
pub fn eval(expr: &Expr, ctx: &EvalContext) -> Result<EvalValue, EvalError> {
    eval_at(expr, ctx, 0)
}

fn eval_at(expr: &Expr, ctx: &EvalContext, depth: usize) -> Result<EvalValue, EvalError> {
    if depth > MAX_EVAL_DEPTH {
        return Err(EvalError::at(
            expr.span,
            format!("expression nesting exceeds {MAX_EVAL_DEPTH} levels"),
        ));
    }
    match &expr.kind {
        ExprKind::Null => Ok(EvalValue::Null),
        ExprKind::Bool(b) => Ok(EvalValue::Bool(*b)),
        ExprKind::Num(x) => Ok(EvalValue::Num(*x)),
        ExprKind::Str(s) => Ok(EvalValue::Str(s.clone())),
        ExprKind::Ident(name) => Ok(ctx.get(name).cloned().unwrap_or(EvalValue::Null)),
        ExprKind::Member(base, field) => {
            let base = eval_at(base, ctx, depth + 1)?;
            Ok(member(&base, field))
        }
        ExprKind::Index(base, key) => {
            let base_val = eval_at(base, ctx, depth + 1)?;
            let key_val = eval_at(key, ctx, depth + 1)?;
            match key_val {
                EvalValue::Str(k) => Ok(member(&base_val, &k)),
                other => Err(EvalError::at(
                    key.span,
                    format!("index key must be a string, got {other}"),
                )),
            }
        }
        ExprKind::Call(name, args) => {
            let values: Vec<EvalValue> = args
                .iter()
                .map(|a| eval_at(a, ctx, depth + 1))
                .collect::<Result<_, _>>()?;
            call(name, &values, expr.span)
        }
        ExprKind::Unary(op, e) => {
            let v = eval_at(e, ctx, depth + 1)?;
            match op {
                UnOp::Not => Ok(EvalValue::Bool(!v.truthy(e.span)?)),
                UnOp::Neg => match v {
                    EvalValue::Num(x) => Ok(EvalValue::Num(-x)),
                    EvalValue::Null => Ok(EvalValue::Null),
                    other => Err(EvalError::at(e.span, format!("cannot negate {other}"))),
                },
            }
        }
        ExprKind::Binary(op, l, r) => eval_binary(*op, l, r, ctx, depth),
    }
}

fn member(base: &EvalValue, field: &str) -> EvalValue {
    match base {
        EvalValue::Object(map) => map.get(field).cloned().unwrap_or(EvalValue::Null),
        // missing member on null stays null (lenient)
        _ => EvalValue::Null,
    }
}

fn eval_binary(
    op: BinOp,
    l: &Expr,
    r: &Expr,
    ctx: &EvalContext,
    depth: usize,
) -> Result<EvalValue, EvalError> {
    let span = l.span.to(r.span);
    // Short-circuit boolean operators.
    match op {
        BinOp::And => {
            let lv = eval_at(l, ctx, depth + 1)?;
            if !lv.truthy(l.span)? {
                return Ok(EvalValue::Bool(false));
            }
            let rv = eval_at(r, ctx, depth + 1)?;
            return Ok(EvalValue::Bool(rv.truthy(r.span)?));
        }
        BinOp::Or => {
            let lv = eval_at(l, ctx, depth + 1)?;
            if lv.truthy(l.span)? {
                return Ok(EvalValue::Bool(true));
            }
            let rv = eval_at(r, ctx, depth + 1)?;
            return Ok(EvalValue::Bool(rv.truthy(r.span)?));
        }
        _ => {}
    }
    let lv = eval_at(l, ctx, depth + 1)?;
    let rv = eval_at(r, ctx, depth + 1)?;
    use EvalValue::*;
    Ok(match op {
        BinOp::Eq => Bool(lv == rv),
        BinOp::Ne => Bool(lv != rv),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            // Null never satisfies an ordering comparison (lenient).
            if lv == Null || rv == Null {
                return Ok(Bool(false));
            }
            let ord = match (&lv, &rv) {
                (Num(a), Num(b)) => a.partial_cmp(b),
                (Str(a), Str(b)) => Some(a.cmp(b)),
                _ => None,
            }
            .ok_or_else(|| EvalError::at(span, format!("cannot compare {lv} with {rv}")))?;
            Bool(match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            })
        }
        BinOp::Add => match (&lv, &rv) {
            (Num(a), Num(b)) => Num(a + b),
            (Str(a), Str(b)) => Str(format!("{a}{b}")),
            _ => return Err(EvalError::at(span, format!("cannot add {lv} and {rv}"))),
        },
        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
            let (a, b) = match (&lv, &rv) {
                (Num(a), Num(b)) => (*a, *b),
                _ => {
                    return Err(EvalError::at(
                        span,
                        format!("arithmetic needs numbers, got {lv} and {rv}"),
                    ))
                }
            };
            Num(match op {
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                _ => unreachable!(),
            })
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    })
}

fn call(name: &str, args: &[EvalValue], span: Span) -> Result<EvalValue, EvalError> {
    let num = |v: &EvalValue, fname: &str| -> Result<f64, EvalError> {
        v.as_num()
            .ok_or_else(|| EvalError::at(span, format!("{fname} needs a number, got {v}")))
    };
    match (name, args) {
        ("abs", [v]) => Ok(EvalValue::Num(num(v, "abs")?.abs())),
        ("min", [a, b]) => Ok(EvalValue::Num(num(a, "min")?.min(num(b, "min")?))),
        ("max", [a, b]) => Ok(EvalValue::Num(num(a, "max")?.max(num(b, "max")?))),
        ("contains", [EvalValue::Str(s), EvalValue::Str(sub)]) => {
            Ok(EvalValue::Bool(s.contains(sub.as_str())))
        }
        ("starts_with", [EvalValue::Str(s), EvalValue::Str(p)]) => {
            Ok(EvalValue::Bool(s.starts_with(p.as_str())))
        }
        ("defined", [v]) => Ok(EvalValue::Bool(*v != EvalValue::Null)),
        ("len", [EvalValue::Str(s)]) => Ok(EvalValue::Num(s.chars().count() as f64)),
        _ => Err(EvalError::at(
            span,
            format!("unknown function {name}/{}", args.len()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ctx() -> EvalContext {
        let metrics = EvalValue::object([
            ("bias".to_string(), EvalValue::Num(0.05)),
            ("r2".to_string(), EvalValue::Num(0.95)),
        ]);
        EvalContext::new()
            .with("modelName", "linear_regression")
            .with("model_domain", "UberX")
            .with("created_time", 1000i64)
            .with("metrics", metrics)
    }

    fn run(src: &str) -> EvalValue {
        eval(&parse(src).unwrap(), &ctx()).unwrap()
    }

    #[test]
    fn listing1_given_clause() {
        assert_eq!(
            run(r#"modelName == "linear_regression" && model_domain == "UberX""#),
            EvalValue::Bool(true)
        );
        assert_eq!(
            run(r#"modelName == "random_forest" && model_domain == "UberX""#),
            EvalValue::Bool(false)
        );
    }

    #[test]
    fn listing1_when_clause_bracket_access() {
        assert_eq!(run(r#"metrics["r2"] <= 0.9"#), EvalValue::Bool(false));
        assert_eq!(run(r#"metrics["r2"] >= 0.9"#), EvalValue::Bool(true));
    }

    #[test]
    fn listing2_when_clause() {
        assert_eq!(
            run("metrics.bias <= 0.1 && metrics.bias >= -0.1"),
            EvalValue::Bool(true)
        );
    }

    #[test]
    fn missing_metric_is_lenient_false() {
        assert_eq!(run("metrics.mae < 0.5"), EvalValue::Bool(false));
        assert_eq!(run("defined(metrics.mae)"), EvalValue::Bool(false));
        assert_eq!(run("defined(metrics.bias)"), EvalValue::Bool(true));
    }

    #[test]
    fn unknown_identifier_is_null() {
        assert_eq!(run("nonsense == null"), EvalValue::Bool(true));
        assert_eq!(run("nonsense < 5"), EvalValue::Bool(false));
    }

    #[test]
    fn arithmetic_and_functions() {
        assert_eq!(run("1 + 2 * 3"), EvalValue::Num(7.0));
        assert_eq!(run("abs(0 - metrics.bias)"), EvalValue::Num(0.05));
        assert_eq!(run("max(metrics.bias, 0.1)"), EvalValue::Num(0.1));
        assert_eq!(run("min(metrics.bias, 0.1)"), EvalValue::Num(0.05));
        assert_eq!(run("10 % 3"), EvalValue::Num(1.0));
    }

    #[test]
    fn string_ops() {
        assert_eq!(
            run(r#"contains(modelName, "regression")"#),
            EvalValue::Bool(true)
        );
        assert_eq!(
            run(r#"starts_with(modelName, "linear")"#),
            EvalValue::Bool(true)
        );
        assert_eq!(run(r#"len(model_domain)"#), EvalValue::Num(5.0));
        assert_eq!(
            run(r#"modelName + "_v2""#),
            EvalValue::Str("linear_regression_v2".into())
        );
    }

    #[test]
    fn short_circuit() {
        // rhs would error (arithmetic on string) but is never evaluated
        let e = parse(r#"false && (modelName + 1 == 2)"#).unwrap();
        assert_eq!(eval(&e, &ctx()).unwrap(), EvalValue::Bool(false));
        let e = parse(r#"true || (modelName + 1 == 2)"#).unwrap();
        assert_eq!(eval(&e, &ctx()).unwrap(), EvalValue::Bool(true));
    }

    #[test]
    fn type_errors_reported() {
        assert!(eval(&parse("modelName - 1").unwrap(), &ctx()).is_err());
        assert!(eval(&parse("1 && true").unwrap(), &ctx()).is_err());
        assert!(eval(&parse(r#"metrics[5]"#).unwrap(), &ctx()).is_err());
        assert!(eval(&parse("bogus_fn(1)").unwrap(), &ctx()).is_err());
    }

    #[test]
    fn error_spans_point_at_failing_subexpression() {
        let src = "modelName == \"x\" || modelName - 1 > 0";
        let err = eval(&parse(src).unwrap(), &ctx()).unwrap_err();
        assert_eq!(err.span.slice(src).unwrap(), "modelName - 1");
        let src = r#"metrics[5] == null"#;
        let err = eval(&parse(src).unwrap(), &ctx()).unwrap_err();
        assert_eq!(err.span.slice(src).unwrap(), "5");
    }

    #[test]
    fn deep_hand_built_ast_errors_instead_of_overflowing() {
        use crate::ast::{ExprKind, UnOp};
        let mut e = Expr::from(ExprKind::Bool(true));
        for _ in 0..5_000 {
            e = Expr::from(ExprKind::Unary(UnOp::Not, Box::new(e)));
        }
        let err = eval(&e, &EvalContext::new()).unwrap_err();
        assert!(err.message.contains("nesting"), "message: {}", err.message);
        // Dispose of the deep tree iteratively to keep drop shallow.
        let mut cur = e;
        while let ExprKind::Unary(_, inner) = cur.kind {
            cur = *inner;
        }
    }

    #[test]
    fn nested_contexts_for_selection() {
        let mut outer = EvalContext::new();
        outer.nest("a", &ctx());
        let mut b = ctx();
        b.set("created_time", 2000i64);
        outer.nest("b", &b);
        let e = parse("a.created_time > b.created_time").unwrap();
        assert_eq!(eval(&e, &outer).unwrap(), EvalValue::Bool(false));
        let e = parse("b.created_time > a.created_time").unwrap();
        assert_eq!(eval(&e, &outer).unwrap(), EvalValue::Bool(true));
        // nested metric access
        let e = parse(r#"a.metrics["r2"] == b.metrics.r2"#).unwrap();
        assert_eq!(eval(&e, &outer).unwrap(), EvalValue::Bool(true));
    }
}
