//! Static analysis for the rule language.
//!
//! Three layers, run before a rule may enter the system:
//!
//! 1. **Semantic/type checking** — identifiers are resolved against a
//!    declared [`ContextSchema`] (model-metadata fields, the monitor gauge
//!    catalog with its ×1e6 descaling convention, rule-context bindings)
//!    and types are inferred bottom-up (bool/int/float/string/duration),
//!    with byte-range spans pointing at the offending token.
//! 2. **Abstract interpretation** — interval analysis on numeric
//!    subexpressions plus boolean constant folding flags always-true /
//!    always-false conditions, comparisons outside a signal's declared
//!    range (`feature_completeness > 1.2`), raw-gauge-scale thresholds on
//!    descaled bindings, division by a possibly-zero denominator, and
//!    contradictory or redundant bounds inside one conjunction.
//! 3. **Rule-set analysis** — across a rule set: duplicate ids, shadowed
//!    rules (an earlier rule's condition implies a later one's),
//!    contradictory actions on overlapping triggers, and rules whose
//!    GIVEN and WHEN clauses are jointly unsatisfiable.
//!
//! Every finding is a [`Diagnostic`] with a stable code from
//! [`crate::diag::codes`]; `Error`-severity findings reject the rule in
//! [`crate::repo::RuleRepo`] and [`crate::alerting::compile_condition`].

use crate::ast::{BinOp, Expr, ExprKind, UnOp};
use crate::diag::{codes, Diagnostic, Severity};
use crate::parser::parse;
use crate::rule::RuleDoc;
use crate::token::Span;
use gallery_telemetry::{FamilyKind, FamilyMeta};
use std::collections::BTreeMap;
use std::fmt;

/// Inferred expression type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    Bool,
    Int,
    Float,
    Duration,
    Str,
    Object,
    /// Unknown (open-world identifiers, lenient member access).
    Any,
}

impl Ty {
    fn is_numeric(self) -> bool {
        matches!(self, Ty::Int | Ty::Float | Ty::Duration)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Bool => "bool",
            Ty::Int => "int",
            Ty::Float => "float",
            Ty::Duration => "duration",
            Ty::Str => "string",
            Ty::Object => "object",
            Ty::Any => "unknown",
        };
        f.write_str(s)
    }
}

/// Declaration of one context variable: its type, declared value range
/// (infinite bounds when unbounded), and whether the binding is descaled
/// from a ×1e6 fixed-point gauge (thresholds are in natural units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarDecl {
    pub ty: Ty,
    pub lo: f64,
    pub hi: f64,
    pub descaled: bool,
}

impl VarDecl {
    pub const fn str() -> Self {
        VarDecl {
            ty: Ty::Str,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            descaled: false,
        }
    }

    pub const fn boolean() -> Self {
        VarDecl {
            ty: Ty::Bool,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            descaled: false,
        }
    }

    pub const fn object() -> Self {
        VarDecl {
            ty: Ty::Object,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            descaled: false,
        }
    }

    pub const fn num(ty: Ty, lo: f64, hi: f64) -> Self {
        VarDecl {
            ty,
            lo,
            hi,
            descaled: false,
        }
    }

    const fn descaled(mut self) -> Self {
        self.descaled = true;
        self
    }

    fn has_finite_bound(&self) -> bool {
        self.lo.is_finite() || self.hi.is_finite()
    }
}

impl From<&FamilyMeta> for VarDecl {
    fn from(m: &FamilyMeta) -> Self {
        match m.kind {
            FamilyKind::Counter => VarDecl::num(Ty::Int, 0.0, f64::INFINITY),
            // `Registry::family_value` reports a histogram's count.
            FamilyKind::Histogram => VarDecl::num(Ty::Int, 0.0, f64::INFINITY),
            FamilyKind::Gauge => {
                if m.scale == 1.0 {
                    VarDecl::num(Ty::Int, m.lo, m.hi)
                } else {
                    VarDecl::num(Ty::Float, m.lo, m.hi).descaled()
                }
            }
        }
    }
}

/// Families minted outside the crates `gallery-rules` depends on for their
/// catalogs (storage, service, registry, rules — all documented in
/// `docs/metrics.md`, which CI cross-checks against source literals).
const EXTRA_FAMILIES: &[FamilyMeta] = &[
    // gallery-store
    FamilyMeta::counter("gallery_dal_ops_total"),
    FamilyMeta::histogram("gallery_dal_op_duration_ms"),
    FamilyMeta::counter("gallery_dal_degraded_reads_total"),
    FamilyMeta::counter("gallery_dal_stale_reads_total"),
    FamilyMeta::counter("gallery_dal_orphans_repaired_total"),
    FamilyMeta::counter("gallery_blob_ops_total"),
    FamilyMeta::counter("gallery_blob_bytes_total"),
    FamilyMeta::histogram("gallery_blob_op_duration_ms"),
    FamilyMeta::counter("gallery_wal_appends_total"),
    FamilyMeta::counter("gallery_wal_flushes_total"),
    FamilyMeta::histogram("gallery_wal_append_duration_ms"),
    FamilyMeta::counter("gallery_wal_torn_tail_truncated_total"),
    FamilyMeta::gauge("gallery_wal_size_bytes", 1.0, 0.0, f64::INFINITY),
    FamilyMeta::gauge("gallery_meta_records", 1.0, 0.0, f64::INFINITY),
    FamilyMeta::gauge("gallery_blob_bytes_resident", 1.0, 0.0, f64::INFINITY),
    FamilyMeta::counter("gallery_cache_hits_total"),
    FamilyMeta::counter("gallery_cache_misses_total"),
    FamilyMeta::counter("gallery_cache_evictions_total"),
    FamilyMeta::gauge("gallery_cache_bytes", 1.0, 0.0, f64::INFINITY),
    FamilyMeta::histogram("gallery_backend_sim_latency_ms"),
    // gallery-service
    FamilyMeta::counter("gallery_rpc_client_calls_total"),
    FamilyMeta::counter("gallery_rpc_client_attempts_total"),
    FamilyMeta::histogram("gallery_rpc_client_call_duration_ms"),
    FamilyMeta::counter("gallery_rpc_breaker_rejections_total"),
    FamilyMeta::counter("gallery_breaker_transitions_total"),
    FamilyMeta::counter("gallery_rpc_server_requests_total"),
    FamilyMeta::histogram("gallery_rpc_server_handle_duration_ms"),
    FamilyMeta::counter("gallery_rpc_server_decode_errors_total"),
    FamilyMeta::counter("gallery_rpc_idempotent_replays_total"),
    // gallery-core registry
    FamilyMeta::counter("gallery_registry_ops_total"),
    FamilyMeta::histogram("gallery_registry_op_duration_ms"),
    FamilyMeta::counter("gallery_registry_propagated_instances_total"),
    // gallery-rules engine
    FamilyMeta::counter("gallery_rules_evals_total"),
    FamilyMeta::counter("gallery_rules_fired_total"),
    FamilyMeta::histogram("gallery_rule_eval_duration_ms"),
];

/// The identifier vocabulary one expression is checked against.
#[derive(Debug, Clone)]
pub struct ContextSchema {
    /// Human name for messages ("model instance", "alert condition", ...).
    pub kind_name: &'static str,
    /// Root identifiers.
    vars: BTreeMap<String, VarDecl>,
    /// Members of the `metrics` object.
    metrics: BTreeMap<String, VarDecl>,
    /// Unknown members of `metrics` are allowed (user-defined metrics).
    metrics_open: bool,
    /// Roots that are objects whose members resolve against another schema
    /// (the selection comparator's `a`/`b`).
    nested: Vec<&'static str>,
    nested_schema: Option<Box<ContextSchema>>,
    /// Unknown roots warn instead of erroring (contexts carry
    /// user-defined fields).
    open_world: bool,
}

/// Well-known validation-metric names with their mathematical ranges.
const KNOWN_METRIC_RANGES: &[(&str, f64, f64)] = &[
    ("r2", f64::NEG_INFINITY, 1.0),
    ("mae", 0.0, f64::INFINITY),
    ("mape", 0.0, f64::INFINITY),
    ("rmse", 0.0, f64::INFINITY),
    ("auc", 0.0, 1.0),
    ("accuracy", 0.0, 1.0),
    ("precision", 0.0, 1.0),
    ("recall", 0.0, 1.0),
    ("f1", 0.0, 1.0),
];

impl ContextSchema {
    /// Schema for GIVEN/WHEN clauses of repo rules: evaluation contexts
    /// built from a model instance (`crate::context`).
    pub fn instance_rules() -> Self {
        let mut vars = BTreeMap::new();
        for field in gallery_core::metadata::fields::ALL {
            let decl = match *field {
                "random_seed" | "epochs" => VarDecl::num(Ty::Int, 0.0, f64::INFINITY),
                _ => VarDecl::str(),
            };
            vars.insert((*field).to_owned(), decl);
        }
        for extra in [
            "modelName",
            "display_version",
            "base_version_id",
            "instance_id",
            "model_id",
        ] {
            vars.insert(extra.to_owned(), VarDecl::str());
        }
        vars.insert(
            "created_time".to_owned(),
            VarDecl::num(Ty::Duration, 0.0, f64::INFINITY),
        );
        vars.insert("deprecated".to_owned(), VarDecl::boolean());
        vars.insert("metrics".to_owned(), VarDecl::object());
        let metrics = KNOWN_METRIC_RANGES
            .iter()
            .map(|(name, lo, hi)| ((*name).to_owned(), VarDecl::num(Ty::Float, *lo, *hi)))
            .collect();
        ContextSchema {
            kind_name: "model instance",
            vars,
            metrics,
            metrics_open: true,
            nested: Vec::new(),
            nested_schema: None,
            open_world: true,
        }
    }

    /// Schema for MODEL_SELECTION comparators: `a` and `b` are candidate
    /// instances compared pairwise.
    pub fn selection_comparator() -> Self {
        ContextSchema {
            kind_name: "selection comparator",
            vars: BTreeMap::new(),
            metrics: BTreeMap::new(),
            metrics_open: false,
            nested: vec!["a", "b"],
            nested_schema: Some(Box::new(Self::instance_rules())),
            open_world: true,
        }
    }

    /// Schema for alert conditions: root identifiers (and `metrics.<name>`
    /// members) name metric families in the telemetry registry.
    pub fn alert_conditions() -> Self {
        let mut vars: BTreeMap<String, VarDecl> = BTreeMap::new();
        for fam in gallery_core::monitor::FAMILIES
            .iter()
            .chain(gallery_telemetry::alerts::FAMILIES)
            .chain(EXTRA_FAMILIES)
        {
            vars.insert(fam.name.to_owned(), fam.into());
        }
        let metrics: BTreeMap<String, VarDecl> =
            vars.iter().map(|(k, v)| (k.clone(), *v)).collect();
        vars.insert("metrics".to_owned(), VarDecl::object());
        ContextSchema {
            kind_name: "alert condition",
            vars,
            metrics,
            metrics_open: true,
            nested: Vec::new(),
            nested_schema: None,
            open_world: true,
        }
    }

    fn lookup(&self, segs: &[String]) -> Lookup {
        let root = &segs[0];
        if self.nested.iter().any(|n| n == root) {
            if segs.len() == 1 {
                return Lookup::Decl(VarDecl::object());
            }
            if let Some(inner) = &self.nested_schema {
                return inner.lookup(&segs[1..]);
            }
            return Lookup::Opaque;
        }
        if let Some(decl) = self.vars.get(root.as_str()) {
            if segs.len() == 1 {
                return Lookup::Decl(*decl);
            }
            if decl.ty == Ty::Object && root == "metrics" {
                let member = &segs[1];
                if let Some(md) = self.metrics.get(member.as_str()) {
                    if segs.len() == 2 {
                        return Lookup::Decl(*md);
                    }
                    return Lookup::ScalarMember {
                        base: format!("metrics.{member}"),
                        ty: md.ty,
                    };
                }
                if let Some(suggestion) = nearest(member, self.metrics.keys().map(|s| s.as_str())) {
                    return Lookup::Typo {
                        found: format!("metrics.{member}"),
                        suggestion: format!("metrics.{suggestion}"),
                    };
                }
                if segs.len() == 2 && self.metrics_open {
                    return Lookup::OpenNum;
                }
                return Lookup::Opaque;
            }
            if decl.ty == Ty::Object {
                return Lookup::Opaque;
            }
            return Lookup::ScalarMember {
                base: root.clone(),
                ty: decl.ty,
            };
        }
        let candidates = self
            .vars
            .keys()
            .map(|s| s.as_str())
            .chain(self.nested.iter().copied());
        if let Some(suggestion) = nearest(root, candidates) {
            return Lookup::Typo {
                found: root.clone(),
                suggestion,
            };
        }
        Lookup::UnknownRoot { name: root.clone() }
    }
}

enum Lookup {
    /// Full path resolved to a declaration.
    Decl(VarDecl),
    /// Unknown member of the open `metrics` object: a user-defined metric.
    OpenNum,
    /// Member of an opaque object: unknown, allowed.
    Opaque,
    /// Unknown name within edit distance of a declared one.
    Typo { found: String, suggestion: String },
    /// Unknown root in an open-world context.
    UnknownRoot { name: String },
    /// Member access on a declared scalar.
    ScalarMember { base: String, ty: Ty },
}

/// Optimal-string-alignment edit distance (insert/delete/substitute plus
/// adjacent transposition), the classic typo metric.
fn osa_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    let mut prev2 = vec![0usize; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                cur[j] = cur[j].min(prev2[j - 2] + 1);
            }
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Closest declared name within the typo threshold (distance ≤ 2, or ≤ 1
/// for short names where a 2-edit neighborhood is too noisy).
fn nearest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    let limit = if name.chars().count() >= 5 { 2 } else { 1 };
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        let d = osa_distance(name, cand);
        if d >= 1 && d <= limit && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c.to_owned())
}

// ---------------------------------------------------------------------------
// Reports

/// One diagnostic bound to the expression (and clause) it was found in.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which clause/file the source came from ("WHEN", "GIVEN", ...).
    pub origin: String,
    /// The analyzed source text the diagnostic's span indexes into.
    pub source: String,
    pub diag: Diagnostic,
}

impl Finding {
    pub fn render(&self) -> String {
        self.diag.render(&self.origin, &self.source)
    }
}

/// The full result of analyzing an expression, rule, or rule set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    pub findings: Vec<Finding>,
}

impl LintReport {
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn has_errors(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.diag.severity == Severity::Error)
    }

    pub fn codes(&self) -> Vec<&'static str> {
        self.findings.iter().map(|f| f.diag.code).collect()
    }

    /// Rustc-style rendering of every finding, errors first.
    pub fn render(&self) -> String {
        let mut ordered: Vec<&Finding> = self.findings.iter().collect();
        ordered.sort_by_key(|f| std::cmp::Reverse(f.diag.severity));
        let mut out = String::new();
        for f in ordered {
            out.push_str(&f.render());
        }
        let errors = self
            .findings
            .iter()
            .filter(|f| f.diag.severity == Severity::Error)
            .count();
        let warnings = self.findings.len() - errors;
        if !self.findings.is_empty() {
            out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
        }
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

impl std::error::Error for LintReport {}

// ---------------------------------------------------------------------------
// Abstract values

const FULL: (f64, f64) = (f64::NEG_INFINITY, f64::INFINITY);

/// Abstract value of one AST node.
#[derive(Debug, Clone, PartialEq)]
enum Abs {
    Bool(Option<bool>),
    /// Closed numeric interval (±∞ for unbounded sides).
    Num(f64, f64),
    Str(Option<String>),
    Null,
    Top,
}

fn interval(lo: f64, hi: f64) -> Abs {
    if lo.is_nan() || hi.is_nan() || lo > hi {
        Abs::Num(FULL.0, FULL.1)
    } else {
        Abs::Num(lo, hi)
    }
}

/// Per-node analysis result.
#[derive(Debug, Clone)]
struct Info {
    ty: Ty,
    abs: Abs,
    /// The value may be Null at runtime (metric not reported, field
    /// absent). Blocks folding comparisons to *true*; Null orderings are
    /// false at eval so folding to false stays sound.
    maybe_null: bool,
    /// Declaration backing this node directly (no arithmetic in between);
    /// drives out-of-range and scale diagnostics.
    decl: Option<(String, VarDecl)>,
}

impl Info {
    fn new(ty: Ty, abs: Abs) -> Self {
        Info {
            ty,
            abs,
            maybe_null: false,
            decl: None,
        }
    }

    fn unknown() -> Self {
        Info {
            ty: Ty::Any,
            abs: Abs::Top,
            maybe_null: true,
            decl: None,
        }
    }

    fn num_interval(&self) -> Option<(f64, f64)> {
        match self.abs {
            Abs::Num(lo, hi) => Some((lo, hi)),
            Abs::Top => {
                if self.ty.is_numeric() || self.ty == Ty::Any {
                    Some(FULL)
                } else {
                    None
                }
            }
            _ => {
                if self.ty == Ty::Any {
                    Some(FULL)
                } else {
                    None
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The expression analyzer

struct Analyzer<'a> {
    schema: &'a ContextSchema,
    out: Vec<Diagnostic>,
}

/// Evaluator builtins: name → (parameter types, return type).
fn builtin(name: &str) -> Option<(&'static [Ty], Ty)> {
    match name {
        "abs" => Some((&[Ty::Float], Ty::Float)),
        "min" | "max" => Some((&[Ty::Float, Ty::Float], Ty::Float)),
        "contains" | "starts_with" => Some((&[Ty::Str, Ty::Str], Ty::Bool)),
        "defined" => Some((&[Ty::Any], Ty::Bool)),
        "len" => Some((&[Ty::Str], Ty::Int)),
        _ => None,
    }
}

/// Structural path of an lvalue-like expression: `a.metrics["r2"]` →
/// `["a", "metrics", "r2"]`.
fn path_segments(e: &Expr) -> Option<Vec<String>> {
    match &e.kind {
        ExprKind::Ident(name) => Some(vec![name.clone()]),
        ExprKind::Member(base, field) => {
            let mut segs = path_segments(base)?;
            segs.push(field.clone());
            Some(segs)
        }
        ExprKind::Index(base, key) => {
            if let ExprKind::Str(k) = &key.kind {
                let mut segs = path_segments(base)?;
                segs.push(k.clone());
                Some(segs)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn const_num(e: &Expr) -> Option<f64> {
    match &e.kind {
        ExprKind::Num(x) => Some(*x),
        ExprKind::Unary(UnOp::Neg, inner) => const_num(inner).map(|x| -x),
        _ => None,
    }
}

impl<'a> Analyzer<'a> {
    fn new(schema: &'a ContextSchema) -> Self {
        Analyzer {
            schema,
            out: Vec::new(),
        }
    }

    fn check(&mut self, e: &Expr, conj: bool) -> Info {
        match &e.kind {
            ExprKind::Null => Info {
                ty: Ty::Any,
                abs: Abs::Null,
                maybe_null: true,
                decl: None,
            },
            ExprKind::Bool(b) => Info::new(Ty::Bool, Abs::Bool(Some(*b))),
            ExprKind::Num(x) => {
                let ty = if x.fract() == 0.0 { Ty::Int } else { Ty::Float };
                Info::new(ty, Abs::Num(*x, *x))
            }
            ExprKind::Str(s) => Info::new(Ty::Str, Abs::Str(Some(s.clone()))),
            ExprKind::Ident(_) | ExprKind::Member(..) => self.check_path(e),
            ExprKind::Index(base, key) => {
                if path_segments(e).is_some() {
                    return self.check_path(e);
                }
                let ki = self.check(key, false);
                if ki.ty != Ty::Str && ki.ty != Ty::Any {
                    self.out.push(Diagnostic::error(
                        codes::NON_STRING_KEY,
                        key.span,
                        format!("index key must be a string, found {}", ki.ty),
                    ));
                }
                self.check(base, false);
                Info::unknown()
            }
            ExprKind::Call(name, args) => self.check_call(e, name, args),
            ExprKind::Unary(op, inner) => {
                let ii = self.check(inner, false);
                match op {
                    UnOp::Not => {
                        self.require_bool(&ii, inner.span);
                        let abs = match ii.abs {
                            Abs::Bool(Some(b)) if !ii.maybe_null => Abs::Bool(Some(!b)),
                            _ => Abs::Bool(None),
                        };
                        Info::new(Ty::Bool, abs)
                    }
                    UnOp::Neg => {
                        if !matches!(ii.ty, Ty::Any) && !ii.ty.is_numeric() {
                            self.out.push(Diagnostic::error(
                                codes::TYPE_MISMATCH,
                                inner.span,
                                format!("cannot negate a {}", ii.ty),
                            ));
                        }
                        let abs = match ii.num_interval() {
                            Some((lo, hi)) => interval(-hi, -lo),
                            None => Abs::Top,
                        };
                        Info {
                            ty: if ii.ty.is_numeric() { ii.ty } else { Ty::Any },
                            abs,
                            maybe_null: ii.maybe_null,
                            decl: None,
                        }
                    }
                }
            }
            ExprKind::Binary(op, l, r) => self.check_binary(e, *op, l, r, conj),
        }
    }

    fn check_path(&mut self, e: &Expr) -> Info {
        let Some(segs) = path_segments(e) else {
            return Info::unknown();
        };
        match self.schema.lookup(&segs) {
            Lookup::Decl(decl) => {
                let abs = match decl.ty {
                    Ty::Bool => Abs::Bool(None),
                    Ty::Str => Abs::Str(None),
                    Ty::Object => Abs::Top,
                    _ => interval(decl.lo, decl.hi),
                };
                Info {
                    ty: decl.ty,
                    abs,
                    maybe_null: true,
                    decl: Some((segs.join("."), decl)),
                }
            }
            Lookup::OpenNum => Info {
                ty: Ty::Float,
                abs: Abs::Num(FULL.0, FULL.1),
                maybe_null: true,
                decl: None,
            },
            Lookup::Opaque => Info::unknown(),
            Lookup::Typo { found, suggestion } => {
                self.out.push(
                    Diagnostic::error(
                        codes::IDENT_TYPO,
                        e.span,
                        format!("unknown identifier `{found}`"),
                    )
                    .with_help(format!("did you mean `{suggestion}`?")),
                );
                Info::unknown()
            }
            Lookup::UnknownRoot { name } => {
                if self.schema.open_world {
                    self.out.push(Diagnostic::warning(
                        codes::UNKNOWN_IDENT,
                        e.span,
                        format!(
                            "`{name}` is not a declared {} identifier; it will be null unless \
                             the context binds it",
                            self.schema.kind_name
                        ),
                    ));
                } else {
                    self.out.push(Diagnostic::error(
                        codes::UNKNOWN_IDENT,
                        e.span,
                        format!("unknown {} identifier `{name}`", self.schema.kind_name),
                    ));
                }
                Info::unknown()
            }
            Lookup::ScalarMember { base, ty } => {
                self.out.push(Diagnostic::warning(
                    codes::MEMBER_OF_SCALAR,
                    e.span,
                    format!("`{base}` is a {ty}, not an object; member access yields null"),
                ));
                let mut info = Info::unknown();
                info.abs = Abs::Null;
                info
            }
        }
    }

    fn check_call(&mut self, e: &Expr, name: &str, args: &[Expr]) -> Info {
        let infos: Vec<Info> = args.iter().map(|a| self.check(a, false)).collect();
        let Some((params, ret)) = builtin(name) else {
            self.out.push(
                Diagnostic::error(
                    codes::UNKNOWN_FUNCTION,
                    e.span,
                    format!("unknown function `{name}`"),
                )
                .with_help(
                    "available functions: abs, min, max, contains, starts_with, defined, len",
                ),
            );
            return Info::unknown();
        };
        if params.len() != args.len() {
            self.out.push(Diagnostic::error(
                codes::BAD_ARITY,
                e.span,
                format!(
                    "`{name}` takes {} argument(s), found {}",
                    params.len(),
                    args.len()
                ),
            ));
            return Info::new(ret, Abs::Top);
        }
        for ((param, info), arg) in params.iter().zip(&infos).zip(args) {
            let ok = match param {
                Ty::Float => info.ty.is_numeric() || info.ty == Ty::Any,
                Ty::Str => matches!(info.ty, Ty::Str | Ty::Any),
                Ty::Any => true,
                _ => info.ty == *param || info.ty == Ty::Any,
            };
            if !ok {
                self.out.push(Diagnostic::error(
                    codes::TYPE_MISMATCH,
                    arg.span,
                    format!("`{name}` expects a {param} here, found {}", info.ty),
                ));
            }
        }
        // Interval transfer for the numeric builtins.
        let abs = match name {
            "abs" => match infos[0].num_interval() {
                Some((lo, hi)) => {
                    if lo >= 0.0 {
                        interval(lo, hi)
                    } else if hi <= 0.0 {
                        interval(-hi, -lo)
                    } else {
                        interval(0.0, (-lo).max(hi))
                    }
                }
                None => Abs::Top,
            },
            "min" | "max" => match (infos[0].num_interval(), infos[1].num_interval()) {
                (Some((alo, ahi)), Some((blo, bhi))) => {
                    if name == "min" {
                        interval(alo.min(blo), ahi.min(bhi))
                    } else {
                        interval(alo.max(blo), ahi.max(bhi))
                    }
                }
                _ => Abs::Top,
            },
            "len" => interval(0.0, f64::INFINITY),
            _ => match ret {
                Ty::Bool => Abs::Bool(None),
                _ => Abs::Top,
            },
        };
        Info::new(ret, abs)
    }

    fn check_binary(&mut self, e: &Expr, op: BinOp, l: &Expr, r: &Expr, conj: bool) -> Info {
        match op {
            BinOp::And | BinOp::Or => {
                let child_conj = conj && op == BinOp::And;
                let li = self.check(l, child_conj);
                let ri = self.check(r, child_conj);
                self.require_bool(&li, l.span);
                self.require_bool(&ri, r.span);
                // Literal operands: dead weight or a dead condition.
                for (side, info) in [(l, &li), (r, &ri)] {
                    if let ExprKind::Bool(b) = side.kind {
                        match (op, b) {
                            (BinOp::And, true) => self.out.push(Diagnostic::warning(
                                codes::ALWAYS_TRUE,
                                side.span,
                                "literal `true` has no effect in a conjunction",
                            )),
                            (BinOp::And, false) => self.out.push(Diagnostic::new_always_false(
                                conj,
                                side.span,
                                "literal `false` makes this condition always false",
                            )),
                            (BinOp::Or, true) => self.out.push(Diagnostic::warning(
                                codes::ALWAYS_TRUE,
                                side.span,
                                "literal `true` makes this condition always true",
                            )),
                            (BinOp::Or, false) => self.out.push(Diagnostic::warning(
                                codes::ALWAYS_FALSE,
                                side.span,
                                "literal `false` has no effect in a disjunction",
                            )),
                            _ => unreachable!("only And/Or reach this arm"),
                        }
                        let _ = info;
                    }
                }
                let (lb, rb) = (bool_of(&li), bool_of(&ri));
                let abs = match op {
                    BinOp::And => match (lb, rb) {
                        (Some(false), _) | (_, Some(false)) => Abs::Bool(Some(false)),
                        (Some(true), Some(true)) => Abs::Bool(Some(true)),
                        _ => Abs::Bool(None),
                    },
                    _ => match (lb, rb) {
                        (Some(true), _) | (_, Some(true)) => Abs::Bool(Some(true)),
                        (Some(false), Some(false)) => Abs::Bool(Some(false)),
                        _ => Abs::Bool(None),
                    },
                };
                Info::new(Ty::Bool, abs)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let li = self.check(l, false);
                let ri = self.check(r, false);
                self.check_comparison(e, op, l, &li, r, &ri, conj);
                Info::new(Ty::Bool, self.fold_comparison(op, &li, &ri))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let li = self.check(l, false);
                let ri = self.check(r, false);
                self.check_arith(e, op, l, &li, r, &ri)
            }
        }
    }

    /// Diagnostics for one comparison: type compatibility, then interval
    /// decisions (out-of-declared-range, always-true/false) and the
    /// descaling heuristic.
    #[allow(clippy::too_many_arguments)]
    fn check_comparison(
        &mut self,
        e: &Expr,
        op: BinOp,
        l: &Expr,
        li: &Info,
        r: &Expr,
        ri: &Info,
        conj: bool,
    ) {
        // Type compatibility.
        let compatible = li.ty == Ty::Any
            || ri.ty == Ty::Any
            || (li.ty.is_numeric() && ri.ty.is_numeric())
            || li.ty == ri.ty;
        if !compatible {
            let verb = if matches!(op, BinOp::Eq | BinOp::Ne) {
                "compare"
            } else {
                "order"
            };
            self.out.push(
                Diagnostic::error(
                    codes::TYPE_MISMATCH,
                    e.span,
                    format!("cannot {verb} {} with {}", li.ty, ri.ty),
                )
                .with_help("comparisons across types never hold; check the operand types"),
            );
            return;
        }
        if matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
            && ((li.ty == Ty::Bool) || (ri.ty == Ty::Bool))
        {
            self.out.push(Diagnostic::error(
                codes::TYPE_MISMATCH,
                e.span,
                "booleans cannot be order-compared",
            ));
            return;
        }
        let decided = self.decide(op, li, ri);
        // Which side is a declared signal compared against a constant?
        let decl_vs_const = match (&li.decl, const_num(r), &ri.decl, const_num(l)) {
            (Some((path, decl)), Some(c), _, _) => Some((path.clone(), *decl, c)),
            (_, _, Some((path, decl)), Some(c)) => Some((path.clone(), *decl, c)),
            _ => None,
        };
        match decided {
            Some(false) => {
                if let Some((path, decl, c)) = &decl_vs_const {
                    if decl.has_finite_bound() {
                        let mut d = Diagnostic::error(
                            codes::OUT_OF_RANGE,
                            e.span,
                            format!(
                                "comparison is always false: `{path}` is declared in {}",
                                range_str(decl)
                            ),
                        );
                        let mut help = format!("no value of `{path}` can satisfy this comparison");
                        if decl.descaled && c.abs() >= SCALE_SUSPECT {
                            help = format!(
                                "`{path}` is already descaled from the ×1e6 gauge; write the \
                                 threshold in natural units (e.g. {})",
                                c / 1e6
                            );
                        }
                        d = d.with_help(help);
                        self.out.push(d);
                        return;
                    }
                }
                self.out.push(Diagnostic::new_always_false(
                    conj,
                    e.span,
                    "comparison is always false",
                ));
            }
            Some(true) => {
                let qualifier = if li.maybe_null || ri.maybe_null {
                    " whenever its operands are present"
                } else {
                    ""
                };
                if let Some((path, decl, c)) = &decl_vs_const {
                    if decl.has_finite_bound() {
                        let help = if decl.descaled && c.abs() >= SCALE_SUSPECT {
                            format!(
                                "`{path}` is already descaled from the ×1e6 gauge; write the \
                                 threshold in natural units (e.g. {})",
                                c / 1e6
                            )
                        } else {
                            "this constraint never filters anything".to_owned()
                        };
                        self.out.push(
                            Diagnostic::warning(
                                codes::OUT_OF_RANGE,
                                e.span,
                                format!(
                                    "comparison is always true{qualifier}: `{path}` is \
                                     declared in {}",
                                    range_str(decl)
                                ),
                            )
                            .with_help(help),
                        );
                        return;
                    }
                }
                self.out.push(Diagnostic::warning(
                    codes::ALWAYS_TRUE,
                    e.span,
                    format!("comparison is always true{qualifier}"),
                ));
            }
            None => {
                if let Some((path, decl, c)) = &decl_vs_const {
                    if decl.descaled && c.abs() >= SCALE_SUSPECT {
                        self.out.push(
                            Diagnostic::warning(
                                codes::SUSPICIOUS_SCALE,
                                e.span,
                                format!(
                                    "threshold {c} looks like a raw ×1e6 gauge value, but \
                                     `{path}` is bound descaled (natural units)"
                                ),
                            )
                            .with_help(format!(
                                "did you mean {}? monitor gauges are divided by 1e6 before \
                                 rule evaluation",
                                c / 1e6
                            )),
                        );
                    }
                }
            }
        }
    }

    /// Can the comparison's outcome be decided from the abstract values?
    fn decide(&self, op: BinOp, li: &Info, ri: &Info) -> Option<bool> {
        match (&li.abs, &ri.abs) {
            (Abs::Num(alo, ahi), Abs::Num(blo, bhi)) => match op {
                BinOp::Lt => {
                    if ahi < blo {
                        Some(true)
                    } else if alo >= bhi {
                        Some(false)
                    } else {
                        None
                    }
                }
                BinOp::Le => {
                    if ahi <= blo {
                        Some(true)
                    } else if alo > bhi {
                        Some(false)
                    } else {
                        None
                    }
                }
                BinOp::Gt => {
                    if alo > bhi {
                        Some(true)
                    } else if ahi <= blo {
                        Some(false)
                    } else {
                        None
                    }
                }
                BinOp::Ge => {
                    if alo >= bhi {
                        Some(true)
                    } else if ahi < blo {
                        Some(false)
                    } else {
                        None
                    }
                }
                BinOp::Eq => {
                    if ahi < blo || bhi < alo {
                        Some(false)
                    } else if alo == ahi && blo == bhi && alo == blo {
                        Some(true)
                    } else {
                        None
                    }
                }
                BinOp::Ne => {
                    if ahi < blo || bhi < alo {
                        Some(true)
                    } else if alo == ahi && blo == bhi && alo == blo {
                        Some(false)
                    } else {
                        None
                    }
                }
                _ => None,
            },
            (Abs::Str(Some(a)), Abs::Str(Some(b))) => match op {
                BinOp::Eq => Some(a == b),
                BinOp::Ne => Some(a != b),
                _ => None,
            },
            _ => None,
        }
    }

    /// Fold the comparison into an abstract boolean, respecting Null
    /// semantics: a Null operand makes orderings (and Eq against non-null)
    /// false at eval, so decided-false folds are sound even for
    /// maybe-null operands; decided-true is only sound when neither
    /// operand can be Null.
    fn fold_comparison(&self, op: BinOp, li: &Info, ri: &Info) -> Abs {
        let maybe_null = li.maybe_null || ri.maybe_null;
        match self.decide(op, li, ri) {
            Some(false) if !matches!(op, BinOp::Ne) => Abs::Bool(Some(false)),
            Some(true) if !maybe_null => Abs::Bool(Some(true)),
            // `Ne` against Null evaluates true, so a decided-true Ne holds
            // even for absent operands; decided-false Ne needs presence.
            Some(true) if matches!(op, BinOp::Ne) => Abs::Bool(Some(true)),
            _ => Abs::Bool(None),
        }
    }

    fn check_arith(
        &mut self,
        e: &Expr,
        op: BinOp,
        l: &Expr,
        li: &Info,
        r: &Expr,
        ri: &Info,
    ) -> Info {
        // `+` concatenates strings; everything else needs numbers.
        let str_concat = op == BinOp::Add && (li.ty == Ty::Str || ri.ty == Ty::Str);
        if str_concat {
            for (side, info) in [(l, li), (r, ri)] {
                if !matches!(info.ty, Ty::Str | Ty::Any) {
                    self.out.push(Diagnostic::error(
                        codes::TYPE_MISMATCH,
                        side.span,
                        format!("cannot concatenate a {} with a string", info.ty),
                    ));
                }
            }
            return Info::new(Ty::Str, Abs::Str(None));
        }
        for (side, info) in [(l, li), (r, ri)] {
            if !info.ty.is_numeric() && info.ty != Ty::Any {
                self.out.push(Diagnostic::error(
                    codes::TYPE_MISMATCH,
                    side.span,
                    format!("arithmetic needs numbers, found {}", info.ty),
                ));
            }
        }
        let (a, b) = (
            li.num_interval().unwrap_or(FULL),
            ri.num_interval().unwrap_or(FULL),
        );
        let abs = match op {
            BinOp::Add => interval(a.0 + b.0, a.1 + b.1),
            BinOp::Sub => interval(a.0 - b.1, a.1 - b.0),
            BinOp::Mul => {
                let products = [a.0 * b.0, a.0 * b.1, a.1 * b.0, a.1 * b.1];
                let lo = products.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = products.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if products.iter().any(|p| p.is_nan()) {
                    Abs::Num(FULL.0, FULL.1)
                } else {
                    interval(lo, hi)
                }
            }
            BinOp::Div | BinOp::Rem => {
                // Warn only with evidence the divisor can be zero: a
                // declared or computed interval straddling zero with at
                // least one finite bound, or the literal zero itself. A
                // fully-unknown divisor stays silent.
                let evidenced = b.0 <= 0.0
                    && b.1 >= 0.0
                    && (b.0.is_finite() || b.1.is_finite() || (b.0 == 0.0 && b.1 == 0.0));
                if evidenced {
                    let msg = if b == (0.0, 0.0) {
                        "division by zero".to_owned()
                    } else {
                        let name = ri
                            .decl
                            .as_ref()
                            .map(|(p, _)| format!("`{p}`"))
                            .unwrap_or_else(|| "the divisor".to_owned());
                        format!("{name} may be zero (its value range includes 0)")
                    };
                    self.out.push(
                        Diagnostic::warning(codes::DIV_BY_ZERO, r.span, msg)
                            .with_help("guard the division, e.g. `x > 0 && a / x > t`"),
                    );
                }
                Abs::Num(FULL.0, FULL.1)
            }
            _ => unreachable!(),
        };
        let ty = match (li.ty, ri.ty) {
            (Ty::Int, Ty::Int) => Ty::Int,
            (x, y) if x.is_numeric() && y.is_numeric() => Ty::Float,
            _ => Ty::Any,
        };
        let _ = e;
        Info {
            ty,
            abs,
            maybe_null: li.maybe_null || ri.maybe_null,
            decl: None,
        }
    }

    fn require_bool(&mut self, info: &Info, span: Span) {
        if info.ty != Ty::Bool && info.ty != Ty::Any {
            self.out.push(Diagnostic::error(
                codes::TYPE_MISMATCH,
                span,
                format!("expected a boolean operand, found {}", info.ty),
            ));
        }
    }
}

impl Diagnostic {
    /// ALWAYS_FALSE severity depends on position: at the root conjunction
    /// the whole rule can never fire (error); inside a disjunction it is a
    /// dead branch (warning).
    fn new_always_false(conj: bool, span: Span, message: impl Into<String>) -> Self {
        if conj {
            Diagnostic::error(codes::ALWAYS_FALSE, span, message)
        } else {
            Diagnostic::warning(codes::ALWAYS_FALSE, span, message)
        }
    }
}

fn bool_of(info: &Info) -> Option<bool> {
    match info.abs {
        Abs::Bool(b) => b,
        _ => None,
    }
}

fn range_str(decl: &VarDecl) -> String {
    let lo = if decl.lo.is_finite() {
        format!("[{}", decl.lo)
    } else {
        "(-∞".to_owned()
    };
    let hi = if decl.hi.is_finite() {
        format!("{}]", decl.hi)
    } else {
        "∞)".to_owned()
    };
    format!("{lo}, {hi}")
}

/// Thresholds at or above this magnitude against a descaled gauge binding
/// look like raw ×1e6 values.
const SCALE_SUSPECT: f64 = 1e5;

// ---------------------------------------------------------------------------
// Conjunction (atom) analysis

/// One comparison atom `path op constant` inside a conjunction.
#[derive(Debug, Clone)]
struct Atom {
    path: String,
    cmp: AtomCmp,
    span: Span,
}

#[derive(Debug, Clone, PartialEq)]
enum AtomCmp {
    Num(BinOp, f64),
    EqStr(String),
    NeStr(String),
}

/// Allowed set of a numeric atom as a half-open-aware interval.
#[derive(Debug, Clone, Copy, PartialEq)]
struct NumSet {
    lo: f64,
    lo_open: bool,
    hi: f64,
    hi_open: bool,
}

impl NumSet {
    const FULL: NumSet = NumSet {
        lo: f64::NEG_INFINITY,
        lo_open: false,
        hi: f64::INFINITY,
        hi_open: false,
    };

    fn of(op: BinOp, c: f64) -> Option<NumSet> {
        let mut s = NumSet::FULL;
        match op {
            BinOp::Lt => {
                s.hi = c;
                s.hi_open = true;
            }
            BinOp::Le => s.hi = c,
            BinOp::Gt => {
                s.lo = c;
                s.lo_open = true;
            }
            BinOp::Ge => s.lo = c,
            BinOp::Eq => {
                s.lo = c;
                s.hi = c;
            }
            // `!=` removes a point; it neither constrains nor is implied.
            _ => return None,
        }
        Some(s)
    }

    fn intersect(self, other: NumSet) -> NumSet {
        let (lo, lo_open) = if other.lo > self.lo {
            (other.lo, other.lo_open)
        } else if other.lo < self.lo {
            (self.lo, self.lo_open)
        } else {
            (self.lo, self.lo_open || other.lo_open)
        };
        let (hi, hi_open) = if other.hi < self.hi {
            (other.hi, other.hi_open)
        } else if other.hi > self.hi {
            (self.hi, self.hi_open)
        } else {
            (self.hi, self.hi_open || other.hi_open)
        };
        NumSet {
            lo,
            lo_open,
            hi,
            hi_open,
        }
    }

    fn is_empty(self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_open || self.hi_open))
    }

    /// Is `self` contained in `other`?
    fn subset_of(self, other: NumSet) -> bool {
        let lo_ok = self.lo > other.lo || (self.lo == other.lo && (self.lo_open || !other.lo_open));
        let hi_ok = self.hi < other.hi || (self.hi == other.hi && (self.hi_open || !other.hi_open));
        lo_ok && hi_ok
    }
}

/// Flatten a `&&` chain into its conjuncts.
fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match &e.kind {
        ExprKind::Binary(BinOp::And, l, r) => {
            let mut out = conjuncts(l);
            out.extend(conjuncts(r));
            out
        }
        _ => vec![e],
    }
}

/// Extract the atom of a single comparison conjunct, normalizing
/// `const op path` to `path op' const`.
fn atom_of(e: &Expr) -> Option<Atom> {
    let ExprKind::Binary(op, l, r) = &e.kind else {
        return None;
    };
    if !op.is_comparison() {
        return None;
    }
    let flipped = |op: BinOp| match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    };
    let (path, op, cexpr) = if let Some(segs) = path_segments(l) {
        (segs.join("."), *op, &**r)
    } else if let Some(segs) = path_segments(r) {
        (segs.join("."), flipped(*op), &**l)
    } else {
        return None;
    };
    if let Some(c) = const_num(cexpr) {
        return Some(Atom {
            path,
            cmp: AtomCmp::Num(op, c),
            span: e.span,
        });
    }
    if let ExprKind::Str(s) = &cexpr.kind {
        match op {
            BinOp::Eq => {
                return Some(Atom {
                    path,
                    cmp: AtomCmp::EqStr(s.clone()),
                    span: e.span,
                })
            }
            BinOp::Ne => {
                return Some(Atom {
                    path,
                    cmp: AtomCmp::NeStr(s.clone()),
                    span: e.span,
                })
            }
            _ => {}
        }
    }
    None
}

/// All maximal conjunctions in an expression (the root, and every `&&`
/// chain nested under `||` / `!`).
fn collect_conjunctions<'e>(e: &'e Expr, out: &mut Vec<Vec<&'e Expr>>) {
    let parts = conjuncts(e);
    if parts.len() > 1 {
        out.push(parts.clone());
    }
    for part in parts {
        match &part.kind {
            ExprKind::Binary(BinOp::Or, l, r) => {
                collect_conjunctions(l, out);
                collect_conjunctions(r, out);
            }
            ExprKind::Unary(UnOp::Not, inner) => collect_conjunctions(inner, out),
            _ => {}
        }
    }
}

/// Per-path constraint summary of a set of atoms.
#[derive(Debug, Default)]
struct Constraints {
    nums: BTreeMap<String, NumSet>,
    str_eq: BTreeMap<String, String>,
    str_ne: BTreeMap<String, Vec<String>>,
    feasible: bool,
}

fn constraints(atoms: &[Atom]) -> Constraints {
    let mut c = Constraints {
        feasible: true,
        ..Constraints::default()
    };
    for atom in atoms {
        match &atom.cmp {
            AtomCmp::Num(op, v) => {
                if let Some(set) = NumSet::of(*op, *v) {
                    let entry = c.nums.entry(atom.path.clone()).or_insert(NumSet::FULL);
                    *entry = entry.intersect(set);
                    if entry.is_empty() {
                        c.feasible = false;
                    }
                }
            }
            AtomCmp::EqStr(v) => {
                if let Some(prev) = c.str_eq.get(&atom.path) {
                    if prev != v {
                        c.feasible = false;
                    }
                } else {
                    c.str_eq.insert(atom.path.clone(), v.clone());
                }
                if c.str_ne
                    .get(&atom.path)
                    .is_some_and(|nes| nes.iter().any(|n| n == v))
                {
                    c.feasible = false;
                }
            }
            AtomCmp::NeStr(v) => {
                if c.str_eq.get(&atom.path) == Some(v) {
                    c.feasible = false;
                }
                c.str_ne
                    .entry(atom.path.clone())
                    .or_default()
                    .push(v.clone());
            }
        }
    }
    c
}

/// RL0306/RL0307 over every maximal conjunction of one expression.
fn analyze_conjunctions(root: &Expr, out: &mut Vec<Diagnostic>) {
    let mut groups = Vec::new();
    collect_conjunctions(root, &mut groups);
    for group in groups {
        let atoms: Vec<Atom> = group.iter().filter_map(|e| atom_of(e)).collect();
        // Contradictions: fold atoms per path in order, flagging the atom
        // that empties the intersection.
        let mut nums: BTreeMap<&str, NumSet> = BTreeMap::new();
        let mut str_eq: BTreeMap<&str, &str> = BTreeMap::new();
        let mut contradicted: Vec<&str> = Vec::new();
        for atom in &atoms {
            match &atom.cmp {
                AtomCmp::Num(op, v) => {
                    let Some(set) = NumSet::of(*op, *v) else {
                        continue;
                    };
                    let entry = nums.entry(atom.path.as_str()).or_insert(NumSet::FULL);
                    let next = entry.intersect(set);
                    if next.is_empty() && !entry.is_empty() {
                        out.push(
                            Diagnostic::error(
                                codes::CONTRADICTORY_BOUNDS,
                                atom.span,
                                format!(
                                    "constraints on `{}` in this conjunction are \
                                     unsatisfiable",
                                    atom.path
                                ),
                            )
                            .with_help("the bounds exclude every value; the rule can never fire"),
                        );
                        contradicted.push(atom.path.as_str());
                    }
                    *entry = next;
                }
                AtomCmp::EqStr(v) => {
                    if let Some(prev) = str_eq.get(atom.path.as_str()) {
                        if *prev != v.as_str() {
                            out.push(Diagnostic::error(
                                codes::CONTRADICTORY_BOUNDS,
                                atom.span,
                                format!("`{}` cannot equal both \"{prev}\" and \"{v}\"", atom.path),
                            ));
                            contradicted.push(atom.path.as_str());
                        }
                    } else {
                        str_eq.insert(atom.path.as_str(), v.as_str());
                    }
                }
                AtomCmp::NeStr(_) => {}
            }
        }
        // Redundancy: a numeric atom implied by the other atoms on its path.
        for (i, atom) in atoms.iter().enumerate() {
            let AtomCmp::Num(op, v) = &atom.cmp else {
                continue;
            };
            if contradicted.contains(&atom.path.as_str()) {
                continue;
            }
            let Some(own) = NumSet::of(*op, *v) else {
                continue;
            };
            let mut others = NumSet::FULL;
            let mut has_other = false;
            for (j, other) in atoms.iter().enumerate() {
                if i == j || other.path != atom.path {
                    continue;
                }
                if let AtomCmp::Num(oop, ov) = &other.cmp {
                    if let Some(oset) = NumSet::of(*oop, *ov) {
                        others = others.intersect(oset);
                        has_other = true;
                    }
                }
            }
            if has_other && !others.is_empty() && others.subset_of(own) && own != others {
                out.push(
                    Diagnostic::warning(
                        codes::REDUNDANT_COMPARISON,
                        atom.span,
                        format!(
                            "this comparison is implied by the other constraints on `{}`",
                            atom.path
                        ),
                    )
                    .with_help(
                        "a redundant bound often means an inverted comparison elsewhere in \
                         the condition",
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points

/// Analyze one expression source against a schema. Parse failures become
/// RL0001/RL0002 findings.
pub fn analyze_expr_src(origin: &str, src: &str, schema: &ContextSchema) -> Vec<Finding> {
    let mut findings = Vec::new();
    let expr = match parse(src) {
        Ok(e) => e,
        Err(e) => {
            findings.push(Finding {
                origin: origin.to_owned(),
                source: src.to_owned(),
                diag: Diagnostic::error(e.code, e.span, e.message),
            });
            return findings;
        }
    };
    let mut analyzer = Analyzer::new(schema);
    let root = analyzer.check(&expr, true);
    let mut out = analyzer.out;
    if root.ty != Ty::Bool && root.ty != Ty::Any {
        out.push(
            Diagnostic::error(
                codes::NON_BOOLEAN_CONDITION,
                expr.span,
                format!("condition has type {}, expected bool", root.ty),
            )
            .with_help("a rule condition must reduce to true or false"),
        );
    }
    let value_codes = [codes::ALWAYS_TRUE, codes::ALWAYS_FALSE, codes::OUT_OF_RANGE];
    if !out.iter().any(|d| value_codes.contains(&d.code)) {
        match root.abs {
            // A bare literal `true` is the idiomatic "match everything"
            // clause; only *derived* always-true conditions are suspicious.
            Abs::Bool(Some(true)) if !matches!(expr.kind, ExprKind::Bool(true)) => out.push(
                Diagnostic::warning(codes::ALWAYS_TRUE, expr.span, "condition is always true"),
            ),
            Abs::Bool(Some(false)) => out.push(Diagnostic::error(
                codes::ALWAYS_FALSE,
                expr.span,
                "condition is always false; the rule can never fire",
            )),
            _ => {}
        }
    }
    analyze_conjunctions(&expr, &mut out);
    findings.extend(out.into_iter().map(|diag| Finding {
        origin: origin.to_owned(),
        source: src.to_owned(),
        diag,
    }));
    findings
}

/// Analyze an alert condition (as accepted by
/// [`crate::alerting::compile_condition`]).
pub fn analyze_condition(src: &str) -> LintReport {
    LintReport {
        findings: analyze_expr_src("condition", src, &ContextSchema::alert_conditions()),
    }
}

/// Analyze one rule document: document shape, each clause, and cross-clause
/// reachability.
pub fn analyze_rule(doc: &RuleDoc) -> LintReport {
    let mut findings = Vec::new();
    let doc_finding = |message: String| Finding {
        origin: "rule".to_owned(),
        source: String::new(),
        diag: Diagnostic::error(codes::BAD_DOCUMENT, Span::DUMMY, message),
    };
    if doc.uuid.trim().is_empty() {
        findings.push(doc_finding("rule uuid must be non-empty".to_owned()));
    }
    match (
        &doc.rule.model_selection,
        doc.rule.callback_actions.as_slice(),
    ) {
        (Some(_), actions) if !actions.is_empty() => {
            findings.push(doc_finding(
                "rule cannot declare both MODEL_SELECTION and CALLBACK_ACTIONS".to_owned(),
            ));
        }
        (None, []) => {
            findings.push(doc_finding(
                "rule needs MODEL_SELECTION or CALLBACK_ACTIONS".to_owned(),
            ));
        }
        (None, actions) if actions.iter().any(|a| a.trim().is_empty()) => {
            findings.push(doc_finding(
                "callback action names must be non-empty".to_owned(),
            ));
        }
        _ => {}
    }
    let instance = ContextSchema::instance_rules();
    findings.extend(analyze_expr_src("GIVEN", &doc.rule.given, &instance));
    findings.extend(analyze_expr_src("WHEN", &doc.rule.when, &instance));
    if let Some(sel) = &doc.rule.model_selection {
        findings.extend(analyze_expr_src(
            "MODEL_SELECTION",
            sel,
            &ContextSchema::selection_comparator(),
        ));
    }
    // Cross-clause reachability: GIVEN ∧ WHEN must be satisfiable.
    if let (Ok(given), Ok(when)) = (parse(&doc.rule.given), parse(&doc.rule.when)) {
        let given_atoms: Vec<Atom> = conjuncts(&given)
            .iter()
            .filter_map(|e| atom_of(e))
            .collect();
        let when_atoms: Vec<Atom> = conjuncts(&when).iter().filter_map(|e| atom_of(e)).collect();
        let mut joint = given_atoms.clone();
        joint.extend(when_atoms.iter().cloned());
        if constraints(&given_atoms).feasible
            && constraints(&when_atoms).feasible
            && !constraints(&joint).feasible
        {
            findings.push(Finding {
                origin: "WHEN".to_owned(),
                source: doc.rule.when.clone(),
                diag: Diagnostic::error(
                    codes::UNREACHABLE_RULE,
                    when.span,
                    "GIVEN and WHEN are jointly unsatisfiable; the rule can never fire",
                )
                .with_help("the two clauses put contradictory bounds on the same signal"),
            });
        }
    }
    LintReport { findings }
}

/// Analyze rule JSON text; malformed documents yield RL0003.
pub fn analyze_rule_json(src: &str) -> LintReport {
    match serde_json::from_str::<RuleDoc>(src) {
        Ok(doc) => analyze_rule(&doc),
        Err(e) => LintReport {
            findings: vec![Finding {
                origin: "rule".to_owned(),
                source: src.to_owned(),
                diag: Diagnostic::error(
                    codes::BAD_DOCUMENT,
                    Span::DUMMY,
                    format!("not a valid rule document: {e}"),
                ),
            }],
        },
    }
}

/// Lifecycle intent of an action name, for contradiction detection.
fn action_class(name: &str) -> Option<&'static str> {
    let n = name.to_ascii_lowercase();
    if n.contains("deprecate") || n.contains("rollback") || n.contains("retire") {
        Some("demote")
    } else if n.contains("deploy") || n.contains("promote") || n.contains("release") {
        Some("promote")
    } else {
        None
    }
}

/// Parsed per-rule facts used by the set analysis.
struct RuleFacts<'d> {
    doc: &'d RuleDoc,
    given: Option<Expr>,
    atoms: Vec<Atom>,
    when_atoms: Vec<Atom>,
    fully_atomic: bool,
}

fn rule_facts(doc: &RuleDoc) -> RuleFacts<'_> {
    let given = parse(&doc.rule.given).ok();
    let when = parse(&doc.rule.when).ok();
    let mut atoms = Vec::new();
    let mut fully_atomic = given.is_some() && when.is_some();
    let mut when_atoms = Vec::new();
    for (expr, into_when) in [(&given, false), (&when, true)] {
        if let Some(e) = expr {
            for part in conjuncts(e) {
                match atom_of(part) {
                    Some(atom) => {
                        if into_when {
                            when_atoms.push(atom.clone());
                        }
                        atoms.push(atom);
                    }
                    None => fully_atomic = false,
                }
            }
        }
    }
    RuleFacts {
        doc,
        given,
        atoms,
        when_atoms,
        fully_atomic,
    }
}

/// Does rule `a`'s condition imply rule `b`'s? Sound over-approximation:
/// `a`'s atoms describe a superset of its solutions, so if that superset
/// fits inside `b`'s (fully atomic) condition, every firing of `a` also
/// fires `b`.
fn implies(a: &RuleFacts<'_>, b: &RuleFacts<'_>) -> bool {
    if !b.fully_atomic || b.atoms.is_empty() {
        return false;
    }
    let ca = constraints(&a.atoms);
    if !ca.feasible {
        return false;
    }
    for atom in &b.atoms {
        match &atom.cmp {
            AtomCmp::Num(op, v) => {
                let Some(allowed) = NumSet::of(*op, *v) else {
                    return false;
                };
                let have = ca.nums.get(&atom.path).copied().unwrap_or(NumSet::FULL);
                if !have.subset_of(allowed) {
                    return false;
                }
            }
            AtomCmp::EqStr(v) => {
                if ca.str_eq.get(&atom.path) != Some(v) {
                    return false;
                }
            }
            AtomCmp::NeStr(v) => {
                let pinned_other = ca.str_eq.get(&atom.path).is_some_and(|pinned| pinned != v);
                let ne_known = ca
                    .str_ne
                    .get(&atom.path)
                    .is_some_and(|nes| nes.iter().any(|n| n == v));
                if !pinned_other && !ne_known {
                    return false;
                }
            }
        }
    }
    true
}

/// Set-level analysis over a rule set (a `RuleRepo`'s files, in commit
/// order): duplicate ids, shadowing, and contradictory actions.
pub fn analyze_rule_set(docs: &[RuleDoc]) -> LintReport {
    let mut report = LintReport::default();
    for doc in docs {
        report
            .findings
            .extend(analyze_rule(doc).findings.into_iter().map(|mut f| {
                f.origin = format!("rule {} {}", doc.uuid, f.origin);
                f
            }));
    }
    let facts: Vec<RuleFacts<'_>> = docs.iter().map(rule_facts).collect();
    for (i, a) in facts.iter().enumerate() {
        for b in facts.iter().skip(i + 1) {
            if a.doc.uuid == b.doc.uuid {
                report.findings.push(Finding {
                    origin: format!("rule {}", b.doc.uuid),
                    source: String::new(),
                    diag: Diagnostic::error(
                        codes::DUPLICATE_RULE_ID,
                        Span::DUMMY,
                        format!("duplicate rule uuid `{}`", b.doc.uuid),
                    ),
                });
                continue;
            }
            if a.doc.rule.environment != b.doc.rule.environment {
                continue;
            }
            // Shadowing: same effect, earlier condition implies later.
            let same_effect = match (&a.doc.rule.model_selection, &b.doc.rule.model_selection) {
                (Some(x), Some(y)) => x == y,
                (None, None) => {
                    let mut xa = a.doc.rule.callback_actions.clone();
                    let mut xb = b.doc.rule.callback_actions.clone();
                    xa.sort();
                    xb.sort();
                    xa == xb
                }
                _ => false,
            };
            if same_effect && implies(a, b) {
                report.findings.push(Finding {
                    origin: format!("rule {}", b.doc.uuid),
                    source: b.doc.rule.when.clone(),
                    diag: Diagnostic::warning(
                        codes::SHADOWED_RULE,
                        Span::DUMMY,
                        format!(
                            "rule `{}` is shadowed by earlier rule `{}`: every model that \
                             triggers the earlier rule also triggers this one, with the \
                             same effect",
                            b.doc.uuid, a.doc.uuid
                        ),
                    )
                    .with_help("merge the rules or tighten the later condition"),
                });
            }
            // Contradictory actions on overlapping triggers.
            let (acts_a, acts_b) = (&a.doc.rule.callback_actions, &b.doc.rule.callback_actions);
            if acts_a.is_empty() || acts_b.is_empty() {
                continue;
            }
            let same_given = match (&a.given, &b.given) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            };
            if !same_given {
                continue;
            }
            let mut joint = a.when_atoms.clone();
            joint.extend(b.when_atoms.iter().cloned());
            if !constraints(&joint).feasible {
                continue;
            }
            for act_a in acts_a {
                for act_b in acts_b {
                    let (Some(ca), Some(cb)) = (action_class(act_a), action_class(act_b)) else {
                        continue;
                    };
                    if ca != cb {
                        report.findings.push(Finding {
                            origin: format!("rule {}", b.doc.uuid),
                            source: String::new(),
                            diag: Diagnostic::error(
                                codes::CONTRADICTORY_ACTIONS,
                                Span::DUMMY,
                                format!(
                                    "rules `{}` and `{}` fire on overlapping triggers but \
                                     request opposing actions (`{act_a}` vs `{act_b}`)",
                                    a.doc.uuid, b.doc.uuid
                                ),
                            )
                            .with_help(
                                "a model matching both rules would be promoted and demoted \
                                 at once; make the WHEN clauses disjoint",
                            ),
                        });
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{listing1_selection_rule, listing2_action_rule};

    fn when_codes(src: &str) -> Vec<&'static str> {
        analyze_expr_src("WHEN", src, &ContextSchema::instance_rules())
            .into_iter()
            .map(|f| f.diag.code)
            .collect()
    }

    #[test]
    fn listings_lint_clean() {
        assert!(analyze_rule(&listing1_selection_rule()).is_empty());
        assert!(analyze_rule(&listing2_action_rule()).is_empty());
        assert!(analyze_rule_set(&[listing1_selection_rule(), listing2_action_rule()]).is_empty());
    }

    #[test]
    fn typo_is_an_error_with_suggestion() {
        let f = analyze_expr_src(
            "GIVEN",
            r#"modelNmae == "x""#,
            &ContextSchema::instance_rules(),
        );
        assert_eq!(f[0].diag.code, codes::IDENT_TYPO);
        assert_eq!(f[0].diag.severity, Severity::Error);
        assert!(f[0].diag.help.as_deref().unwrap().contains("modelName"));
        assert_eq!(
            f[0].diag.span.slice(r#"modelNmae == "x""#),
            Some("modelNmae")
        );
    }

    #[test]
    fn unknown_ident_is_a_warning_in_open_world() {
        let f = analyze_expr_src(
            "GIVEN",
            r#"custom_business_tag == "x""#,
            &ContextSchema::instance_rules(),
        );
        assert_eq!(f[0].diag.code, codes::UNKNOWN_IDENT);
        assert_eq!(f[0].diag.severity, Severity::Warning);
    }

    #[test]
    fn declared_range_rejects_impossible_threshold() {
        let codes_found = when_codes("metrics.auc > 1.5");
        assert_eq!(codes_found, vec![codes::OUT_OF_RANGE]);
    }

    #[test]
    fn descale_mistake_on_alert_condition() {
        let report = analyze_condition("gallery_monitor_drift_score > 3000000");
        assert_eq!(report.codes(), vec![codes::SUSPICIOUS_SCALE]);
        let report = analyze_condition("gallery_monitor_feature_completeness < 900000");
        assert_eq!(report.codes(), vec![codes::OUT_OF_RANGE]);
        assert!(report.render().contains("1e6"));
    }

    #[test]
    fn natural_unit_thresholds_are_clean() {
        assert!(analyze_condition("gallery_monitor_drift_score > 3.0").is_empty());
        assert!(analyze_condition("gallery_monitor_staleness_ms > 60000").is_empty());
        assert!(analyze_condition("gallery_rpc_server_requests_total >= 1").is_empty());
    }

    #[test]
    fn non_boolean_condition_rejected() {
        let report = analyze_condition("1 + 1");
        assert!(report.has_errors());
        assert!(report.codes().contains(&codes::NON_BOOLEAN_CONDITION));
    }

    #[test]
    fn contradiction_and_redundancy() {
        assert_eq!(
            when_codes("metrics.bias > 0.5 && metrics.bias < 0.1"),
            vec![codes::CONTRADICTORY_BOUNDS]
        );
        assert_eq!(
            when_codes("metrics.bias >= 0.1 && metrics.bias >= -0.1"),
            vec![codes::REDUNDANT_COMPARISON]
        );
        // The Listing-2 corridor is neither.
        assert!(when_codes("metrics.bias <= 0.1 && metrics.bias >= -0.1").is_empty());
    }

    #[test]
    fn unreachable_rule_across_clauses() {
        let mut doc = listing2_action_rule();
        doc.rule.given = r#"model_domain == "UberX" && metrics.bias > 0.5"#.into();
        doc.rule.when = "metrics.bias < 0.1".into();
        let report = analyze_rule(&doc);
        assert!(report.codes().contains(&codes::UNREACHABLE_RULE));
    }

    #[test]
    fn duplicate_and_shadowed_rules() {
        let a = listing2_action_rule();
        let mut dup = listing2_action_rule();
        dup.rule.when = "metrics.bias <= 0.05".into();
        let report = analyze_rule_set(&[a.clone(), dup]);
        assert!(report.codes().contains(&codes::DUPLICATE_RULE_ID));

        let mut narrow = listing2_action_rule();
        narrow.uuid = "narrow".into();
        narrow.rule.when = "metrics.bias <= 0.05 && metrics.bias >= -0.05".into();
        let mut wide = listing2_action_rule();
        wide.uuid = "wide".into();
        let report = analyze_rule_set(&[narrow, wide]);
        assert!(report.codes().contains(&codes::SHADOWED_RULE));
    }

    #[test]
    fn contradictory_actions_on_overlapping_triggers() {
        let mut deploy = listing2_action_rule();
        deploy.uuid = "deploy".into();
        let mut deprecate = listing2_action_rule();
        deprecate.uuid = "deprecate".into();
        deprecate.rule.callback_actions = vec!["deprecate_instance".into()];
        let report = analyze_rule_set(&[deploy, deprecate]);
        assert!(report.codes().contains(&codes::CONTRADICTORY_ACTIONS));
        assert!(report.has_errors());
    }

    #[test]
    fn division_by_possibly_zero() {
        assert_eq!(
            when_codes("metrics.rmse / metrics.mae > 2"),
            vec![codes::DIV_BY_ZERO]
        );
        // No evidence the divisor can be zero: unknown custom metric.
        assert!(when_codes("metrics.rmse / metrics.custom_denominator > 2").is_empty());
    }

    #[test]
    fn osa_distance_basics() {
        assert_eq!(osa_distance("modelName", "modelNmae"), 1); // transposition
        assert_eq!(osa_distance("abs", "abss"), 1);
        assert_eq!(osa_distance("drift", "drift"), 0);
        assert_eq!(osa_distance("a", "b"), 1);
    }

    #[test]
    fn selection_comparator_schema() {
        let f = analyze_expr_src(
            "MODEL_SELECTION",
            "a.created_time > b.created_time",
            &ContextSchema::selection_comparator(),
        );
        assert!(f.is_empty());
        let f = analyze_expr_src(
            "MODEL_SELECTION",
            r#"a.metrics["r2"] < b.metrics["r2"]"#,
            &ContextSchema::selection_comparator(),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn member_of_scalar_warns() {
        let f = analyze_expr_src(
            "GIVEN",
            r#"modelName.length > 3"#,
            &ContextSchema::instance_rules(),
        );
        assert!(f.iter().any(|x| x.diag.code == codes::MEMBER_OF_SCALAR));
    }

    #[test]
    fn bad_document_shape() {
        let report = analyze_rule_json("{ not json");
        assert_eq!(report.codes(), vec![codes::BAD_DOCUMENT]);
        let mut doc = listing1_selection_rule();
        doc.rule.callback_actions = vec!["x".into()];
        assert!(analyze_rule(&doc).codes().contains(&codes::BAD_DOCUMENT));
    }
}
