//! # gallery-rules
//!
//! The orchestration rule engine of Gallery (§3.7 of *Gallery: A Machine
//! Learning Model Management System at Uber*, EDBT 2020).
//!
//! Components:
//! - a from-scratch JEXL-like expression language ([`token`], [`ast`],
//!   [`parser`], [`eval`]) covering the paper's rule conditions;
//! - Given/When/Then rule documents with two "Then" templates — model
//!   selection and callback actions ([`rule`]);
//! - champion selection over Gallery instances ([`selection`]);
//! - a named callback [`actions::ActionRegistry`] with default actions;
//! - a git-style versioned [`repo::RuleRepo`] with validation-before-commit
//!   and enforced peer review;
//! - the event-driven [`engine::RuleEngine`] with a job queue and a worker
//!   pool (Figure 8).

pub mod actions;
pub mod alerting;
pub mod ast;
pub mod context;
pub mod engine;
pub mod error;
pub mod eval;
pub mod parser;
pub mod repo;
pub mod rule;
pub mod selection;
pub mod token;

pub use actions::{ActionInvocation, ActionLog, ActionRegistry};
pub use alerting::{
    compile_condition, register_lifecycle_actions, ACTION_DEPRECATE_INSTANCE,
    ACTION_ROLLBACK_PRODUCTION,
};
pub use engine::{EngineStats, RuleEngine};
pub use error::EngineError;
pub use eval::{EvalContext, EvalValue};
pub use repo::{Commit, RuleRepo};
pub use rule::{CompiledRule, RuleBody, RuleDoc, RuleKind};
pub use selection::{select_champion, select_from_gallery};
