//! # gallery-rules
//!
//! The orchestration rule engine of Gallery (§3.7 of *Gallery: A Machine
//! Learning Model Management System at Uber*, EDBT 2020).
//!
//! Components:
//! - a from-scratch JEXL-like expression language ([`token`], [`ast`],
//!   [`parser`], [`eval`]) covering the paper's rule conditions;
//! - Given/When/Then rule documents with two "Then" templates — model
//!   selection and callback actions ([`rule`]);
//! - champion selection over Gallery instances ([`selection`]);
//! - a named callback [`actions::ActionRegistry`] with default actions;
//! - a git-style versioned [`repo::RuleRepo`] with validation-before-commit
//!   and enforced peer review;
//! - the event-driven [`engine::RuleEngine`] with a job queue and a worker
//!   pool (Figure 8);
//! - a static analyzer ([`analyze`], [`diag`]) that type-checks rules
//!   against a context schema and flags never-firing conditions before
//!   registration.

// Unit tests may unwrap freely; non-test code is held to the
// `disallowed-methods` ban in this crate's clippy.toml.
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod actions;
pub mod alerting;
pub mod analyze;
pub mod ast;
pub mod context;
pub mod diag;
pub mod engine;
pub mod error;
pub mod eval;
pub mod parser;
pub mod repo;
pub mod rule;
pub mod selection;
pub mod token;

pub use actions::{ActionInvocation, ActionLog, ActionRegistry};
pub use alerting::{
    compile_condition, register_lifecycle_actions, ACTION_DEPRECATE_INSTANCE,
    ACTION_ROLLBACK_PRODUCTION,
};
pub use analyze::{
    analyze_condition, analyze_expr_src, analyze_rule, analyze_rule_json, analyze_rule_set,
    ContextSchema, Finding, LintReport,
};
pub use diag::{codes, Diagnostic, Severity};
pub use engine::{EngineStats, RuleEngine};
pub use error::EngineError;
pub use eval::{EvalContext, EvalValue};
pub use repo::{Commit, RuleRepo};
pub use rule::{CompiledRule, RuleBody, RuleDoc, RuleKind};
pub use selection::{select_champion, select_from_gallery};
pub use token::Span;
