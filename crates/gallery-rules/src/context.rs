//! Building evaluation contexts from Gallery entities.
//!
//! A rule sees one candidate instance as a flat set of variables:
//! `modelName`, `model_domain`, `city`, `created_time`, plus every
//! metadata key, plus a `metrics` object holding the latest value per
//! metric name (validation/production metrics as stored; the most recent
//! observation wins, matching how the paper's rules read e.g.
//! `metrics.bias`).

use crate::eval::{EvalContext, EvalValue};
use gallery_core::metadata::MetaValue;
use gallery_core::{Gallery, InstanceId, ModelInstance, Result};
use std::collections::BTreeMap;

fn meta_to_eval(v: &MetaValue) -> EvalValue {
    match v {
        MetaValue::Str(s) => EvalValue::Str(s.clone()),
        MetaValue::Num(x) => EvalValue::Num(*x),
        MetaValue::Bool(b) => EvalValue::Bool(*b),
        MetaValue::List(items) => EvalValue::Str(items.join(",")),
    }
}

/// Build the evaluation context for one instance.
///
/// Variable set:
/// - every metadata key verbatim (`city`, `model_domain`, ...);
/// - `modelName` (alias of metadata `model_name`, falling back to the
///   owning model's name) and `model_domain`;
/// - `created_time` (instance creation, epoch ms);
/// - `display_version`, `base_version_id`, `instance_id`, `model_id`;
/// - `deprecated` (bool);
/// - `metrics.<name>` — latest stored value per metric name.
pub fn instance_context(gallery: &Gallery, instance: &ModelInstance) -> Result<EvalContext> {
    let mut ctx = EvalContext::new();
    for (k, v) in instance.metadata.iter() {
        ctx.set(k.clone(), meta_to_eval(v));
    }
    // modelName alias: prefer instance metadata, fall back to model name.
    let model_name = instance
        .metadata
        .get_str("model_name")
        .map(str::to_owned)
        .or_else(|| gallery.get_model(&instance.model_id).ok().map(|m| m.name));
    if let Some(name) = model_name {
        ctx.set("modelName", name.clone());
        ctx.set("model_name", name);
    }
    ctx.set("created_time", instance.created_at);
    ctx.set("display_version", instance.display_version.to_string());
    ctx.set("base_version_id", instance.base_version_id.as_str());
    ctx.set("instance_id", instance.id.as_str());
    ctx.set("model_id", instance.model_id.as_str());
    ctx.set("deprecated", instance.deprecated);

    let mut latest: BTreeMap<String, (i64, f64)> = BTreeMap::new();
    for metric in gallery.metrics_of_instance(&instance.id)? {
        let entry = latest.entry(metric.name.clone()).or_insert((i64::MIN, 0.0));
        if metric.created_at >= entry.0 {
            *entry = (metric.created_at, metric.value);
        }
    }
    let metrics_obj = EvalValue::Object(
        latest
            .into_iter()
            .map(|(name, (_, value))| (name, EvalValue::Num(value)))
            .collect(),
    );
    ctx.set("metrics", metrics_obj);
    Ok(ctx)
}

/// Context by instance id.
pub fn instance_context_by_id(gallery: &Gallery, id: &InstanceId) -> Result<EvalContext> {
    let instance = gallery.get_instance(id)?;
    instance_context(gallery, &instance)
}

/// Context restricted to the given metric names — the rule engine's hot
/// path. Instead of materializing every stored metric (which grows without
/// bound as production monitoring appends observations), fetch only the
/// latest value of each metric the rule actually references.
pub fn instance_context_scoped(
    gallery: &Gallery,
    instance: &ModelInstance,
    metric_names: &[String],
) -> Result<EvalContext> {
    let mut ctx = EvalContext::new();
    for (k, v) in instance.metadata.iter() {
        ctx.set(k.clone(), meta_to_eval(v));
    }
    let model_name = instance
        .metadata
        .get_str("model_name")
        .map(str::to_owned)
        .or_else(|| gallery.get_model(&instance.model_id).ok().map(|m| m.name));
    if let Some(name) = model_name {
        ctx.set("modelName", name.clone());
        ctx.set("model_name", name);
    }
    ctx.set("created_time", instance.created_at);
    ctx.set("display_version", instance.display_version.to_string());
    ctx.set("base_version_id", instance.base_version_id.as_str());
    ctx.set("instance_id", instance.id.as_str());
    ctx.set("model_id", instance.model_id.as_str());
    ctx.set("deprecated", instance.deprecated);
    let mut metrics = BTreeMap::new();
    for name in metric_names {
        // Latest observation regardless of scope: mirror the full-context
        // semantics by taking the newest across all scopes.
        if let Some(value) = gallery.latest_metric_any_scope(&instance.id, name)? {
            metrics.insert(name.clone(), EvalValue::Num(value));
        }
    }
    ctx.set("metrics", EvalValue::Object(metrics));
    Ok(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parser::parse;
    use bytes::Bytes;
    use gallery_core::metadata::{fields, Metadata};
    use gallery_core::{InstanceSpec, MetricScope, MetricSpec, ModelSpec};

    #[test]
    fn context_exposes_paper_variables() {
        let g = Gallery::in_memory();
        let model = g
            .create_model(ModelSpec::new("example-project", "demand").name("linear_regression"))
            .unwrap();
        let inst = g
            .upload_instance(
                &model.id,
                InstanceSpec::new().metadata(
                    Metadata::new()
                        .with(fields::MODEL_DOMAIN, "UberX")
                        .with(fields::CITY, "sf"),
                ),
                Bytes::from_static(b"w"),
            )
            .unwrap();
        g.insert_metric(
            &inst.id,
            MetricSpec::new("r2", MetricScope::Validation, 0.85),
        )
        .unwrap();
        g.insert_metric(
            &inst.id,
            MetricSpec::new("bias", MetricScope::Validation, 0.02),
        )
        .unwrap();
        let ctx = instance_context(&g, &inst).unwrap();

        // Listing 1 GIVEN evaluates true.
        let given =
            parse(r#"modelName == "linear_regression" && model_domain == "UberX""#).unwrap();
        assert_eq!(eval(&given, &ctx).unwrap(), EvalValue::Bool(true));
        // Listing 1 WHEN (r2 <= 0.9) is true for this instance.
        let when = parse(r#"metrics["r2"] <= 0.9"#).unwrap();
        assert_eq!(eval(&when, &ctx).unwrap(), EvalValue::Bool(true));
        // Listing 2 WHEN bias corridor.
        let when = parse("metrics.bias <= 0.1 && metrics.bias >= -0.1").unwrap();
        assert_eq!(eval(&when, &ctx).unwrap(), EvalValue::Bool(true));
        // created_time is queryable.
        let e = parse("created_time > 0").unwrap();
        assert_eq!(eval(&e, &ctx).unwrap(), EvalValue::Bool(true));
    }

    #[test]
    fn latest_metric_wins() {
        let g = Gallery::in_memory();
        let model = g.create_model(ModelSpec::new("p", "d").name("m")).unwrap();
        let inst = g
            .upload_instance(&model.id, InstanceSpec::new(), Bytes::from_static(b"w"))
            .unwrap();
        g.insert_metric(
            &inst.id,
            MetricSpec::new("mae", MetricScope::Production, 0.5),
        )
        .unwrap();
        g.insert_metric(
            &inst.id,
            MetricSpec::new("mae", MetricScope::Production, 0.2),
        )
        .unwrap();
        let ctx = instance_context(&g, &inst).unwrap();
        let e = parse("metrics.mae == 0.2").unwrap();
        assert_eq!(eval(&e, &ctx).unwrap(), EvalValue::Bool(true));
    }

    #[test]
    fn model_name_falls_back_to_model() {
        let g = Gallery::in_memory();
        let model = g
            .create_model(ModelSpec::new("p", "d").name("heuristic"))
            .unwrap();
        let inst = g
            .upload_instance(&model.id, InstanceSpec::new(), Bytes::from_static(b"w"))
            .unwrap();
        let ctx = instance_context(&g, &inst).unwrap();
        let e = parse(r#"modelName == "heuristic""#).unwrap();
        assert_eq!(eval(&e, &ctx).unwrap(), EvalValue::Bool(true));
    }
}

#[cfg(test)]
mod scoped_tests {
    use super::*;
    use crate::eval::eval;
    use crate::parser::parse;
    use bytes::Bytes;
    use gallery_core::metadata::{fields, Metadata};
    use gallery_core::{InstanceSpec, MetricScope, MetricSpec, ModelSpec};

    #[test]
    fn scoped_context_matches_full_context_on_watched_metrics() {
        let g = Gallery::in_memory();
        let model = g
            .create_model(ModelSpec::new("p", "d").name("ridge"))
            .unwrap();
        let inst = g
            .upload_instance(
                &model.id,
                InstanceSpec::new().metadata(Metadata::new().with(fields::MODEL_DOMAIN, "UberX")),
                Bytes::from_static(b"w"),
            )
            .unwrap();
        for i in 0..50 {
            g.insert_metric(
                &inst.id,
                MetricSpec::new("bias", MetricScope::Production, 0.01 * i as f64),
            )
            .unwrap();
            g.insert_metric(
                &inst.id,
                MetricSpec::new("mae", MetricScope::Production, 1.0 + i as f64),
            )
            .unwrap();
        }
        let full = instance_context(&g, &inst).unwrap();
        let scoped = instance_context_scoped(&g, &inst, &["bias".to_string()]).unwrap();
        for src in ["metrics.bias", "model_domain", "created_time"] {
            let e = parse(src).unwrap();
            assert_eq!(
                eval(&e, &full).unwrap(),
                eval(&e, &scoped).unwrap(),
                "{src} must agree"
            );
        }
        // unwatched metric is simply absent (lenient null) in scoped ctx
        let e = parse("metrics.mae == null").unwrap();
        assert_eq!(
            eval(&e, &scoped).unwrap(),
            crate::eval::EvalValue::Bool(true)
        );
    }
}
