//! Rule definitions (§3.7.1, Listings 1–2).
//!
//! Rules follow the classical *Given/When/Then* shape. Two "Then"
//! templates exist: **model selection** (return the champion among
//! candidates) and **callback action** (trigger a registered action, e.g.
//! deployment). Rules are JSON documents checked into the rule repo; this
//! module parses and compiles them, validating every embedded expression
//! eagerly so a bad rule can never reach production (§3.7.2: "a test
//! framework to validate each rule before it can impact production").

use crate::ast::Expr;
use crate::parser::{parse, ParseError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// On-disk JSON form of a rule (Listings 1–2, with the paper's pseudo-JSON
/// regularized: expressions are JSON strings; `AND` clauses are folded into
/// the GIVEN/WHEN expressions with `&&`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuleDoc {
    pub team: String,
    pub uuid: String,
    pub rule: RuleBody,
}

/// The `rule` object of a [`RuleDoc`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuleBody {
    /// Candidate filter over model metadata (`GIVEN` + `AND` clauses).
    #[serde(rename = "GIVEN")]
    pub given: String,
    /// Trigger condition over metrics/metadata (`WHEN` + `AND` clauses).
    #[serde(rename = "WHEN")]
    pub when: String,
    #[serde(rename = "ENVIRONMENT", default)]
    pub environment: String,
    /// Pairwise comparator selecting the better of two candidates
    /// (selection rules), e.g. `a.created_time > b.created_time`.
    #[serde(
        rename = "MODEL_SELECTION",
        default,
        skip_serializing_if = "Option::is_none"
    )]
    pub model_selection: Option<String>,
    /// Names of registered callback actions (action rules).
    #[serde(
        rename = "CALLBACK_ACTIONS",
        default,
        skip_serializing_if = "Vec::is_empty"
    )]
    pub callback_actions: Vec<String>,
}

/// What a compiled rule does when it fires.
#[derive(Debug, Clone)]
pub enum RuleKind {
    /// Return the best candidate under a pairwise comparator.
    Selection { comparator: Expr },
    /// Trigger the named callback actions.
    Action { actions: Vec<String> },
}

/// Error compiling a rule document.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleError {
    pub message: String,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule error: {}", self.message)
    }
}

impl std::error::Error for RuleError {}

impl From<ParseError> for RuleError {
    fn from(e: ParseError) -> Self {
        RuleError {
            message: e.to_string(),
        }
    }
}

/// A validated, compiled rule ready for evaluation.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    pub id: String,
    pub team: String,
    pub environment: String,
    pub given: Expr,
    pub when: Expr,
    pub kind: RuleKind,
    /// Metric names referenced anywhere in GIVEN/WHEN — the engine uses
    /// these to decide which metric-insert events can trigger this rule.
    pub watched_metrics: Vec<String>,
    /// Source text kept for observability.
    pub given_src: String,
    pub when_src: String,
}

impl CompiledRule {
    /// Compile and validate a rule document.
    pub fn compile(doc: &RuleDoc) -> Result<Self, RuleError> {
        if doc.uuid.trim().is_empty() {
            return Err(RuleError {
                message: "rule uuid must be non-empty".into(),
            });
        }
        let given = parse(&doc.rule.given)?;
        let when = parse(&doc.rule.when)?;
        let kind = match (
            &doc.rule.model_selection,
            doc.rule.callback_actions.as_slice(),
        ) {
            (Some(_), actions) if !actions.is_empty() => {
                return Err(RuleError {
                    message: "rule cannot be both selection and action".into(),
                })
            }
            (Some(sel), _) => RuleKind::Selection {
                comparator: parse(sel)?,
            },
            (None, []) => {
                return Err(RuleError {
                    message: "rule needs MODEL_SELECTION or CALLBACK_ACTIONS".into(),
                })
            }
            (None, actions) => {
                if actions.iter().any(|a| a.trim().is_empty()) {
                    return Err(RuleError {
                        message: "callback action names must be non-empty".into(),
                    });
                }
                RuleKind::Action {
                    actions: actions.to_vec(),
                }
            }
        };
        let mut watched = given.referenced_metrics();
        watched.extend(when.referenced_metrics());
        watched.sort();
        watched.dedup();
        Ok(CompiledRule {
            id: doc.uuid.clone(),
            team: doc.team.clone(),
            environment: doc.rule.environment.clone(),
            given,
            when,
            kind,
            watched_metrics: watched,
            given_src: doc.rule.given.clone(),
            when_src: doc.rule.when.clone(),
        })
    }

    /// Parse + compile straight from JSON text.
    pub fn from_json(json: &str) -> Result<Self, RuleError> {
        let doc: RuleDoc = serde_json::from_str(json).map_err(|e| RuleError {
            message: format!("bad rule json: {e}"),
        })?;
        Self::compile(&doc)
    }

    pub fn is_selection(&self) -> bool {
        matches!(self.kind, RuleKind::Selection { .. })
    }

    pub fn is_action(&self) -> bool {
        matches!(self.kind, RuleKind::Action { .. })
    }
}

/// The Listing 1 example, as a ready-made document (used in docs, tests,
/// and the E5 experiment).
pub fn listing1_selection_rule() -> RuleDoc {
    RuleDoc {
        team: "forecasting".into(),
        uuid: "316b3ab4-2509-4ea7-8025-ca879dac61".into(),
        rule: RuleBody {
            given: r#"modelName == "linear_regression" && model_domain == "UberX""#.into(),
            when: r#"metrics["r2"] <= 0.9"#.into(),
            environment: "production".into(),
            model_selection: Some("a.created_time > b.created_time".into()),
            callback_actions: vec![],
        },
    }
}

/// The Listing 2 example.
pub fn listing2_action_rule() -> RuleDoc {
    RuleDoc {
        team: "forecasting".into(),
        uuid: "4365754a-92bb-4421-a1be-d7d87f77a".into(),
        rule: RuleBody {
            given: r#"model_domain == "UberX" && modelName == "Random Forest""#.into(),
            when: "metrics.bias <= 0.1 && metrics.bias >= -0.1".into(),
            environment: "production".into(),
            model_selection: None,
            callback_actions: vec!["forecasting_deployment".into()],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_listing1() {
        let rule = CompiledRule::compile(&listing1_selection_rule()).unwrap();
        assert!(rule.is_selection());
        assert_eq!(rule.environment, "production");
        assert_eq!(rule.watched_metrics, vec!["r2".to_string()]);
    }

    #[test]
    fn compile_listing2() {
        let rule = CompiledRule::compile(&listing2_action_rule()).unwrap();
        assert!(rule.is_action());
        assert_eq!(rule.watched_metrics, vec!["bias".to_string()]);
        match &rule.kind {
            RuleKind::Action { actions } => {
                assert_eq!(actions, &["forecasting_deployment".to_string()])
            }
            _ => panic!("expected action"),
        }
    }

    #[test]
    fn json_roundtrip() {
        let doc = listing2_action_rule();
        let json = serde_json::to_string_pretty(&doc).unwrap();
        let rule = CompiledRule::from_json(&json).unwrap();
        assert!(rule.is_action());
    }

    #[test]
    fn rejects_bad_expression() {
        let mut doc = listing1_selection_rule();
        doc.rule.when = "metrics[".into();
        assert!(CompiledRule::compile(&doc).is_err());
    }

    #[test]
    fn rejects_both_kinds() {
        let mut doc = listing1_selection_rule();
        doc.rule.callback_actions = vec!["x".into()];
        assert!(CompiledRule::compile(&doc).is_err());
    }

    #[test]
    fn rejects_neither_kind() {
        let mut doc = listing1_selection_rule();
        doc.rule.model_selection = None;
        assert!(CompiledRule::compile(&doc).is_err());
    }

    #[test]
    fn rejects_empty_uuid_and_action_names() {
        let mut doc = listing2_action_rule();
        doc.uuid = "  ".into();
        assert!(CompiledRule::compile(&doc).is_err());
        let mut doc = listing2_action_rule();
        doc.rule.callback_actions = vec!["".into()];
        assert!(CompiledRule::compile(&doc).is_err());
    }
}
