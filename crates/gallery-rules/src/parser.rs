//! Recursive-descent / precedence-climbing parser for rule expressions.

use crate::ast::{BinOp, Expr, UnOp};
use crate::token::{lex, LexError, Token};
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse an expression source string into an AST.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expression(0)?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("trailing tokens starting at {}", p.peek_desc()),
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "<end>".to_owned())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == want => Ok(()),
            got => Err(ParseError {
                message: format!(
                    "expected {want}, got {}",
                    got.map(|t| t.to_string()).unwrap_or_else(|| "<end>".into())
                ),
            }),
        }
    }

    fn binop_of(token: &Token) -> Option<BinOp> {
        Some(match token {
            Token::OrOr => BinOp::Or,
            Token::AndAnd => BinOp::And,
            Token::EqEq => BinOp::Eq,
            Token::NotEq => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            Token::Plus => BinOp::Add,
            Token::Minus => BinOp::Sub,
            Token::Star => BinOp::Mul,
            Token::Slash => BinOp::Div,
            Token::Percent => BinOp::Rem,
            _ => return None,
        })
    }

    /// Precedence climbing.
    fn expression(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.peek().and_then(Self::binop_of) {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.next();
            // left-associative: parse the rhs at prec+1
            let rhs = self.expression(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.next();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Some(Token::Minus) => {
                self.next();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    /// Primary expression followed by any chain of `.member`, `[index]`.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.next();
                    match self.next() {
                        Some(Token::Ident(name)) => {
                            e = Expr::Member(Box::new(e), name);
                        }
                        got => {
                            return Err(ParseError {
                                message: format!(
                                    "expected member name after '.', got {}",
                                    got.map(|t| t.to_string()).unwrap_or_else(|| "<end>".into())
                                ),
                            })
                        }
                    }
                }
                Some(Token::LBracket) => {
                    self.next();
                    let index = self.expression(0)?;
                    self.expect(&Token::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(index));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Num(x)) => Ok(Expr::Num(x)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Bool(b)) => Ok(Expr::Bool(b)),
            Some(Token::Null) => Ok(Expr::Null),
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expression(0)?);
                            match self.peek() {
                                Some(Token::Comma) => {
                                    self.next();
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Some(Token::LParen) => {
                let e = self.expression(0)?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            got => Err(ParseError {
                message: format!(
                    "expected expression, got {}",
                    got.map(|t| t.to_string()).unwrap_or_else(|| "<end>".into())
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, UnOp};

    #[test]
    fn parse_listing1_when() {
        let e = parse(r#"metrics["r2"] <= 0.9"#).unwrap();
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Le,
                Box::new(Expr::Index(
                    Box::new(Expr::Ident("metrics".into())),
                    Box::new(Expr::Str("r2".into())),
                )),
                Box::new(Expr::Num(0.9)),
            )
        );
    }

    #[test]
    fn parse_listing2_when() {
        let e = parse("metrics.bias <= 0.1 && metrics.bias >= -0.1").unwrap();
        match e {
            Expr::Binary(BinOp::And, l, r) => {
                assert!(matches!(*l, Expr::Binary(BinOp::Le, _, _)));
                match *r {
                    Expr::Binary(BinOp::Ge, _, neg) => {
                        assert_eq!(*neg, Expr::Unary(UnOp::Neg, Box::new(Expr::Num(0.1))));
                    }
                    other => panic!("unexpected rhs {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parens() {
        // a || b && c parses as a || (b && c)
        let e = parse("a || b && c").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _)));
        // (a || b) && c
        let e = parse("(a || b) && c").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _)));
        // arithmetic binds tighter than comparison
        let e = parse("1 + 2 * 3 < 10").unwrap();
        match e {
            Expr::Binary(BinOp::Lt, l, _) => {
                assert!(matches!(*l, Expr::Binary(BinOp::Add, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        // 10 - 3 - 2 == (10 - 3) - 2
        let e = parse("10 - 3 - 2").unwrap();
        match e {
            Expr::Binary(BinOp::Sub, l, r) => {
                assert!(matches!(*l, Expr::Binary(BinOp::Sub, _, _)));
                assert_eq!(*r, Expr::Num(2.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn member_chains() {
        let e = parse("a.b.c").unwrap();
        assert_eq!(
            e,
            Expr::Member(
                Box::new(Expr::Member(Box::new(Expr::Ident("a".into())), "b".into())),
                "c".into()
            )
        );
    }

    #[test]
    fn call_with_args() {
        let e = parse("max(metrics.mae, 0.5)").unwrap();
        match e {
            Expr::Call(name, args) => {
                assert_eq!(name, "max");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn selection_comparator_parses() {
        // Listing 1's MODEL_SELECTION comparator.
        let e = parse("a.created_time > b.created_time").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Gt, _, _)));
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("a &&").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("metrics[").is_err());
        assert!(parse("f(a,").is_err());
        assert!(parse("a .").is_err());
    }

    #[test]
    fn not_operator() {
        let e = parse("!deployed && !(a || b)").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _)));
    }
}
