//! Recursive-descent / precedence-climbing parser for rule expressions.

use crate::ast::{BinOp, Expr, ExprKind, UnOp};
use crate::token::{lex, LexError, Span, SpannedToken, Token};
use std::fmt;

/// Maximum expression nesting depth. Real rules sit well under 50; the
/// guard turns a stack overflow on adversarial input (e.g. 10k nested
/// parens) into a clean diagnostic.
pub const MAX_DEPTH: usize = 200;

/// Parse error with a byte-range span into the source and a stable
/// diagnostic code (`RL0001` syntax, `RL0002` nesting).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
    pub code: &'static str,
}

impl ParseError {
    pub fn syntax(span: Span, message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            span,
            code: crate::diag::codes::SYNTAX,
        }
    }

    pub fn nesting(span: Span) -> Self {
        ParseError {
            message: format!("expression nesting exceeds {MAX_DEPTH} levels"),
            span,
            code: crate::diag::codes::NESTING,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_dummy() {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at {}: {}", self.span, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::syntax(e.span(), e.to_string())
    }
}

/// Parse an expression source string into an AST.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let end = Span::new(src.len(), src.len());
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
        end,
    };
    let expr = p.expression(0)?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::syntax(
            p.peek_span(),
            format!("trailing tokens starting at {}", p.peek_desc()),
        ));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    depth: usize,
    /// Zero-width span at end of input, for "unexpected end" errors.
    end: Span,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or(self.end)
    }

    fn peek_desc(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "<end>".to_owned())
    }

    fn next(&mut self) -> Option<SpannedToken> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<Span, ParseError> {
        let at = self.peek_span();
        match self.next() {
            Some(t) if &t.token == want => Ok(t.span),
            got => Err(ParseError::syntax(
                at,
                format!(
                    "expected {want}, got {}",
                    got.map(|t| t.token.to_string())
                        .unwrap_or_else(|| "<end>".into())
                ),
            )),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(ParseError::nesting(self.peek_span()))
        } else {
            Ok(())
        }
    }

    fn binop_of(token: &Token) -> Option<BinOp> {
        Some(match token {
            Token::OrOr => BinOp::Or,
            Token::AndAnd => BinOp::And,
            Token::EqEq => BinOp::Eq,
            Token::NotEq => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            Token::Plus => BinOp::Add,
            Token::Minus => BinOp::Sub,
            Token::Star => BinOp::Mul,
            Token::Slash => BinOp::Div,
            Token::Percent => BinOp::Rem,
            _ => return None,
        })
    }

    /// Precedence climbing.
    fn expression(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.expression_inner(min_prec);
        self.depth -= 1;
        result
    }

    fn expression_inner(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.peek().and_then(Self::binop_of) {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.next();
            // left-associative: parse the rhs at prec+1
            let rhs = self.expression(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.unary_inner();
        self.depth -= 1;
        result
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                let start = self.peek_span();
                self.next();
                let operand = self.unary()?;
                let span = start.to(operand.span);
                Ok(Expr::new(
                    ExprKind::Unary(UnOp::Not, Box::new(operand)),
                    span,
                ))
            }
            Some(Token::Minus) => {
                let start = self.peek_span();
                self.next();
                let operand = self.unary()?;
                let span = start.to(operand.span);
                Ok(Expr::new(
                    ExprKind::Unary(UnOp::Neg, Box::new(operand)),
                    span,
                ))
            }
            _ => self.postfix(),
        }
    }

    /// Primary expression followed by any chain of `.member`, `[index]`.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.next();
                    let at = self.peek_span();
                    match self.next() {
                        Some(SpannedToken {
                            token: Token::Ident(name),
                            span,
                        }) => {
                            let full = e.span.to(span);
                            e = Expr::new(ExprKind::Member(Box::new(e), name), full);
                        }
                        got => {
                            return Err(ParseError::syntax(
                                at,
                                format!(
                                    "expected member name after '.', got {}",
                                    got.map(|t| t.token.to_string())
                                        .unwrap_or_else(|| "<end>".into())
                                ),
                            ))
                        }
                    }
                }
                Some(Token::LBracket) => {
                    self.next();
                    let index = self.expression(0)?;
                    let close = self.expect(&Token::RBracket)?;
                    let full = e.span.to(close);
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(index)), full);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let at = self.peek_span();
        match self.next() {
            Some(SpannedToken {
                token: Token::Num(x),
                span,
            }) => Ok(Expr::new(ExprKind::Num(x), span)),
            Some(SpannedToken {
                token: Token::Str(s),
                span,
            }) => Ok(Expr::new(ExprKind::Str(s), span)),
            Some(SpannedToken {
                token: Token::Bool(b),
                span,
            }) => Ok(Expr::new(ExprKind::Bool(b), span)),
            Some(SpannedToken {
                token: Token::Null,
                span,
            }) => Ok(Expr::new(ExprKind::Null, span)),
            Some(SpannedToken {
                token: Token::Ident(name),
                span,
            }) => {
                if self.peek() == Some(&Token::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expression(0)?);
                            match self.peek() {
                                Some(Token::Comma) => {
                                    self.next();
                                }
                                _ => break,
                            }
                        }
                    }
                    let close = self.expect(&Token::RParen)?;
                    Ok(Expr::new(ExprKind::Call(name, args), span.to(close)))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), span))
                }
            }
            Some(SpannedToken {
                token: Token::LParen,
                span,
            }) => {
                let e = self.expression(0)?;
                let close = self.expect(&Token::RParen)?;
                // Keep the inner node but widen its span to the parens, so
                // diagnostics on `(x)` underline the whole group.
                Ok(Expr::new(e.kind, span.to(close)))
            }
            got => Err(ParseError::syntax(
                at,
                format!(
                    "expected expression, got {}",
                    got.map(|t| t.token.to_string())
                        .unwrap_or_else(|| "<end>".into())
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, ExprKind, UnOp};

    fn b(kind: ExprKind) -> Box<Expr> {
        Box::new(Expr::from(kind))
    }

    #[test]
    fn parse_listing1_when() {
        let e = parse(r#"metrics["r2"] <= 0.9"#).unwrap();
        assert_eq!(
            e,
            Expr::from(ExprKind::Binary(
                BinOp::Le,
                b(ExprKind::Index(
                    b(ExprKind::Ident("metrics".into())),
                    b(ExprKind::Str("r2".into())),
                )),
                b(ExprKind::Num(0.9)),
            ))
        );
    }

    #[test]
    fn parse_listing2_when() {
        let e = parse("metrics.bias <= 0.1 && metrics.bias >= -0.1").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::And, l, r) => {
                assert!(matches!(l.kind, ExprKind::Binary(BinOp::Le, _, _)));
                match r.kind {
                    ExprKind::Binary(BinOp::Ge, _, neg) => {
                        assert_eq!(
                            *neg,
                            Expr::from(ExprKind::Unary(UnOp::Neg, b(ExprKind::Num(0.1))))
                        );
                    }
                    other => panic!("unexpected rhs {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parens() {
        // a || b && c parses as a || (b && c)
        let e = parse("a || b && c").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Or, _, _)));
        // (a || b) && c
        let e = parse("(a || b) && c").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::And, _, _)));
        // arithmetic binds tighter than comparison
        let e = parse("1 + 2 * 3 < 10").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Lt, l, _) => {
                assert!(matches!(l.kind, ExprKind::Binary(BinOp::Add, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        // 10 - 3 - 2 == (10 - 3) - 2
        let e = parse("10 - 3 - 2").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Sub, l, r) => {
                assert!(matches!(l.kind, ExprKind::Binary(BinOp::Sub, _, _)));
                assert_eq!(*r, Expr::from(ExprKind::Num(2.0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn member_chains() {
        let e = parse("a.b.c").unwrap();
        assert_eq!(
            e,
            Expr::from(ExprKind::Member(
                b(ExprKind::Member(b(ExprKind::Ident("a".into())), "b".into())),
                "c".into()
            ))
        );
    }

    #[test]
    fn call_with_args() {
        let e = parse("max(metrics.mae, 0.5)").unwrap();
        match e.kind {
            ExprKind::Call(name, args) => {
                assert_eq!(name, "max");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn selection_comparator_parses() {
        // Listing 1's MODEL_SELECTION comparator.
        let e = parse("a.created_time > b.created_time").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Gt, _, _)));
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("a &&").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("metrics[").is_err());
        assert!(parse("f(a,").is_err());
        assert!(parse("a .").is_err());
    }

    #[test]
    fn not_operator() {
        let e = parse("!deployed && !(a || b)").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn spans_point_at_source() {
        let src = "metrics.bias <= 0.1 && metrics.bias >= -0.1";
        let e = parse(src).unwrap();
        assert_eq!(e.span.slice(src).unwrap(), src);
        match &e.kind {
            ExprKind::Binary(BinOp::And, l, r) => {
                assert_eq!(l.span.slice(src).unwrap(), "metrics.bias <= 0.1");
                assert_eq!(r.span.slice(src).unwrap(), "metrics.bias >= -0.1");
                match &l.kind {
                    ExprKind::Binary(BinOp::Le, lhs, rhs) => {
                        assert_eq!(lhs.span.slice(src).unwrap(), "metrics.bias");
                        assert_eq!(rhs.span.slice(src).unwrap(), "0.1");
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paren_group_span_includes_parens() {
        let src = "!(a || b)";
        let e = parse(src).unwrap();
        match &e.kind {
            ExprKind::Unary(UnOp::Not, inner) => {
                assert_eq!(inner.span.slice(src).unwrap(), "(a || b)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_spans_locate_problem() {
        let err = parse("a && ").unwrap_err();
        assert_eq!(err.span, Span::new(5, 5), "points at end of input");
        let err = parse("metrics. > 1").unwrap_err();
        assert_eq!(err.span.slice("metrics. > 1").unwrap(), ">");
    }

    #[test]
    fn deeply_nested_parens_error_instead_of_overflowing() {
        let depth = 10_000;
        let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let err = parse(&src).unwrap_err();
        assert_eq!(err.code, crate::diag::codes::NESTING);
        assert!(err.message.contains("nesting"), "message: {}", err.message);
        // Deep unary chains are guarded too.
        let src = format!("{}x", "!".repeat(depth));
        let err = parse(&src).unwrap_err();
        assert_eq!(err.code, crate::diag::codes::NESTING);
    }

    #[test]
    fn realistic_nesting_is_fine() {
        let depth = 64;
        let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        assert!(parse(&src).is_ok());
    }
}
