//! The orchestration rule engine (§3.7.2, Figure 8).
//!
//! Evaluation is event based: rules are triggered either by a direct
//! request (Client 1 in Fig 8 — synchronous model selection) or by updates
//! to metadata/metrics referenced by a registered rule (Client 2 — action
//! rules). Triggered evaluations flow through a job queue drained by a
//! pool of worker threads; when a rule's conditions hold, its callback
//! actions are executed through the [`ActionRegistry`].

use crate::actions::{ActionInvocation, ActionRegistry};
use crate::context::instance_context_scoped;
use crate::error::EngineError;
use crate::eval::{eval, EvalValue};
use crate::rule::{CompiledRule, RuleKind};
use crate::selection;
use crossbeam::channel::{unbounded, Receiver, Sender};
use gallery_core::{Gallery, GalleryEvent, InstanceId, ModelInstance};
use gallery_telemetry::Telemetry;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One queued evaluation job.
#[derive(Debug)]
enum Job {
    /// Evaluate an action rule against one instance. When the evaluation
    /// was triggered by a metric update, the update's name/value ride along
    /// and take precedence over the stored history — the rule judges the
    /// observation that triggered it (§3.7.2), and evaluation stays O(1)
    /// in the size of the metric log.
    Evaluate {
        rule_id: String,
        instance_id: InstanceId,
        trigger_metric: Option<(String, f64)>,
        enqueued_at: Instant,
    },
    /// Run a selection rule and reply on the channel.
    Select {
        rule_id: String,
        reply: Sender<Result<Option<ModelInstance>, EngineError>>,
        enqueued_at: Instant,
    },
    Shutdown,
}

/// Engine throughput/latency counters (the paper's "reasonable response
/// time (SLA) when the rule is triggered").
#[derive(Debug, Default, Clone)]
pub struct EngineStats {
    /// Jobs enqueued.
    pub triggered: u64,
    /// Jobs whose conditions evaluated true.
    pub fired: u64,
    /// Actions successfully executed.
    pub actions_executed: u64,
    /// Evaluation or action errors.
    pub errors: u64,
    /// Total trigger→completion latency across jobs.
    pub total_latency: Duration,
    /// Worst-case trigger→completion latency.
    pub max_latency: Duration,
    /// Jobs completed (for mean latency).
    pub completed: u64,
}

impl EngineStats {
    pub fn mean_latency(&self) -> Duration {
        if self.completed == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.completed as u32
        }
    }
}

struct EngineShared {
    gallery: Arc<Gallery>,
    actions: ActionRegistry,
    rules: RwLock<HashMap<String, CompiledRule>>,
    stats: Mutex<EngineStats>,
    telemetry: Arc<Telemetry>,
    /// Jobs enqueued but not yet completed (drain barrier).
    in_flight: std::sync::atomic::AtomicU64,
}

/// The rule engine. Spawns `workers` evaluation threads; subscribe it to a
/// Gallery with [`RuleEngine::attach`] to get event-driven triggering.
pub struct RuleEngine {
    shared: Arc<EngineShared>,
    tx: Sender<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl RuleEngine {
    /// Create an engine over a Gallery with a worker pool. Per-rule eval
    /// telemetry lands in the process-global bundle; use
    /// [`RuleEngine::new_with_telemetry`] to direct it elsewhere.
    pub fn new(gallery: Arc<Gallery>, actions: ActionRegistry, workers: usize) -> Arc<Self> {
        Self::new_with_telemetry(
            gallery,
            actions,
            workers,
            Arc::clone(gallery_telemetry::global()),
        )
    }

    /// [`RuleEngine::new`] with an explicit telemetry bundle for the
    /// per-rule evaluation counters and timing histograms.
    // Failing to spawn a worker thread at engine startup is fatal by
    // design — there is no degraded mode without an evaluation pool.
    #[allow(clippy::disallowed_methods)]
    pub fn new_with_telemetry(
        gallery: Arc<Gallery>,
        actions: ActionRegistry,
        workers: usize,
        telemetry: Arc<Telemetry>,
    ) -> Arc<Self> {
        let (tx, rx) = unbounded::<Job>();
        let shared = Arc::new(EngineShared {
            gallery,
            actions,
            rules: RwLock::new(HashMap::new()),
            stats: Mutex::new(EngineStats::default()),
            telemetry,
            in_flight: std::sync::atomic::AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("rule-worker-{i}"))
                    .spawn(move || worker_loop(shared, rx))
                    .expect("spawn rule worker")
            })
            .collect();
        Arc::new(RuleEngine {
            shared,
            tx,
            workers,
        })
    }

    /// Subscribe this engine to the Gallery's event bus so that metric
    /// inserts trigger matching action rules automatically.
    pub fn attach(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        self.shared
            .gallery
            .events()
            .subscribe(Arc::new(move |event| {
                if let Some(engine) = weak.upgrade() {
                    engine.on_event(event);
                }
            }));
    }

    fn on_event(&self, event: &GalleryEvent) {
        match event {
            // "updating any metadata or metrics specific in a registered
            // rule" (§3.7.2): a metric update triggers every action rule
            // watching that metric name...
            GalleryEvent::MetricInserted {
                instance_id,
                metric_name,
                value,
                ..
            } => {
                let rules = self.shared.rules.read();
                for rule in rules.values() {
                    if rule.is_action() && rule.watched_metrics.iter().any(|m| m == metric_name) {
                        self.enqueue(Job::Evaluate {
                            rule_id: rule.id.clone(),
                            instance_id: instance_id.clone(),
                            trigger_metric: Some((metric_name.clone(), *value)),
                            enqueued_at: Instant::now(),
                        });
                    }
                }
            }
            // ...and a new (non-automatic) instance is itself a metadata
            // update: rules that do not depend on metrics at all (pure
            // GIVEN conditions) get a chance to fire immediately.
            GalleryEvent::InstanceCreated {
                instance_id,
                automatic: false,
                ..
            } => {
                let rules = self.shared.rules.read();
                for rule in rules.values() {
                    if rule.is_action() && rule.watched_metrics.is_empty() {
                        self.enqueue(Job::Evaluate {
                            rule_id: rule.id.clone(),
                            instance_id: instance_id.clone(),
                            trigger_metric: None,
                            enqueued_at: Instant::now(),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn enqueue(&self, job: Job) {
        self.shared.stats.lock().triggered += 1;
        self.shared
            .in_flight
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        // Send only fails when all workers are gone (shutdown).
        let _ = self.tx.send(job);
    }

    /// Register a compiled rule. Re-registering the same id replaces it
    /// (rules themselves are versioned in the [`crate::repo::RuleRepo`]).
    pub fn register(&self, rule: CompiledRule) {
        self.shared.rules.write().insert(rule.id.clone(), rule);
    }

    /// Load every rule from a repo snapshot.
    pub fn register_all(&self, rules: impl IntoIterator<Item = CompiledRule>) {
        let mut map = self.shared.rules.write();
        for rule in rules {
            map.insert(rule.id.clone(), rule);
        }
    }

    pub fn unregister(&self, rule_id: &str) -> bool {
        self.shared.rules.write().remove(rule_id).is_some()
    }

    pub fn rule_count(&self) -> usize {
        self.shared.rules.read().len()
    }

    /// Synchronous model selection through the job queue (Fig 8, Client 1):
    /// the request is enqueued, a worker evaluates it, and the champion is
    /// returned to the caller.
    pub fn select(&self, rule_id: &str) -> Result<Option<ModelInstance>, EngineError> {
        if !self.shared.rules.read().contains_key(rule_id) {
            return Err(EngineError::UnknownRule(rule_id.to_owned()));
        }
        let (reply_tx, reply_rx) = unbounded();
        self.enqueue(Job::Select {
            rule_id: rule_id.to_owned(),
            reply: reply_tx,
            enqueued_at: Instant::now(),
        });
        reply_rx.recv().map_err(|_| EngineError::ShuttingDown)?
    }

    /// Directly trigger evaluation of an action rule against an instance
    /// (the "directly sending a request to the rule trigger" path).
    pub fn trigger(&self, rule_id: &str, instance_id: &InstanceId) -> Result<(), EngineError> {
        if !self.shared.rules.read().contains_key(rule_id) {
            return Err(EngineError::UnknownRule(rule_id.to_owned()));
        }
        self.enqueue(Job::Evaluate {
            rule_id: rule_id.to_owned(),
            instance_id: instance_id.clone(),
            trigger_metric: None,
            enqueued_at: Instant::now(),
        });
        Ok(())
    }

    /// Block until every enqueued job has completed (test/benchmark
    /// helper): queue empty is not enough — workers may still be mid-job.
    pub fn drain(&self) {
        while self
            .shared
            .in_flight
            .load(std::sync::atomic::Ordering::SeqCst)
            > 0
        {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    pub fn stats(&self) -> EngineStats {
        self.shared.stats.lock().clone()
    }
}

impl Drop for RuleEngine {
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.tx.send(Job::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<EngineShared>, rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Shutdown => break,
            Job::Select {
                rule_id,
                reply,
                enqueued_at,
            } => {
                let result = if rule_id == "__barrier__" {
                    Ok(None)
                } else {
                    let started = Instant::now();
                    let result = run_selection(&shared, &rule_id);
                    observe_eval(&shared, &rule_id, "select", started);
                    result
                };
                finish_job(&shared, enqueued_at, result.is_err());
                let _ = reply.send(result);
            }
            Job::Evaluate {
                rule_id,
                instance_id,
                trigger_metric,
                enqueued_at,
            } => {
                let started = Instant::now();
                let errored = match run_action(&shared, &rule_id, &instance_id, trigger_metric) {
                    Ok(fired) => {
                        if fired {
                            shared.stats.lock().fired += 1;
                            shared
                                .telemetry
                                .registry()
                                .counter("gallery_rules_fired_total", &[("rule", &rule_id)])
                                .inc();
                        }
                        false
                    }
                    Err(_) => true,
                };
                observe_eval(&shared, &rule_id, "evaluate", started);
                finish_job(&shared, enqueued_at, errored);
            }
        }
    }
}

/// Per-rule evaluation accounting: one counter tick plus a latency sample
/// per worker-side evaluation, labelled by rule id and job kind.
fn observe_eval(shared: &EngineShared, rule_id: &str, kind: &str, started: Instant) {
    let reg = shared.telemetry.registry();
    reg.counter(
        "gallery_rules_evals_total",
        &[("kind", kind), ("rule", rule_id)],
    )
    .inc();
    reg.duration_histogram("gallery_rule_eval_duration_ms", &[("rule", rule_id)])
        .observe_since(started);
}

fn finish_job(shared: &EngineShared, enqueued_at: Instant, errored: bool) {
    let latency = enqueued_at.elapsed();
    {
        let mut stats = shared.stats.lock();
        stats.completed += 1;
        stats.total_latency += latency;
        if latency > stats.max_latency {
            stats.max_latency = latency;
        }
        if errored {
            stats.errors += 1;
        }
    }
    shared
        .in_flight
        .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
}

fn run_selection(
    shared: &EngineShared,
    rule_id: &str,
) -> Result<Option<ModelInstance>, EngineError> {
    let rule = shared
        .rules
        .read()
        .get(rule_id)
        .cloned()
        .ok_or_else(|| EngineError::UnknownRule(rule_id.to_owned()))?;
    selection::select_from_gallery(&shared.gallery, &rule)
}

/// Evaluate an action rule against one instance; returns whether it fired.
fn run_action(
    shared: &EngineShared,
    rule_id: &str,
    instance_id: &InstanceId,
    trigger_metric: Option<(String, f64)>,
) -> Result<bool, EngineError> {
    let rule = shared
        .rules
        .read()
        .get(rule_id)
        .cloned()
        .ok_or_else(|| EngineError::UnknownRule(rule_id.to_owned()))?;
    let actions = match &rule.kind {
        RuleKind::Action { actions } => actions.clone(),
        RuleKind::Selection { .. } => return Ok(false),
    };
    let instance = shared.gallery.get_instance(instance_id)?;
    // Scoped context: fetch only the metrics this rule references that did
    // NOT arrive with the trigger, keeping evaluation O(watched metrics)
    // instead of O(all stored observations).
    let fetch_names: Vec<String> = rule
        .watched_metrics
        .iter()
        .filter(|m| {
            trigger_metric
                .as_ref()
                .map(|(n, _)| n != *m)
                .unwrap_or(true)
        })
        .cloned()
        .collect();
    let mut ctx = instance_context_scoped(&shared.gallery, &instance, &fetch_names)?;
    if let Some((name, value)) = trigger_metric {
        ctx.set_metric(name, value);
    }
    if eval(&rule.given, &ctx)? != EvalValue::Bool(true) {
        return Ok(false);
    }
    if eval(&rule.when, &ctx)? != EvalValue::Bool(true) {
        return Ok(false);
    }
    for action in &actions {
        let invocation = ActionInvocation {
            rule_id: rule.id.clone(),
            action: action.clone(),
            instance_id: instance.id.clone(),
            model_id: instance.model_id.clone(),
            environment: rule.environment.clone(),
        };
        shared.actions.invoke(&invocation)?;
        shared.stats.lock().actions_executed += 1;
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{listing1_selection_rule, listing2_action_rule, CompiledRule};
    use bytes::Bytes;
    use gallery_core::metadata::{fields, Metadata};
    use gallery_core::{InstanceSpec, MetricScope, MetricSpec, ModelSpec};

    fn rf_instance(g: &Gallery, domain: &str) -> gallery_core::ModelInstance {
        let model = g
            .create_model(ModelSpec::new("p", format!("base-{domain}")).name("Random Forest"))
            .unwrap();
        g.upload_instance(
            &model.id,
            InstanceSpec::new().metadata(
                Metadata::new()
                    .with(fields::MODEL_NAME, "Random Forest")
                    .with(fields::MODEL_DOMAIN, domain),
            ),
            Bytes::from_static(b"w"),
        )
        .unwrap()
    }

    #[test]
    fn listing2_event_driven_deployment() {
        let gallery = Arc::new(Gallery::in_memory());
        let (actions, _log) = ActionRegistry::with_defaults();
        let deployed: Arc<Mutex<Vec<ActionInvocation>>> = Arc::default();
        {
            let deployed = Arc::clone(&deployed);
            actions.register("forecasting_deployment", move |inv| {
                deployed.lock().push(inv.clone());
                Ok(())
            });
        }
        let engine = RuleEngine::new(Arc::clone(&gallery), actions, 2);
        engine.register(CompiledRule::compile(&listing2_action_rule()).unwrap());
        engine.attach();

        let inst = rf_instance(&gallery, "UberX");
        // In-corridor bias -> rule fires.
        gallery
            .insert_metric(
                &inst.id,
                MetricSpec::new("bias", MetricScope::Validation, 0.05),
            )
            .unwrap();
        engine.drain();
        assert_eq!(deployed.lock().len(), 1);
        assert_eq!(deployed.lock()[0].action, "forecasting_deployment");
        // Out-of-corridor bias -> no new fire.
        gallery
            .insert_metric(
                &inst.id,
                MetricSpec::new("bias", MetricScope::Validation, 0.5),
            )
            .unwrap();
        engine.drain();
        assert_eq!(deployed.lock().len(), 1);
        let stats = engine.stats();
        assert!(stats.triggered >= 2);
        assert_eq!(stats.fired, 1);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn unwatched_metric_does_not_trigger() {
        let gallery = Arc::new(Gallery::in_memory());
        let (actions, _log) = ActionRegistry::with_defaults();
        let engine = RuleEngine::new(Arc::clone(&gallery), actions, 1);
        engine.register(CompiledRule::compile(&listing2_action_rule()).unwrap());
        engine.attach();
        let inst = rf_instance(&gallery, "UberX");
        gallery
            .insert_metric(
                &inst.id,
                MetricSpec::new("mae", MetricScope::Validation, 0.05),
            )
            .unwrap();
        engine.drain();
        assert_eq!(engine.stats().fired, 0);
    }

    #[test]
    fn given_filters_domain() {
        let gallery = Arc::new(Gallery::in_memory());
        let (actions, log) = ActionRegistry::with_defaults();
        let mut doc = listing2_action_rule();
        doc.rule.callback_actions = vec!["log".into()];
        let engine = RuleEngine::new(Arc::clone(&gallery), actions, 1);
        engine.register(CompiledRule::compile(&doc).unwrap());
        engine.attach();
        let pool_inst = rf_instance(&gallery, "UberPool");
        gallery
            .insert_metric(
                &pool_inst.id,
                MetricSpec::new("bias", MetricScope::Validation, 0.0),
            )
            .unwrap();
        engine.drain();
        assert!(
            log.is_empty(),
            "UberPool instance must not fire an UberX rule"
        );
    }

    #[test]
    fn selection_through_queue() {
        let gallery = Arc::new(Gallery::in_memory());
        let model = gallery
            .create_model(ModelSpec::new("p", "demand").name("linear_regression"))
            .unwrap();
        for r2 in [0.7, 0.8] {
            let inst = gallery
                .upload_instance(
                    &model.id,
                    InstanceSpec::new().metadata(
                        Metadata::new()
                            .with(fields::MODEL_NAME, "linear_regression")
                            .with(fields::MODEL_DOMAIN, "UberX"),
                    ),
                    Bytes::from_static(b"w"),
                )
                .unwrap();
            gallery
                .insert_metric(&inst.id, MetricSpec::new("r2", MetricScope::Validation, r2))
                .unwrap();
        }
        let (actions, _log) = ActionRegistry::with_defaults();
        let engine = RuleEngine::new(Arc::clone(&gallery), actions, 2);
        engine.register(CompiledRule::compile(&listing1_selection_rule()).unwrap());
        let champion = engine.select(&listing1_selection_rule().uuid).unwrap();
        assert!(champion.is_some());
        assert!(matches!(
            engine.select("ghost"),
            Err(EngineError::UnknownRule(_))
        ));
    }

    #[test]
    fn direct_trigger() {
        let gallery = Arc::new(Gallery::in_memory());
        let (actions, log) = ActionRegistry::with_defaults();
        let mut doc = listing2_action_rule();
        doc.rule.callback_actions = vec!["alert".into()];
        let engine = RuleEngine::new(Arc::clone(&gallery), actions, 1);
        engine.register(CompiledRule::compile(&doc).unwrap());
        // No attach: only direct triggering.
        let inst = rf_instance(&gallery, "UberX");
        gallery
            .insert_metric(
                &inst.id,
                MetricSpec::new("bias", MetricScope::Validation, 0.01),
            )
            .unwrap();
        engine.trigger(&doc.uuid, &inst.id).unwrap();
        engine.drain();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn unregister() {
        let gallery = Arc::new(Gallery::in_memory());
        let (actions, _) = ActionRegistry::with_defaults();
        let engine = RuleEngine::new(gallery, actions, 1);
        engine.register(CompiledRule::compile(&listing2_action_rule()).unwrap());
        assert_eq!(engine.rule_count(), 1);
        assert!(engine.unregister(&listing2_action_rule().uuid));
        assert!(!engine.unregister("ghost"));
        assert_eq!(engine.rule_count(), 0);
    }

    #[test]
    fn action_errors_counted() {
        let gallery = Arc::new(Gallery::in_memory());
        let actions = ActionRegistry::new();
        actions.register("forecasting_deployment", |_| {
            Err(EngineError::ActionFailed("deploy target down".into()))
        });
        let engine = RuleEngine::new(Arc::clone(&gallery), actions, 1);
        engine.register(CompiledRule::compile(&listing2_action_rule()).unwrap());
        engine.attach();
        let inst = rf_instance(&gallery, "UberX");
        gallery
            .insert_metric(
                &inst.id,
                MetricSpec::new("bias", MetricScope::Validation, 0.0),
            )
            .unwrap();
        engine.drain();
        assert_eq!(engine.stats().errors, 1);
    }
}

#[cfg(test)]
mod metadata_trigger_tests {
    use super::*;
    use crate::rule::{CompiledRule, RuleBody, RuleDoc};
    use bytes::Bytes;
    use gallery_core::metadata::{fields, Metadata};
    use gallery_core::{InstanceSpec, ModelSpec};

    /// A metrics-free action rule fires the moment a matching instance is
    /// registered (metadata-update triggering, §3.7.2).
    #[test]
    fn instance_creation_triggers_metadata_only_rules() {
        let gallery = Arc::new(Gallery::in_memory());
        let (actions, log) = ActionRegistry::with_defaults();
        let mut doc = RuleDoc {
            team: "t".into(),
            uuid: "notify-on-new-uberx-instance".into(),
            rule: RuleBody {
                given: r#"model_domain == "UberX""#.into(),
                when: "true".into(),
                environment: "staging".into(),
                model_selection: None,
                callback_actions: vec!["alert".into()],
            },
        };
        let engine = RuleEngine::new(Arc::clone(&gallery), actions, 1);
        engine.register(CompiledRule::compile(&doc).unwrap());
        engine.attach();

        let model = gallery
            .create_model(ModelSpec::new("p", "meta_trigger").name("m"))
            .unwrap();
        gallery
            .upload_instance(
                &model.id,
                InstanceSpec::new().metadata(Metadata::new().with(fields::MODEL_DOMAIN, "UberX")),
                Bytes::from_static(b"w"),
            )
            .unwrap();
        engine.drain();
        assert_eq!(log.len(), 1, "new matching instance fires the rule");

        // Non-matching domain: no fire.
        gallery
            .upload_instance(
                &model.id,
                InstanceSpec::new()
                    .metadata(Metadata::new().with(fields::MODEL_DOMAIN, "UberPool")),
                Bytes::from_static(b"w2"),
            )
            .unwrap();
        engine.drain();
        assert_eq!(log.len(), 1);

        // Metric-watching rules are NOT triggered by bare instance creation.
        doc.uuid = "metric-rule".into();
        doc.rule.when = "metrics.bias < 0.1".into();
        engine.register(CompiledRule::compile(&doc).unwrap());
        gallery
            .upload_instance(
                &model.id,
                InstanceSpec::new().metadata(Metadata::new().with(fields::MODEL_DOMAIN, "UberX")),
                Bytes::from_static(b"w3"),
            )
            .unwrap();
        engine.drain();
        // the metadata-only rule fired once more; the metric rule did not
        assert_eq!(log.len(), 2);
    }
}
