//! Error types for the rule engine.

use crate::eval::EvalError;
use crate::parser::ParseError;
use crate::rule::RuleError;
use gallery_core::GalleryError;
use std::fmt;

/// Errors produced while loading, evaluating, or executing rules.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Underlying Gallery failure.
    Gallery(GalleryError),
    /// Expression failed to parse.
    Parse(String),
    /// Expression failed to evaluate.
    Eval(String),
    /// Rule document invalid.
    Rule(String),
    /// The named rule is not registered.
    UnknownRule(String),
    /// The named action is not registered.
    UnknownAction(String),
    /// The rule is an action rule but a selection was requested.
    NotASelectionRule(String),
    /// A callback action reported failure.
    ActionFailed(String),
    /// Rule repo violation (validation, review, unknown path...).
    Repo(String),
    /// Static analysis rejected the rule (error-severity diagnostics).
    Lint(String),
    /// The engine is shutting down.
    ShuttingDown,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Gallery(e) => write!(f, "gallery error: {e}"),
            EngineError::Parse(m) => write!(f, "{m}"),
            EngineError::Eval(m) => write!(f, "{m}"),
            EngineError::Rule(m) => write!(f, "{m}"),
            EngineError::UnknownRule(id) => write!(f, "unknown rule: {id}"),
            EngineError::UnknownAction(name) => write!(f, "unknown action: {name}"),
            EngineError::NotASelectionRule(id) => {
                write!(f, "rule {id} is not a selection rule")
            }
            EngineError::ActionFailed(m) => write!(f, "action failed: {m}"),
            EngineError::Repo(m) => write!(f, "rule repo error: {m}"),
            EngineError::Lint(m) => write!(f, "rule rejected by static analysis:\n{m}"),
            EngineError::ShuttingDown => write!(f, "rule engine is shutting down"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GalleryError> for EngineError {
    fn from(e: GalleryError) -> Self {
        EngineError::Gallery(e)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e.to_string())
    }
}

impl From<RuleError> for EngineError {
    fn from(e: RuleError) -> Self {
        EngineError::Rule(e.to_string())
    }
}
