//! Versioned rule repository (§3.7.2).
//!
//! "For rule storage, we use a Git repository ... we automatically have
//! version control for the rules ... and we can also easily enforce the
//! peer review process." This module implements a content-addressed,
//! append-only repository: every change is a commit (hash-identified),
//! every rule file is validated (compiled) before it can be committed, and
//! commits require a reviewer distinct from the author.

use crate::analyze::{analyze_rule, analyze_rule_set};
use crate::error::EngineError;
use crate::rule::{CompiledRule, RuleDoc};
use gallery_store::blob::checksum::crc32;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One committed change set.
#[derive(Debug, Clone, PartialEq)]
pub struct Commit {
    pub id: String,
    pub parent: Option<String>,
    pub author: String,
    pub reviewer: String,
    pub message: String,
    /// path -> new content (`None` = deletion).
    pub changes: Vec<(String, Option<String>)>,
}

#[derive(Debug, Default)]
struct RepoInner {
    /// Current content per path.
    files: BTreeMap<String, String>,
    commits: Vec<Commit>,
}

/// The rule repository. Cloning shares state.
#[derive(Debug, Clone, Default)]
pub struct RuleRepo {
    inner: Arc<RwLock<RepoInner>>,
}

impl RuleRepo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Validate rule JSON without committing — the "test framework to
    /// validate each rule before it can impact production". Compilation
    /// catches malformed documents; the static analyzer then rejects
    /// error-severity findings (typos, type errors, impossible conditions).
    pub fn validate(content: &str) -> Result<CompiledRule, EngineError> {
        let compiled = CompiledRule::from_json(content).map_err(EngineError::from)?;
        let doc: RuleDoc = serde_json::from_str(content)
            .map_err(|e| EngineError::Rule(format!("invalid rule JSON: {e}")))?;
        let report = analyze_rule(&doc);
        if report.has_errors() {
            return Err(EngineError::Lint(report.render()));
        }
        Ok(compiled)
    }

    /// Commit a set of changes. Every added/updated file must be valid rule
    /// JSON; the reviewer must differ from the author (peer review);
    /// deletions must reference existing paths.
    pub fn commit(
        &self,
        author: &str,
        reviewer: &str,
        message: &str,
        changes: Vec<(String, Option<String>)>,
    ) -> Result<String, EngineError> {
        if author.trim().is_empty() {
            return Err(EngineError::Repo("author must be non-empty".into()));
        }
        if reviewer == author {
            return Err(EngineError::Repo(format!(
                "peer review required: reviewer must differ from author {author}"
            )));
        }
        if changes.is_empty() {
            return Err(EngineError::Repo("empty commit".into()));
        }
        // Validate before mutating anything.
        for (path, content) in &changes {
            match content {
                Some(json) => {
                    Self::validate(json).map_err(|e| {
                        EngineError::Repo(format!("validation failed for {path}: {e}"))
                    })?;
                }
                None => {
                    if !self.inner.read().files.contains_key(path) {
                        return Err(EngineError::Repo(format!(
                            "cannot delete unknown path {path}"
                        )));
                    }
                }
            }
        }
        // Set-level analysis over the post-commit state: the commit may not
        // introduce duplicate ids, shadowed rules, or contradictory actions.
        {
            let mut post = self.inner.read().files.clone();
            for (path, content) in &changes {
                match content {
                    Some(json) => {
                        post.insert(path.clone(), json.clone());
                    }
                    None => {
                        post.remove(path);
                    }
                }
            }
            let docs: Vec<RuleDoc> = post
                .values()
                .filter_map(|json| serde_json::from_str(json).ok())
                .collect();
            let set_report = analyze_rule_set(&docs);
            if set_report.has_errors() {
                return Err(EngineError::Lint(set_report.render()));
            }
        }
        let mut inner = self.inner.write();
        let parent = inner.commits.last().map(|c| c.id.clone());
        let mut hash_input = String::new();
        hash_input.push_str(parent.as_deref().unwrap_or("root"));
        hash_input.push_str(author);
        hash_input.push_str(message);
        for (path, content) in &changes {
            hash_input.push_str(path);
            hash_input.push_str(content.as_deref().unwrap_or("<deleted>"));
        }
        let id = format!(
            "{:08x}{:08x}",
            crc32(hash_input.as_bytes()),
            inner.commits.len() as u32
        );
        for (path, content) in &changes {
            match content {
                Some(json) => {
                    inner.files.insert(path.clone(), json.clone());
                }
                None => {
                    inner.files.remove(path);
                }
            }
        }
        inner.commits.push(Commit {
            id: id.clone(),
            parent,
            author: author.to_owned(),
            reviewer: reviewer.to_owned(),
            message: message.to_owned(),
            changes,
        });
        Ok(id)
    }

    /// Convenience: commit one rule file.
    pub fn commit_rule(
        &self,
        author: &str,
        reviewer: &str,
        path: &str,
        content: &str,
    ) -> Result<String, EngineError> {
        self.commit(
            author,
            reviewer,
            &format!("update {path}"),
            vec![(path.to_owned(), Some(content.to_owned()))],
        )
    }

    /// Current content of a rule file.
    pub fn get(&self, path: &str) -> Option<String> {
        self.inner.read().files.get(path).cloned()
    }

    /// Paths currently present.
    pub fn paths(&self) -> Vec<String> {
        self.inner.read().files.keys().cloned().collect()
    }

    /// Commits touching a path, oldest first.
    pub fn history(&self, path: &str) -> Vec<Commit> {
        self.inner
            .read()
            .commits
            .iter()
            .filter(|c| c.changes.iter().any(|(p, _)| p == path))
            .cloned()
            .collect()
    }

    /// All commits, oldest first.
    pub fn log(&self) -> Vec<Commit> {
        self.inner.read().commits.clone()
    }

    /// Compile every rule currently in the repo.
    pub fn load_rules(&self) -> Result<Vec<CompiledRule>, EngineError> {
        self.inner
            .read()
            .files
            .values()
            .map(|json| Self::validate(json))
            .collect()
    }

    /// Reconstruct the file tree as of a given commit (time travel).
    pub fn checkout(&self, commit_id: &str) -> Result<BTreeMap<String, String>, EngineError> {
        let inner = self.inner.read();
        let upto = inner
            .commits
            .iter()
            .position(|c| c.id == commit_id)
            .ok_or_else(|| EngineError::Repo(format!("unknown commit {commit_id}")))?;
        let mut files = BTreeMap::new();
        for commit in &inner.commits[..=upto] {
            for (path, content) in &commit.changes {
                match content {
                    Some(json) => {
                        files.insert(path.clone(), json.clone());
                    }
                    None => {
                        files.remove(path);
                    }
                }
            }
        }
        Ok(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{listing1_selection_rule, listing2_action_rule};

    fn rule_json(doc: &crate::rule::RuleDoc) -> String {
        serde_json::to_string_pretty(doc).unwrap()
    }

    #[test]
    fn commit_and_load() {
        let repo = RuleRepo::new();
        repo.commit_rule(
            "alice",
            "bob",
            "forecasting/selection.json",
            &rule_json(&listing1_selection_rule()),
        )
        .unwrap();
        repo.commit_rule(
            "alice",
            "bob",
            "forecasting/deploy.json",
            &rule_json(&listing2_action_rule()),
        )
        .unwrap();
        assert_eq!(repo.paths().len(), 2);
        let rules = repo.load_rules().unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn peer_review_enforced() {
        let repo = RuleRepo::new();
        let err = repo.commit_rule(
            "alice",
            "alice",
            "r.json",
            &rule_json(&listing1_selection_rule()),
        );
        assert!(matches!(err, Err(EngineError::Repo(_))));
    }

    #[test]
    fn invalid_rule_rejected_before_commit() {
        let repo = RuleRepo::new();
        let err = repo.commit_rule("alice", "bob", "bad.json", "{ not json");
        assert!(err.is_err());
        assert!(repo.paths().is_empty());
        assert!(repo.log().is_empty());
    }

    #[test]
    fn atomic_multi_file_commit() {
        let repo = RuleRepo::new();
        // second file invalid -> whole commit rejected, first file absent
        let err = repo.commit(
            "alice",
            "bob",
            "batch",
            vec![
                ("a.json".into(), Some(rule_json(&listing1_selection_rule()))),
                ("b.json".into(), Some("garbage".into())),
            ],
        );
        assert!(err.is_err());
        assert!(repo.get("a.json").is_none());
    }

    #[test]
    fn history_and_checkout() {
        let repo = RuleRepo::new();
        let v1 = rule_json(&listing1_selection_rule());
        let mut doc2 = listing1_selection_rule();
        doc2.rule.when = "metrics[\"r2\"] <= 0.95".into();
        let v2 = rule_json(&doc2);
        let c1 = repo.commit_rule("alice", "bob", "r.json", &v1).unwrap();
        let c2 = repo.commit_rule("carol", "bob", "r.json", &v2).unwrap();
        assert_eq!(repo.history("r.json").len(), 2);
        assert_eq!(repo.get("r.json"), Some(v2.clone()));
        let old = repo.checkout(&c1).unwrap();
        assert_eq!(old.get("r.json"), Some(&v1));
        let new = repo.checkout(&c2).unwrap();
        assert_eq!(new.get("r.json"), Some(&v2));
        assert!(repo.checkout("bogus").is_err());
    }

    #[test]
    fn deletion() {
        let repo = RuleRepo::new();
        repo.commit_rule("a", "b", "r.json", &rule_json(&listing1_selection_rule()))
            .unwrap();
        repo.commit("a", "b", "remove", vec![("r.json".into(), None)])
            .unwrap();
        assert!(repo.get("r.json").is_none());
        // deleting unknown path rejected
        assert!(repo
            .commit("a", "b", "remove again", vec![("r.json".into(), None)])
            .is_err());
    }

    #[test]
    fn commit_ids_are_unique_and_chained() {
        let repo = RuleRepo::new();
        let c1 = repo
            .commit_rule("a", "b", "r1.json", &rule_json(&listing1_selection_rule()))
            .unwrap();
        let c2 = repo
            .commit_rule("a", "b", "r2.json", &rule_json(&listing2_action_rule()))
            .unwrap();
        assert_ne!(c1, c2);
        let log = repo.log();
        assert_eq!(log[0].parent, None);
        assert_eq!(log[1].parent, Some(c1));
    }
}
