//! Model selection rules (§3.7.1).
//!
//! "Applying a model selection rule will return a model based on some
//! selection criteria, e.g., returning the model that maximize AUC."
//! Candidates are filtered by the rule's GIVEN and WHEN clauses, then
//! ranked by the pairwise `MODEL_SELECTION` comparator: `a` beats `b` when
//! the comparator evaluates true with the two candidates bound to `a` and
//! `b`.

use crate::context::instance_context;
use crate::error::EngineError;
use crate::eval::{eval, EvalContext, EvalValue};
use crate::rule::{CompiledRule, RuleKind};
use gallery_core::{Gallery, ModelInstance};

/// Filter candidates by GIVEN && WHEN.
pub fn filter_candidates(
    gallery: &Gallery,
    rule: &CompiledRule,
    candidates: &[ModelInstance],
) -> Result<Vec<ModelInstance>, EngineError> {
    let mut out = Vec::new();
    for cand in candidates {
        let ctx = instance_context(gallery, cand)?;
        let given = eval(&rule.given, &ctx)?;
        if given != EvalValue::Bool(true) {
            continue;
        }
        let when = eval(&rule.when, &ctx)?;
        if when == EvalValue::Bool(true) {
            out.push(cand.clone());
        }
    }
    Ok(out)
}

/// Run a selection rule over explicit candidates; returns the champion, or
/// `None` when no candidate passes the filters.
pub fn select_champion(
    gallery: &Gallery,
    rule: &CompiledRule,
    candidates: &[ModelInstance],
) -> Result<Option<ModelInstance>, EngineError> {
    let comparator = match &rule.kind {
        RuleKind::Selection { comparator } => comparator,
        RuleKind::Action { .. } => return Err(EngineError::NotASelectionRule(rule.id.clone())),
    };
    let survivors = filter_candidates(gallery, rule, candidates)?;
    let mut survivors = survivors.into_iter();
    let Some(mut champion) = survivors.next() else {
        return Ok(None);
    };
    let mut champion_ctx = instance_context(gallery, &champion)?;
    for challenger in survivors {
        let challenger_ctx = instance_context(gallery, &challenger)?;
        // comparator answers: "is a better than b?" with a = challenger.
        let mut pair = EvalContext::new();
        pair.nest("a", &challenger_ctx);
        pair.nest("b", &champion_ctx);
        if eval(comparator, &pair)? == EvalValue::Bool(true) {
            champion = challenger;
            champion_ctx = challenger_ctx;
        }
    }
    Ok(Some(champion))
}

/// Run a selection rule against every live (non-deprecated) instance in
/// Gallery — the serving-time entry point ("At serving time, users will
/// query Gallery for the champion model to serve based on the user-defined
/// rules").
pub fn select_from_gallery(
    gallery: &Gallery,
    rule: &CompiledRule,
) -> Result<Option<ModelInstance>, EngineError> {
    let candidates = gallery.find_instances(&gallery_store::Query::all())?;
    select_champion(gallery, rule, &candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{listing1_selection_rule, listing2_action_rule, CompiledRule};
    use bytes::Bytes;
    use gallery_core::metadata::{fields, Metadata};
    use gallery_core::{InstanceSpec, MetricScope, MetricSpec, ModelSpec};

    /// Build a gallery with three linear-regression instances for UberX:
    /// old+good, new+good, new+bad(r2 high — fails WHEN), plus one from a
    /// different domain (fails GIVEN).
    fn setup() -> (Gallery, Vec<gallery_core::InstanceId>) {
        // Manual clock: instance creation times are strictly increasing, so
        // the "latest trained" comparator is deterministic.
        let g = Gallery::in_memory_with_clock(std::sync::Arc::new(gallery_core::ManualClock::new(
            1_000,
        )));
        let model = g
            .create_model(ModelSpec::new("p", "demand").name("linear_regression"))
            .unwrap();
        let mut ids = Vec::new();
        let mk = |g: &Gallery, domain: &str, r2: f64| {
            let inst = g
                .upload_instance(
                    &model.id,
                    InstanceSpec::new().metadata(
                        Metadata::new()
                            .with(fields::MODEL_NAME, "linear_regression")
                            .with(fields::MODEL_DOMAIN, domain),
                    ),
                    Bytes::from_static(b"w"),
                )
                .unwrap();
            g.insert_metric(&inst.id, MetricSpec::new("r2", MetricScope::Validation, r2))
                .unwrap();
            inst.id
        };
        ids.push(mk(&g, "UberX", 0.70)); // old, passes
        ids.push(mk(&g, "UberX", 0.80)); // newer, passes
        ids.push(mk(&g, "UberX", 0.95)); // newest but r2 > 0.9 fails WHEN
        ids.push(mk(&g, "UberPool", 0.50)); // wrong domain
        (g, ids)
    }

    #[test]
    fn listing1_selects_latest_passing_instance() {
        let (g, ids) = setup();
        let rule = CompiledRule::compile(&listing1_selection_rule()).unwrap();
        let champion = select_from_gallery(&g, &rule).unwrap().unwrap();
        // Candidates passing GIVEN+WHEN: ids[0], ids[1]; comparator picks
        // the later created one.
        assert_eq!(champion.id, ids[1]);
    }

    #[test]
    fn no_candidates_returns_none() {
        let g = Gallery::in_memory();
        let rule = CompiledRule::compile(&listing1_selection_rule()).unwrap();
        assert!(select_from_gallery(&g, &rule).unwrap().is_none());
    }

    #[test]
    fn action_rule_rejected() {
        let (g, _) = setup();
        let rule = CompiledRule::compile(&listing2_action_rule()).unwrap();
        assert!(matches!(
            select_from_gallery(&g, &rule),
            Err(EngineError::NotASelectionRule(_))
        ));
    }

    #[test]
    fn metric_maximizing_comparator() {
        let (g, ids) = setup();
        let mut doc = listing1_selection_rule();
        // champion = lowest r2 among passing candidates
        doc.rule.model_selection = Some(r#"a.metrics["r2"] < b.metrics["r2"]"#.into());
        let rule = CompiledRule::compile(&doc).unwrap();
        let champion = select_from_gallery(&g, &rule).unwrap().unwrap();
        assert_eq!(champion.id, ids[0]);
    }

    #[test]
    fn deprecated_instances_excluded() {
        let (g, ids) = setup();
        g.deprecate_instance(&ids[1]).unwrap();
        let rule = CompiledRule::compile(&listing1_selection_rule()).unwrap();
        let champion = select_from_gallery(&g, &rule).unwrap().unwrap();
        assert_eq!(champion.id, ids[0]);
    }
}
