//! Lexer for the rule expression language.
//!
//! The paper implements rule conditions with Apache JEXL (§3.7.2). Our
//! from-scratch expression language covers the JEXL surface the paper's
//! rules use (Listings 1–2): identifiers, member access (`metrics.bias`),
//! bracket indexing (`metrics["r2"]`), string/number/bool literals,
//! comparison, boolean, and arithmetic operators, and function calls.
//!
//! Every token carries a byte-range [`Span`] into the source string; the
//! parser threads spans into AST nodes so parse/eval/lint diagnostics can
//! point at the offending text.

use std::fmt;

/// A byte range into an expression source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    /// A span that points nowhere (used for synthesized nodes and
    /// rule-set-level diagnostics that have no single source location).
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start: start as u32,
            end: end as u32,
        }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }

    /// The spanned slice of `src`, if in bounds on a char boundary.
    pub fn slice(self, src: &str) -> Option<&str> {
        src.get(self.start as usize..self.end as usize)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    // operators
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    Comma,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Num(x) => write!(f, "{x}"),
            Token::Bool(b) => write!(f, "{b}"),
            Token::Null => write!(f, "null"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Not => write!(f, "!"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
        }
    }
}

/// A token plus the byte range of source text it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub span: Span,
}

/// Lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub position: usize,
    pub message: String,
}

impl LexError {
    /// The error position as a one-byte span.
    pub fn span(&self) -> Span {
        Span::new(self.position, self.position + 1)
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an expression source string.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let push = |token: Token, start: usize, end: usize, tokens: &mut Vec<SpannedToken>| {
        tokens.push(SpannedToken {
            token,
            span: Span::new(start, end),
        });
    };
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                push(Token::LParen, i, i + 1, &mut tokens);
                i += 1;
            }
            b')' => {
                push(Token::RParen, i, i + 1, &mut tokens);
                i += 1;
            }
            b'[' => {
                push(Token::LBracket, i, i + 1, &mut tokens);
                i += 1;
            }
            b']' => {
                push(Token::RBracket, i, i + 1, &mut tokens);
                i += 1;
            }
            b'.' => {
                // Could be a leading-dot number like ".5"? Not supported:
                // always member access.
                push(Token::Dot, i, i + 1, &mut tokens);
                i += 1;
            }
            b',' => {
                push(Token::Comma, i, i + 1, &mut tokens);
                i += 1;
            }
            b'+' => {
                push(Token::Plus, i, i + 1, &mut tokens);
                i += 1;
            }
            b'-' => {
                push(Token::Minus, i, i + 1, &mut tokens);
                i += 1;
            }
            b'*' => {
                push(Token::Star, i, i + 1, &mut tokens);
                i += 1;
            }
            b'/' => {
                push(Token::Slash, i, i + 1, &mut tokens);
                i += 1;
            }
            b'%' => {
                push(Token::Percent, i, i + 1, &mut tokens);
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::EqEq, i, i + 2, &mut tokens);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "single '=' (use '==')".into(),
                    });
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::NotEq, i, i + 2, &mut tokens);
                    i += 2;
                } else {
                    push(Token::Not, i, i + 1, &mut tokens);
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::Le, i, i + 2, &mut tokens);
                    i += 2;
                } else {
                    push(Token::Lt, i, i + 1, &mut tokens);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Token::Ge, i, i + 2, &mut tokens);
                    i += 2;
                } else {
                    push(Token::Gt, i, i + 1, &mut tokens);
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push(Token::AndAnd, i, i + 2, &mut tokens);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "single '&' (use '&&')".into(),
                    });
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push(Token::OrOr, i, i + 2, &mut tokens);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "single '|' (use '||')".into(),
                    });
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                position: start,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(&c) if c == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1).ok_or(LexError {
                                position: i,
                                message: "dangling escape".into(),
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'\'' => '\'',
                                other => {
                                    return Err(LexError {
                                        position: i,
                                        message: format!("bad escape \\{}", *other as char),
                                    })
                                }
                            });
                            i += 2;
                        }
                        Some(&c) => {
                            // Multi-byte UTF-8: copy the full char.
                            let ch_len = utf8_len(c);
                            let end = (i + ch_len).min(bytes.len());
                            s.push_str(std::str::from_utf8(&bytes[i..end]).map_err(|_| {
                                LexError {
                                    position: i,
                                    message: "invalid utf-8 in string".into(),
                                }
                            })?);
                            i = end;
                        }
                    }
                }
                push(Token::Str(s), start, i, &mut tokens);
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    // Don't swallow a trailing member-access dot like `1.foo`
                    // (numbers may contain at most one dot followed by digits).
                    if bytes[i] == b'.'
                        && !bytes.get(i + 1).map(u8::is_ascii_digit).unwrap_or(false)
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let value: f64 = text.parse().map_err(|_| LexError {
                    position: start,
                    message: format!("bad number: {text}"),
                })?;
                push(Token::Num(value), start, i, &mut tokens);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let token = match word {
                    "true" => Token::Bool(true),
                    "false" => Token::Bool(false),
                    "null" => Token::Null,
                    "and" => Token::AndAnd,
                    "or" => Token::OrOr,
                    "not" => Token::Not,
                    "eq" => Token::EqEq,
                    "ne" => Token::NotEq,
                    "lt" => Token::Lt,
                    "le" => Token::Le,
                    "gt" => Token::Gt,
                    "ge" => Token::Ge,
                    _ => Token::Ident(word.to_owned()),
                };
                push(token, start, i, &mut tokens);
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lex_listing1_given() {
        let tokens = toks(r#"modelName == "linear_regression" && model_domain == "UberX""#);
        assert_eq!(
            tokens,
            vec![
                Token::Ident("modelName".into()),
                Token::EqEq,
                Token::Str("linear_regression".into()),
                Token::AndAnd,
                Token::Ident("model_domain".into()),
                Token::EqEq,
                Token::Str("UberX".into()),
            ]
        );
    }

    #[test]
    fn lex_bracket_metric_access() {
        let tokens = toks(r#"metrics["r2"] <= 0.9"#);
        assert_eq!(
            tokens,
            vec![
                Token::Ident("metrics".into()),
                Token::LBracket,
                Token::Str("r2".into()),
                Token::RBracket,
                Token::Le,
                Token::Num(0.9),
            ]
        );
    }

    #[test]
    fn lex_dotted_and_negative() {
        let tokens = toks("metrics.bias >= -0.1");
        assert_eq!(
            tokens,
            vec![
                Token::Ident("metrics".into()),
                Token::Dot,
                Token::Ident("bias".into()),
                Token::Ge,
                Token::Minus,
                Token::Num(0.1),
            ]
        );
    }

    #[test]
    fn lex_word_operators() {
        let tokens = toks("a and b or not c");
        assert_eq!(
            tokens,
            vec![
                Token::Ident("a".into()),
                Token::AndAnd,
                Token::Ident("b".into()),
                Token::OrOr,
                Token::Not,
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn lex_single_quotes_and_escapes() {
        let tokens = toks(r#"'New\'s' + "tab\t""#);
        assert_eq!(
            tokens,
            vec![
                Token::Str("New's".into()),
                Token::Plus,
                Token::Str("tab\t".into()),
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(lex("a = b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn lex_number_member_boundary() {
        // `5.max` must not parse "5." as a number prefix
        let tokens = toks("5.abs()");
        assert_eq!(tokens[0], Token::Num(5.0));
        assert_eq!(tokens[1], Token::Dot);
    }

    #[test]
    fn lex_unicode_in_strings() {
        let tokens = toks(r#""münchen""#);
        assert_eq!(tokens, vec![Token::Str("münchen".into())]);
    }

    #[test]
    fn spans_cover_source_bytes() {
        let src = r#"metrics.bias <= 0.125"#;
        let tokens = lex(src).unwrap();
        let slices: Vec<&str> = tokens.iter().map(|t| t.span.slice(src).unwrap()).collect();
        assert_eq!(slices, vec!["metrics", ".", "bias", "<=", "0.125"]);
        // Spans are monotonically increasing and within bounds.
        for w in tokens.windows(2) {
            assert!(w[0].span.end <= w[1].span.start);
        }
        assert_eq!(tokens.last().unwrap().span.end as usize, src.len());
    }

    #[test]
    fn string_spans_include_quotes() {
        let src = r#"name == "UberX""#;
        let tokens = lex(src).unwrap();
        assert_eq!(tokens[2].span.slice(src).unwrap(), r#""UberX""#);
    }

    #[test]
    fn span_merge_and_slice() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert!(Span::DUMMY.is_dummy());
    }
}
