//! Lexer for the rule expression language.
//!
//! The paper implements rule conditions with Apache JEXL (§3.7.2). Our
//! from-scratch expression language covers the JEXL surface the paper's
//! rules use (Listings 1–2): identifiers, member access (`metrics.bias`),
//! bracket indexing (`metrics["r2"]`), string/number/bool literals,
//! comparison, boolean, and arithmetic operators, and function calls.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    // operators
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    Comma,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Num(x) => write!(f, "{x}"),
            Token::Bool(b) => write!(f, "{b}"),
            Token::Null => write!(f, "null"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Not => write!(f, "!"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
        }
    }
}

/// Lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an expression source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b'[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            b']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            b'.' => {
                // Could be a leading-dot number like ".5"? Not supported:
                // always member access.
                tokens.push(Token::Dot);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            b'%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "single '=' (use '==')".into(),
                    });
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Not);
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "single '&' (use '&&')".into(),
                    });
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "single '|' (use '||')".into(),
                    });
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                position: start,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(&c) if c == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1).ok_or(LexError {
                                position: i,
                                message: "dangling escape".into(),
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'\'' => '\'',
                                other => {
                                    return Err(LexError {
                                        position: i,
                                        message: format!("bad escape \\{}", *other as char),
                                    })
                                }
                            });
                            i += 2;
                        }
                        Some(&c) => {
                            // Multi-byte UTF-8: copy the full char.
                            let ch_len = utf8_len(c);
                            let end = (i + ch_len).min(bytes.len());
                            s.push_str(std::str::from_utf8(&bytes[i..end]).map_err(|_| {
                                LexError {
                                    position: i,
                                    message: "invalid utf-8 in string".into(),
                                }
                            })?);
                            i = end;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    // Don't swallow a trailing member-access dot like `1.foo`
                    // (numbers may contain at most one dot followed by digits).
                    if bytes[i] == b'.'
                        && !bytes.get(i + 1).map(u8::is_ascii_digit).unwrap_or(false)
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let value: f64 = text.parse().map_err(|_| LexError {
                    position: start,
                    message: format!("bad number: {text}"),
                })?;
                tokens.push(Token::Num(value));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                tokens.push(match word {
                    "true" => Token::Bool(true),
                    "false" => Token::Bool(false),
                    "null" => Token::Null,
                    "and" => Token::AndAnd,
                    "or" => Token::OrOr,
                    "not" => Token::Not,
                    "eq" => Token::EqEq,
                    "ne" => Token::NotEq,
                    "lt" => Token::Lt,
                    "le" => Token::Le,
                    "gt" => Token::Gt,
                    "ge" => Token::Ge,
                    _ => Token::Ident(word.to_owned()),
                });
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_listing1_given() {
        let tokens = lex(r#"modelName == "linear_regression" && model_domain == "UberX""#).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("modelName".into()),
                Token::EqEq,
                Token::Str("linear_regression".into()),
                Token::AndAnd,
                Token::Ident("model_domain".into()),
                Token::EqEq,
                Token::Str("UberX".into()),
            ]
        );
    }

    #[test]
    fn lex_bracket_metric_access() {
        let tokens = lex(r#"metrics["r2"] <= 0.9"#).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("metrics".into()),
                Token::LBracket,
                Token::Str("r2".into()),
                Token::RBracket,
                Token::Le,
                Token::Num(0.9),
            ]
        );
    }

    #[test]
    fn lex_dotted_and_negative() {
        let tokens = lex("metrics.bias >= -0.1").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("metrics".into()),
                Token::Dot,
                Token::Ident("bias".into()),
                Token::Ge,
                Token::Minus,
                Token::Num(0.1),
            ]
        );
    }

    #[test]
    fn lex_word_operators() {
        let tokens = lex("a and b or not c").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("a".into()),
                Token::AndAnd,
                Token::Ident("b".into()),
                Token::OrOr,
                Token::Not,
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn lex_single_quotes_and_escapes() {
        let tokens = lex(r#"'New\'s' + "tab\t""#).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Str("New's".into()),
                Token::Plus,
                Token::Str("tab\t".into()),
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(lex("a = b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn lex_number_member_boundary() {
        // `5.max` must not parse "5." as a number prefix
        let tokens = lex("5.abs()").unwrap();
        assert_eq!(tokens[0], Token::Num(5.0));
        assert_eq!(tokens[1], Token::Dot);
    }

    #[test]
    fn lex_unicode_in_strings() {
        let tokens = lex(r#""münchen""#).unwrap();
        assert_eq!(tokens, vec![Token::Str("münchen".into())]);
    }
}
