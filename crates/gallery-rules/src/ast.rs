//! Abstract syntax tree for the rule expression language.

use std::fmt;

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl BinOp {
    /// Precedence; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// Expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    /// Variable reference, e.g. `modelName`.
    Ident(String),
    /// Member access, e.g. `metrics.bias`.
    Member(Box<Expr>, String),
    /// Bracket indexing, e.g. `metrics["r2"]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call, e.g. `abs(metrics.bias)`.
    Call(String, Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// All identifier roots referenced by this expression (`metrics.bias`
    /// contributes `metrics`). Used by the rule engine to decide which
    /// events can affect a rule.
    pub fn referenced_roots(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_roots(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_roots(&self, out: &mut Vec<String>) {
        match self {
            Expr::Ident(name) => out.push(name.clone()),
            Expr::Member(base, _) => base.collect_roots(out),
            Expr::Index(base, key) => {
                base.collect_roots(out);
                key.collect_roots(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_roots(out);
                }
            }
            Expr::Unary(_, e) => e.collect_roots(out),
            Expr::Binary(_, l, r) => {
                l.collect_roots(out);
                r.collect_roots(out);
            }
            _ => {}
        }
    }

    /// Metric names referenced via `metrics.<name>` or `metrics["<name>"]`.
    /// Drives event-based rule triggering (§3.7.2: "updating any metadata
    /// or metrics specific in a registered rule").
    pub fn referenced_metrics(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_metrics(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_metrics(&self, out: &mut Vec<String>) {
        match self {
            Expr::Member(base, field) => {
                if matches!(&**base, Expr::Ident(root) if root == "metrics") {
                    out.push(field.clone());
                }
                base.collect_metrics(out);
            }
            Expr::Index(base, key) => {
                if let (Expr::Ident(root), Expr::Str(name)) = (&**base, &**key) {
                    if root == "metrics" {
                        out.push(name.clone());
                    }
                }
                base.collect_metrics(out);
                key.collect_metrics(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_metrics(out);
                }
            }
            Expr::Unary(_, e) => e.collect_metrics(out),
            Expr::Binary(_, l, r) => {
                l.collect_metrics(out);
                r.collect_metrics(out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn referenced_roots() {
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Member(
                Box::new(Expr::Ident("metrics".into())),
                "bias".into(),
            )),
            Box::new(Expr::Ident("modelName".into())),
        );
        assert_eq!(
            e.referenced_roots(),
            vec!["metrics".to_string(), "modelName".to_string()]
        );
    }

    #[test]
    fn referenced_metrics_dot_and_bracket() {
        let e = Expr::Binary(
            BinOp::Or,
            Box::new(Expr::Member(
                Box::new(Expr::Ident("metrics".into())),
                "bias".into(),
            )),
            Box::new(Expr::Index(
                Box::new(Expr::Ident("metrics".into())),
                Box::new(Expr::Str("r2".into())),
            )),
        );
        assert_eq!(
            e.referenced_metrics(),
            vec!["bias".to_string(), "r2".to_string()]
        );
    }
}
