//! Abstract syntax tree for the rule expression language.
//!
//! Every [`Expr`] node carries a byte-range [`Span`] into the source text
//! it was parsed from, so evaluation errors and lint diagnostics can point
//! at the offending subexpression. Spans are metadata: `PartialEq` on
//! expressions compares structure only, which keeps golden-AST tests and
//! the `parse → print → parse` round-trip span-insensitive.

use crate::token::Span;
use std::fmt;

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl BinOp {
    /// Precedence; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
        }
    }

    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// Expression node: structure ([`ExprKind`]) plus source location.
#[derive(Debug, Clone)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

/// The structural part of an expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    /// Variable reference, e.g. `modelName`.
    Ident(String),
    /// Member access, e.g. `metrics.bias`.
    Member(Box<Expr>, String),
    /// Bracket indexing, e.g. `metrics["r2"]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call, e.g. `abs(metrics.bias)`.
    Call(String, Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Spans are metadata, not structure.
impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl From<ExprKind> for Expr {
    fn from(kind: ExprKind) -> Self {
        Expr {
            kind,
            span: Span::DUMMY,
        }
    }
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// All identifier roots referenced by this expression (`metrics.bias`
    /// contributes `metrics`). Used by the rule engine to decide which
    /// events can affect a rule.
    pub fn referenced_roots(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_roots(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_roots(&self, out: &mut Vec<String>) {
        match &self.kind {
            ExprKind::Ident(name) => out.push(name.clone()),
            ExprKind::Member(base, _) => base.collect_roots(out),
            ExprKind::Index(base, key) => {
                base.collect_roots(out);
                key.collect_roots(out);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    a.collect_roots(out);
                }
            }
            ExprKind::Unary(_, e) => e.collect_roots(out),
            ExprKind::Binary(_, l, r) => {
                l.collect_roots(out);
                r.collect_roots(out);
            }
            _ => {}
        }
    }

    /// Metric names referenced via `metrics.<name>` or `metrics["<name>"]`.
    /// Drives event-based rule triggering (§3.7.2: "updating any metadata
    /// or metrics specific in a registered rule").
    pub fn referenced_metrics(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_metrics(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_metrics(&self, out: &mut Vec<String>) {
        match &self.kind {
            ExprKind::Member(base, field) => {
                if matches!(&base.kind, ExprKind::Ident(root) if root == "metrics") {
                    out.push(field.clone());
                }
                base.collect_metrics(out);
            }
            ExprKind::Index(base, key) => {
                if let (ExprKind::Ident(root), ExprKind::Str(name)) = (&base.kind, &key.kind) {
                    if root == "metrics" {
                        out.push(name.clone());
                    }
                }
                base.collect_metrics(out);
                key.collect_metrics(out);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    a.collect_metrics(out);
                }
            }
            ExprKind::Unary(_, e) => e.collect_metrics(out),
            ExprKind::Binary(_, l, r) => {
                l.collect_metrics(out);
                r.collect_metrics(out);
            }
            _ => {}
        }
    }

    /// Binding strength for the pretty-printer: binary nodes use their
    /// operator precedence (1–6), unary binds tighter (7), postfix chains
    /// and atoms tightest (8).
    fn print_precedence(&self) -> u8 {
        match &self.kind {
            ExprKind::Binary(op, _, _) => op.precedence(),
            ExprKind::Unary(..) => 7,
            _ => 8,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        if self.print_precedence() < min_prec {
            write!(f, "(")?;
            write!(f, "{self}")?;
            write!(f, ")")
        } else {
            write!(f, "{self}")
        }
    }
}

fn escape_str(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '\\' => write!(f, "\\\\")?,
            '"' => write!(f, "\\\"")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            other => write!(f, "{other}")?,
        }
    }
    write!(f, "\"")
}

/// Pretty-printer: emits source text that re-parses to the same AST
/// (verified by the `parse → print → parse` property test). Parentheses
/// are inserted only where precedence or associativity requires them.
impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Null => write!(f, "null"),
            ExprKind::Bool(b) => write!(f, "{b}"),
            ExprKind::Num(x) => write!(f, "{x}"),
            ExprKind::Str(s) => escape_str(s, f),
            ExprKind::Ident(name) => write!(f, "{name}"),
            ExprKind::Member(base, field) => {
                base.fmt_with_parens(f, 8)?;
                write!(f, ".{field}")
            }
            ExprKind::Index(base, key) => {
                base.fmt_with_parens(f, 8)?;
                write!(f, "[{key}]")
            }
            ExprKind::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ExprKind::Unary(op, e) => {
                match op {
                    UnOp::Not => write!(f, "!")?,
                    UnOp::Neg => write!(f, "-")?,
                }
                // Unary binds tighter than any binary operator; nested
                // unaries print without parens (`--x`, `!-x` re-parse).
                e.fmt_with_parens(f, 7)
            }
            ExprKind::Binary(op, l, r) => {
                let prec = op.precedence();
                // Left-associative: the right child needs parens at equal
                // precedence, the left does not.
                l.fmt_with_parens(f, prec)?;
                write!(f, " {op} ")?;
                r.fmt_with_parens(f, prec + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(kind: ExprKind) -> Box<Expr> {
        Box::new(Expr::from(kind))
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn referenced_roots() {
        let e = Expr::from(ExprKind::Binary(
            BinOp::And,
            b(ExprKind::Member(
                b(ExprKind::Ident("metrics".into())),
                "bias".into(),
            )),
            b(ExprKind::Ident("modelName".into())),
        ));
        assert_eq!(
            e.referenced_roots(),
            vec!["metrics".to_string(), "modelName".to_string()]
        );
    }

    #[test]
    fn referenced_metrics_dot_and_bracket() {
        let e = Expr::from(ExprKind::Binary(
            BinOp::Or,
            b(ExprKind::Member(
                b(ExprKind::Ident("metrics".into())),
                "bias".into(),
            )),
            b(ExprKind::Index(
                b(ExprKind::Ident("metrics".into())),
                b(ExprKind::Str("r2".into())),
            )),
        ));
        assert_eq!(
            e.referenced_metrics(),
            vec!["bias".to_string(), "r2".to_string()]
        );
    }

    #[test]
    fn equality_ignores_spans() {
        let a = Expr::new(ExprKind::Num(1.0), Span::new(0, 1));
        let b = Expr::new(ExprKind::Num(1.0), Span::new(5, 6));
        assert_eq!(a, b);
    }

    #[test]
    fn printer_minimal_parens() {
        let parse = crate::parser::parse;
        for (src, printed) in [
            ("a || b && c", "a || b && c"),
            ("(a || b) && c", "(a || b) && c"),
            ("1 + 2 * 3 < 10", "1 + 2 * 3 < 10"),
            ("(1 + 2) * 3", "(1 + 2) * 3"),
            ("10 - 3 - 2", "10 - 3 - 2"),
            ("10 - (3 - 2)", "10 - (3 - 2)"),
            ("!(a || b)", "!(a || b)"),
            ("!a", "!a"),
            ("-a.b", "-a.b"),
            (r#"metrics["r2"] <= 0.9"#, "metrics[\"r2\"] <= 0.9"),
            ("max(metrics.mae, 0.5)", "max(metrics.mae, 0.5)"),
            (r#"name == "Uber\"X""#, "name == \"Uber\\\"X\""),
        ] {
            let e = parse(src).unwrap();
            assert_eq!(e.to_string(), printed, "printing {src}");
            assert_eq!(parse(&e.to_string()).unwrap(), e, "round-trip {src}");
        }
    }
}
