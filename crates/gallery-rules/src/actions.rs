//! Callback actions (§3.7.1).
//!
//! "We expect users to define callback functions that will be triggered by
//! the rule engine" — e.g. a deployment action that flips the served model
//! version. "There are also a default set of common actions that users can
//! leverage or extend, like sending an email or alerting."

use crate::error::EngineError;
use gallery_core::{InstanceId, ModelId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything an action callback learns about why it fired.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionInvocation {
    pub rule_id: String,
    pub action: String,
    pub instance_id: InstanceId,
    pub model_id: ModelId,
    pub environment: String,
}

/// An action callback.
pub type ActionFn = Arc<dyn Fn(&ActionInvocation) -> Result<(), EngineError> + Send + Sync>;

/// Named action registry shared by the rule engine and its users.
#[derive(Clone, Default)]
pub struct ActionRegistry {
    actions: Arc<RwLock<HashMap<String, ActionFn>>>,
}

impl ActionRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry preloaded with the default actions: `log` and `alert`
    /// (recording into the returned [`ActionLog`]) and `noop`.
    pub fn with_defaults() -> (Self, ActionLog) {
        let registry = Self::new();
        let log = ActionLog::default();
        {
            let log = log.clone();
            registry.register("log", move |inv| {
                log.record("log", inv);
                Ok(())
            });
        }
        {
            let log = log.clone();
            registry.register("alert", move |inv| {
                log.record("alert", inv);
                Ok(())
            });
        }
        registry.register("noop", |_| Ok(()));
        (registry, log)
    }

    pub fn register(
        &self,
        name: impl Into<String>,
        f: impl Fn(&ActionInvocation) -> Result<(), EngineError> + Send + Sync + 'static,
    ) {
        self.actions.write().insert(name.into(), Arc::new(f));
    }

    pub fn contains(&self, name: &str) -> bool {
        self.actions.read().contains_key(name)
    }

    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.actions.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Invoke a named action.
    pub fn invoke(&self, invocation: &ActionInvocation) -> Result<(), EngineError> {
        let f = {
            let actions = self.actions.read();
            actions
                .get(&invocation.action)
                .cloned()
                .ok_or_else(|| EngineError::UnknownAction(invocation.action.clone()))?
        };
        f(invocation)
    }
}

impl std::fmt::Debug for ActionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionRegistry")
            .field("actions", &self.names())
            .finish()
    }
}

/// Shared record of fired default actions (emails/alerts in the paper).
#[derive(Debug, Clone, Default)]
pub struct ActionLog {
    entries: Arc<Mutex<Vec<(String, ActionInvocation)>>>,
}

impl ActionLog {
    pub fn record(&self, kind: &str, invocation: &ActionInvocation) {
        self.entries
            .lock()
            .push((kind.to_owned(), invocation.clone()));
    }

    pub fn entries(&self) -> Vec<(String, ActionInvocation)> {
        self.entries.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invocation(action: &str) -> ActionInvocation {
        ActionInvocation {
            rule_id: "r1".into(),
            action: action.into(),
            instance_id: InstanceId::from("i1"),
            model_id: ModelId::from("m1"),
            environment: "production".into(),
        }
    }

    #[test]
    fn register_and_invoke() {
        let registry = ActionRegistry::new();
        let fired = Arc::new(Mutex::new(0));
        {
            let fired = Arc::clone(&fired);
            registry.register("deploy", move |_| {
                *fired.lock() += 1;
                Ok(())
            });
        }
        registry.invoke(&invocation("deploy")).unwrap();
        registry.invoke(&invocation("deploy")).unwrap();
        assert_eq!(*fired.lock(), 2);
    }

    #[test]
    fn unknown_action_errors() {
        let registry = ActionRegistry::new();
        assert!(matches!(
            registry.invoke(&invocation("ghost")),
            Err(EngineError::UnknownAction(_))
        ));
    }

    #[test]
    fn defaults_log_and_alert() {
        let (registry, log) = ActionRegistry::with_defaults();
        assert!(registry.contains("log"));
        assert!(registry.contains("alert"));
        assert!(registry.contains("noop"));
        registry.invoke(&invocation("alert")).unwrap();
        registry.invoke(&invocation("noop")).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].0, "alert");
    }

    #[test]
    fn action_error_propagates() {
        let registry = ActionRegistry::new();
        registry.register("fails", |_| Err(EngineError::ActionFailed("boom".into())));
        assert!(matches!(
            registry.invoke(&invocation("fails")),
            Err(EngineError::ActionFailed(_))
        ));
    }
}
