//! Bridge between the rule language and the telemetry alert engine.
//!
//! The paper's rule engine (§3.7) reacts to *stored* metric updates; the
//! alert engine in `gallery-telemetry` watches *live* monitor gauges. This
//! module lets the two share one vocabulary:
//!
//! - [`compile_condition`] turns a JEXL-like expression such as
//!   `gallery_monitor_drift_score > 3.0 && gallery_monitor_window_events >= 20`
//!   into an [`AlertCondition`] the engine evaluates each tick. Identifiers
//!   name metric families in the telemetry registry (`metrics.<name>` /
//!   `metrics["name"]` also work); a family that has never been minted
//!   binds to `Null`, and — per the language's lenient comparison rules —
//!   a comparison against `Null` is false, so a rule over a metric that
//!   does not exist yet simply does not fire.
//! - [`register_lifecycle_actions`] wires a [`Gallery`] into an
//!   [`AlertEngine`] as named action hooks, so a firing rule can deprecate
//!   the breaching instance or roll the production pointer back along the
//!   §3.4 deployment lineage. The target is read from the rule's
//!   annotations (`instance`, `model`, `environment`), which also travel
//!   on every [`AlertTransition`] for audit.
//!
//! Monitor gauges publish real-valued signals as integers scaled by
//! [`gallery_core::monitor::SCALE`]; the compiler divides those families
//! back down when binding them, so rule authors write thresholds in
//! natural units (`drift_score > 3.0`, `feature_completeness < 0.9`).

use crate::analyze::{analyze_condition, Finding, LintReport};
use crate::ast::Expr;
use crate::eval::{eval, EvalContext};
use crate::parser::parse;
use gallery_core::monitor::SCALE;
use gallery_core::registry::Gallery;
use gallery_core::InstanceId;
use gallery_telemetry::{AlertCondition, AlertEngine, Registry};
use std::sync::Arc;

/// Families published as fixed-point integers (value × [`SCALE`]) that the
/// compiler rebinds in natural units.
const SCALED_FAMILIES: &[&str] = &[
    "gallery_monitor_drift_score",
    "gallery_monitor_feature_completeness",
];

fn descale(name: &str, value: f64) -> f64 {
    if SCALED_FAMILIES.contains(&name) {
        value / SCALE
    } else {
        value
    }
}

/// Compile a rule-language expression into an alert condition.
///
/// Root identifiers (and `metrics.<name>` members) are bound to the
/// summed value of the matching metric family at evaluation time.
///
/// The source is first run through the static analyzer against the
/// alert-condition schema; error-severity findings (syntax errors,
/// non-boolean conditions, family-name typos, impossible thresholds)
/// reject it. Warnings (unknown custom families, suspicious scales) are
/// carried in the returned report's renderable findings but do not block.
pub fn compile_condition(src: &str) -> Result<AlertCondition, LintReport> {
    let report = analyze_condition(src);
    if report.has_errors() {
        return Err(report);
    }
    let expr = match parse(src) {
        Ok(e) => e,
        // Unreachable: a parse failure is an error-severity finding above.
        Err(e) => {
            return Err(LintReport {
                findings: vec![Finding {
                    origin: "condition".to_owned(),
                    source: src.to_owned(),
                    diag: crate::diag::Diagnostic::error(e.code, e.span, e.message),
                }],
            })
        }
    };
    let roots = expr.referenced_roots();
    let metric_members = expr.referenced_metrics();
    let describe = src.trim().to_owned();
    let f = Arc::new(move |registry: &Registry| evaluate(&expr, &roots, &metric_members, registry));
    Ok(AlertCondition::Predicate { describe, f })
}

fn evaluate(
    expr: &Expr,
    roots: &[String],
    metric_members: &[String],
    registry: &Registry,
) -> Option<bool> {
    let mut ctx = EvalContext::new();
    for root in roots {
        if root == "metrics" {
            for name in metric_members {
                if let Some(v) = registry.family_value(name) {
                    ctx.set_metric(name.clone(), descale(name, v));
                }
            }
        } else if let Some(v) = registry.family_value(root) {
            ctx.set(root.clone(), descale(root, v));
        }
    }
    eval(expr, &ctx).ok().and_then(|v| v.as_bool())
}

/// Action name for "deprecate the instance named by the rule's `instance`
/// annotation".
pub const ACTION_DEPRECATE_INSTANCE: &str = "deprecate_instance";
/// Action name for "roll the production pointer of the rule's `model` /
/// `environment` annotations back to the prior distinct instance".
pub const ACTION_ROLLBACK_PRODUCTION: &str = "rollback_production";

/// Register the Gallery lifecycle actions on an alert engine. A rule opts
/// in with `.action(ACTION_DEPRECATE_INSTANCE)` (needs an `instance`
/// annotation) or `.action(ACTION_ROLLBACK_PRODUCTION)` (needs `model`,
/// and optionally `environment`, defaulting to `production`).
pub fn register_lifecycle_actions(engine: &AlertEngine, gallery: Arc<Gallery>) {
    {
        let gallery = Arc::clone(&gallery);
        engine.register_action(
            ACTION_DEPRECATE_INSTANCE,
            Arc::new(move |t| {
                let instance = t
                    .annotation("instance")
                    .ok_or_else(|| "missing `instance` annotation".to_owned())?;
                gallery
                    .deprecate_instance(&InstanceId::from(instance))
                    .map_err(|e| e.to_string())
            }),
        );
    }
    engine.register_action(
        ACTION_ROLLBACK_PRODUCTION,
        Arc::new(move |t| {
            let model = t
                .annotation("model")
                .ok_or_else(|| "missing `model` annotation".to_owned())?;
            let environment = t.annotation("environment").unwrap_or("production");
            gallery
                .rollback_production(&model.into(), environment)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gallery_core::clock::ManualClock;
    use gallery_core::{InstanceSpec, ModelSpec};
    use gallery_telemetry::{AlertRule, AlertState, Telemetry};

    fn breaches(cond: &AlertCondition, registry: &Registry) -> Option<bool> {
        match cond {
            AlertCondition::Predicate { f, .. } => f(registry),
            _ => panic!("expected predicate"),
        }
    }

    #[test]
    fn condition_binds_families_and_descales_monitor_gauges() {
        let t = Telemetry::new();
        let r = t.registry();
        let cond =
            compile_condition("gallery_monitor_drift_score > 3.0 && metrics.errs_total >= 2")
                .unwrap();
        // Nothing minted: comparisons against Null are false, not errors.
        assert_eq!(breaches(&cond, r), Some(false));
        r.gauge("gallery_monitor_drift_score", &[("instance", "i1")])
            .set((4.5 * SCALE) as i64);
        assert_eq!(breaches(&cond, r), Some(false), "errs_total still unbound");
        r.counter("errs_total", &[]).add(2);
        assert_eq!(breaches(&cond, r), Some(true));
    }

    #[test]
    fn non_boolean_expression_rejected_at_compile_time() {
        let report = compile_condition("1 + 1").unwrap_err();
        assert!(report
            .codes()
            .contains(&crate::diag::codes::NON_BOOLEAN_CONDITION));
    }

    #[test]
    fn bad_syntax_is_a_compile_error() {
        assert!(compile_condition("drift >").is_err());
    }

    #[test]
    fn firing_rule_rolls_production_back() {
        let t = Telemetry::new();
        let g = Arc::new(Gallery::in_memory_with_clock(Arc::new(ManualClock::new(
            1_000,
        ))));
        let m = g
            .create_model(ModelSpec::new("proj", "demand").owner("fc"))
            .unwrap();
        let i1 = g
            .upload_instance(&m.id, InstanceSpec::new(), Bytes::from_static(b"1"))
            .unwrap();
        let i2 = g
            .upload_instance(&m.id, InstanceSpec::new(), Bytes::from_static(b"2"))
            .unwrap();
        g.deploy(&m.id, &i1.id, "production").unwrap();
        g.deploy(&m.id, &i2.id, "production").unwrap();

        let engine = AlertEngine::new(&t);
        register_lifecycle_actions(&engine, Arc::clone(&g));
        engine.add_rule(
            AlertRule::new(
                "drift-rollback",
                compile_condition("gallery_monitor_drift_score > 3.0").unwrap(),
            )
            .annotate("model", m.id.as_str())
            .annotate("environment", "production")
            .action(ACTION_ROLLBACK_PRODUCTION),
        );

        assert!(engine.evaluate().is_empty(), "clean registry: no firing");
        t.registry()
            .gauge("gallery_monitor_drift_score", &[("instance", "i2")])
            .set((8.0 * SCALE) as i64);
        let transitions = engine.evaluate();
        assert!(transitions.iter().any(|tr| tr.to == AlertState::Firing));
        assert_eq!(
            g.deployed_instance(&m.id, "production").unwrap(),
            Some(i1.id),
            "firing alert rolled the production pointer back"
        );
    }
}
