//! Typed diagnostics for the rule language.
//!
//! Every diagnostic carries a stable machine-readable `code` (catalogued in
//! [`codes`] and documented in `docs/rule-language.md` — a CI test keeps the
//! two in sync), a severity, a byte-range [`Span`] into the analyzed source,
//! a human message, and an optional help note. [`render`] produces a
//! rustc-style annotated snippet.

use crate::token::Span;
use std::fmt;

/// Stable diagnostic codes.
///
/// Numbering groups: `RL00xx` syntax/document, `RL01xx` name resolution,
/// `RL02xx` types, `RL03xx` abstract interpretation (value analysis),
/// `RL04xx` rule-set analysis.
pub mod codes {
    /// Expression fails to lex or parse.
    pub const SYNTAX: &str = "RL0001";
    /// Expression nesting exceeds the parser/evaluator depth limit.
    pub const NESTING: &str = "RL0002";
    /// Rule document is not valid rule JSON (missing clauses, bad shape).
    pub const BAD_DOCUMENT: &str = "RL0003";

    /// Identifier does not resolve against the context schema (open world:
    /// warning, since contexts may carry user-defined fields).
    pub const UNKNOWN_IDENT: &str = "RL0101";
    /// Identifier is within edit distance of a declared name — almost
    /// certainly a typo, so an error.
    pub const IDENT_TYPO: &str = "RL0102";
    /// Call to a function the evaluator does not provide.
    pub const UNKNOWN_FUNCTION: &str = "RL0103";
    /// Known function called with the wrong number of arguments.
    pub const BAD_ARITY: &str = "RL0104";
    /// Member access on a value that is not an object.
    pub const MEMBER_OF_SCALAR: &str = "RL0105";

    /// Operator applied to operands of incompatible types.
    pub const TYPE_MISMATCH: &str = "RL0201";
    /// Rule condition's type is known and is not boolean.
    pub const NON_BOOLEAN_CONDITION: &str = "RL0202";
    /// Bracket index key is known to not be a string.
    pub const NON_STRING_KEY: &str = "RL0203";

    /// Subexpression is always true (condition never filters).
    pub const ALWAYS_TRUE: &str = "RL0301";
    /// Subexpression is always false (rule can never fire).
    pub const ALWAYS_FALSE: &str = "RL0302";
    /// Comparison against a constant outside the signal's declared range.
    pub const OUT_OF_RANGE: &str = "RL0303";
    /// Threshold magnitude suggests a raw (un-descaled) gauge value was
    /// intended where the binding is already descaled, or vice versa.
    pub const SUSPICIOUS_SCALE: &str = "RL0304";
    /// Divisor's value interval contains zero.
    pub const DIV_BY_ZERO: &str = "RL0305";
    /// Conjunction of comparisons on one variable is unsatisfiable.
    pub const CONTRADICTORY_BOUNDS: &str = "RL0306";
    /// Comparison is implied by other comparisons in the same conjunction.
    pub const REDUNDANT_COMPARISON: &str = "RL0307";

    /// An earlier rule's condition implies a later rule's condition.
    pub const SHADOWED_RULE: &str = "RL0401";
    /// Two rules with overlapping triggers request opposing actions.
    pub const CONTRADICTORY_ACTIONS: &str = "RL0402";
    /// GIVEN and WHEN clauses are jointly unsatisfiable.
    pub const UNREACHABLE_RULE: &str = "RL0403";
    /// Two rules in one set share a uuid.
    pub const DUPLICATE_RULE_ID: &str = "RL0404";

    /// Every code, for the docs/fixture sync test.
    pub const ALL: &[&str] = &[
        SYNTAX,
        NESTING,
        BAD_DOCUMENT,
        UNKNOWN_IDENT,
        IDENT_TYPO,
        UNKNOWN_FUNCTION,
        BAD_ARITY,
        MEMBER_OF_SCALAR,
        TYPE_MISMATCH,
        NON_BOOLEAN_CONDITION,
        NON_STRING_KEY,
        ALWAYS_TRUE,
        ALWAYS_FALSE,
        OUT_OF_RANGE,
        SUSPICIOUS_SCALE,
        DIV_BY_ZERO,
        CONTRADICTORY_BOUNDS,
        REDUNDANT_COMPARISON,
        SHADOWED_RULE,
        CONTRADICTORY_ACTIONS,
        UNREACHABLE_RULE,
        DUPLICATE_RULE_ID,
    ];
}

/// Diagnostic severity. `Error` diagnostics reject a rule at registration;
/// `Warning` diagnostics are reported but do not block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding against a single source expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    pub span: Span,
    pub message: String,
    pub help: Option<String>,
}

impl Diagnostic {
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            help: None,
        }
    }

    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            help: None,
        }
    }

    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Render this diagnostic against its source text, rustc-style:
    ///
    /// ```text
    /// error[RL0303]: completeness can never exceed 1
    ///   --> rule 42 WHEN
    ///    |
    ///    | completeness > 1.2
    ///    |                ^^^ declared range is [0, 1]
    ///    = help: gauge values are already descaled
    /// ```
    pub fn render(&self, origin: &str, source: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        out.push_str(&format!("  --> {origin}\n"));
        if !self.span.is_dummy() && (self.span.end as usize) <= source.len() {
            // Locate the line containing the span start.
            let start = self.span.start as usize;
            let line_start = source[..start.min(source.len())]
                .rfind('\n')
                .map(|i| i + 1)
                .unwrap_or(0);
            let line_end = source[line_start..]
                .find('\n')
                .map(|i| line_start + i)
                .unwrap_or(source.len());
            let line = &source[line_start..line_end];
            let col = start - line_start;
            let width = ((self.span.end as usize).min(line_end) - start).max(1);
            out.push_str("   |\n");
            out.push_str(&format!("   | {line}\n"));
            out.push_str(&format!("   | {}{}\n", " ".repeat(col), "^".repeat(width)));
        } else if !source.is_empty() {
            out.push_str("   |\n");
            out.push_str(&format!(
                "   | {}\n",
                source.lines().next().unwrap_or(source)
            ));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("   = help: {help}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.span.is_dummy() {
            write!(f, " (at {})", self.span)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for code in codes::ALL {
            assert!(code.starts_with("RL"), "{code}");
            assert_eq!(code.len(), 6, "{code}");
            assert!(code[2..].chars().all(|c| c.is_ascii_digit()), "{code}");
            assert!(seen.insert(*code), "duplicate code {code}");
        }
    }

    #[test]
    fn render_underlines_the_span() {
        let src = "completeness > 1.2";
        let d = Diagnostic::error(codes::OUT_OF_RANGE, Span::new(15, 18), "out of range")
            .with_help("declared range is [0, 1]");
        let rendered = d.render("WHEN", src);
        assert!(rendered.contains("error[RL0303]: out of range"));
        assert!(rendered.contains("--> WHEN"));
        assert!(rendered.contains("completeness > 1.2"));
        assert!(rendered.contains("               ^^^"));
        assert!(rendered.contains("= help: declared range is [0, 1]"));
    }

    #[test]
    fn render_multiline_source_points_at_right_line() {
        let src = "a == 1\n&& completeness > 1.2";
        // span of "1.2" on the second line
        let start = src.find("1.2").unwrap();
        let d = Diagnostic::warning(
            codes::OUT_OF_RANGE,
            Span::new(start, start + 3),
            "out of range",
        );
        let rendered = d.render("WHEN", src);
        assert!(rendered.contains("| && completeness > 1.2"));
        assert!(!rendered.contains("| a == 1"));
    }

    #[test]
    fn render_with_dummy_span_omits_underline() {
        let d = Diagnostic::error(codes::BAD_DOCUMENT, Span::DUMMY, "not a rule");
        let rendered = d.render("rule.json", "{}");
        assert!(rendered.contains("error[RL0003]"));
        assert!(!rendered.contains('^'));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
    }
}
