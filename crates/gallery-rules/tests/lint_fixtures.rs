//! Fixture corpus for the rule-language static analyzer: at least one
//! minimal rule or expression per diagnostic code, asserting the exact
//! code and source span, plus a clean production-like rule set asserting
//! zero findings.
//!
//! `tests/diagnostic_catalog.rs` (workspace level) cross-checks that every
//! code in `gallery_rules::codes::ALL` appears both here and in
//! `docs/rule-language.md`, so adding a diagnostic without a fixture and a
//! doc entry fails CI.

#![allow(clippy::disallowed_methods)]

use gallery_rules::{
    analyze_condition, analyze_expr_src, analyze_rule, analyze_rule_json, analyze_rule_set, codes,
    ContextSchema, Finding, RuleDoc, Severity,
};

fn lint_when(src: &str) -> Vec<Finding> {
    analyze_expr_src("WHEN", src, &ContextSchema::instance_rules())
}

fn action_rule(uuid: &str, given: &str, when: &str, actions: &[&str]) -> RuleDoc {
    serde_json::from_str(&format!(
        r#"{{
            "team": "forecasting",
            "uuid": {uuid:?},
            "rule": {{
                "GIVEN": {given:?},
                "WHEN": {when:?},
                "ENVIRONMENT": "production",
                "CALLBACK_ACTIONS": {actions:?}
            }}
        }}"#
    ))
    .unwrap()
}

// --- RL00xx: syntax and document shape -----------------------------------

#[test]
fn rl0001_syntax_error() {
    let src = "metrics.bias <=";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0001");
    assert_eq!(findings[0].diag.code, codes::SYNTAX);
    assert_eq!(findings[0].diag.severity, Severity::Error);
}

#[test]
fn rl0002_nesting_too_deep() {
    let src = format!("{}true{}", "(".repeat(300), ")".repeat(300));
    let findings = lint_when(&src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0002");
    assert_eq!(findings[0].diag.code, codes::NESTING);
}

#[test]
fn rl0003_bad_document() {
    let report = analyze_rule_json("{ not json");
    assert_eq!(report.codes(), vec!["RL0003"]);
    assert_eq!(report.codes(), vec![codes::BAD_DOCUMENT]);
    // Shape violations use the same code: a rule with both kinds.
    let mut doc = gallery_rules::rule::listing1_selection_rule();
    doc.rule.callback_actions = vec!["x".into()];
    assert!(analyze_rule(&doc).codes().contains(&codes::BAD_DOCUMENT));
}

// --- RL01xx: name resolution ---------------------------------------------

#[test]
fn rl0101_unknown_identifier_warns() {
    let src = "custom_business_tag == \"x\"";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0101");
    assert_eq!(findings[0].diag.code, codes::UNKNOWN_IDENT);
    assert_eq!(findings[0].diag.severity, Severity::Warning);
    assert_eq!(
        findings[0].diag.span.slice(src),
        Some("custom_business_tag")
    );
}

#[test]
fn rl0102_identifier_typo_is_an_error() {
    let src = "modelNmae == \"Random Forest\"";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0102");
    assert_eq!(findings[0].diag.code, codes::IDENT_TYPO);
    assert_eq!(findings[0].diag.severity, Severity::Error);
    assert_eq!(findings[0].diag.span.slice(src), Some("modelNmae"));
    assert!(findings[0]
        .diag
        .help
        .as_deref()
        .unwrap()
        .contains("modelName"));
    // Metric-name typos resolve against the metric catalog.
    let src = "metrics.acuracy > 0.9";
    let findings = lint_when(src);
    assert_eq!(findings[0].diag.code, codes::IDENT_TYPO);
    assert!(findings[0]
        .diag
        .help
        .as_deref()
        .unwrap()
        .contains("accuracy"));
}

#[test]
fn rl0103_unknown_function() {
    let src = "abss(metrics.bias) < 1";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0103");
    assert_eq!(findings[0].diag.code, codes::UNKNOWN_FUNCTION);
    assert_eq!(findings[0].diag.span.slice(src), Some("abss(metrics.bias)"));
}

#[test]
fn rl0104_bad_arity() {
    let src = "abs(1, 2) > 0";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0104");
    assert_eq!(findings[0].diag.code, codes::BAD_ARITY);
    assert_eq!(findings[0].diag.span.slice(src), Some("abs(1, 2)"));
}

#[test]
fn rl0105_member_of_scalar() {
    let src = "modelName.length > 3";
    let findings = lint_when(src);
    assert!(findings.iter().any(|f| f.diag.code == "RL0105"));
    let f = findings
        .iter()
        .find(|f| f.diag.code == codes::MEMBER_OF_SCALAR)
        .unwrap();
    assert_eq!(f.diag.severity, Severity::Warning);
    assert_eq!(f.diag.span.slice(src), Some("modelName.length"));
}

// --- RL02xx: types --------------------------------------------------------

#[test]
fn rl0201_type_mismatch() {
    let src = "metrics[\"r2\"] <= \"0.9\"";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0201");
    assert_eq!(findings[0].diag.code, codes::TYPE_MISMATCH);
    assert_eq!(findings[0].diag.severity, Severity::Error);
    assert_eq!(findings[0].diag.span.slice(src), Some(src));
}

#[test]
fn rl0202_non_boolean_condition() {
    let src = "1 + 1";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0202");
    assert_eq!(findings[0].diag.code, codes::NON_BOOLEAN_CONDITION);
    assert_eq!(findings[0].diag.severity, Severity::Error);
}

#[test]
fn rl0203_non_string_key() {
    let src = "metrics[5] > 1";
    let findings = lint_when(src);
    assert_eq!(findings[0].diag.code, "RL0203");
    assert_eq!(findings[0].diag.code, codes::NON_STRING_KEY);
    assert_eq!(findings[0].diag.span.slice(src), Some("5"));
}

// --- RL03xx: abstract interpretation -------------------------------------

#[test]
fn rl0301_always_true() {
    let src = "1 < 2";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0301");
    assert_eq!(findings[0].diag.code, codes::ALWAYS_TRUE);
    assert_eq!(findings[0].diag.severity, Severity::Warning);
    assert_eq!(findings[0].diag.span.slice(src), Some(src));
}

#[test]
fn rl0302_always_false_at_root_is_an_error() {
    let src = "1 > 2";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0302");
    assert_eq!(findings[0].diag.code, codes::ALWAYS_FALSE);
    assert_eq!(findings[0].diag.severity, Severity::Error);
    // Inside a disjunction it is only a dead branch.
    let src = "metrics.bias > 0.1 || 1 > 2";
    let f = lint_when(src);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].diag.code, codes::ALWAYS_FALSE);
    assert_eq!(f[0].diag.severity, Severity::Warning);
    assert_eq!(f[0].diag.span.slice(src), Some("1 > 2"));
}

#[test]
fn rl0303_out_of_declared_range() {
    let src = "metrics.auc > 1.5";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0303");
    assert_eq!(findings[0].diag.code, codes::OUT_OF_RANGE);
    assert_eq!(findings[0].diag.severity, Severity::Error);
    assert_eq!(findings[0].diag.span.slice(src), Some(src));
    // Vacuously-true range comparisons warn instead of erroring.
    let src = "metrics.mae >= 0";
    let f = lint_when(src);
    assert_eq!(f[0].diag.code, codes::OUT_OF_RANGE);
    assert_eq!(f[0].diag.severity, Severity::Warning);
}

#[test]
fn rl0304_suspicious_scale() {
    let src = "gallery_monitor_drift_score > 3000000";
    let report = analyze_condition(src);
    assert_eq!(report.codes(), vec!["RL0304"]);
    assert_eq!(report.codes(), vec![codes::SUSPICIOUS_SCALE]);
    let f = &report.findings[0];
    assert_eq!(f.diag.severity, Severity::Warning);
    assert_eq!(f.diag.span.slice(src), Some(src));
    assert!(f.diag.help.as_deref().unwrap().contains('3'));
}

#[test]
fn rl0305_division_by_possibly_zero() {
    let src = "metrics.rmse / metrics.mae > 2";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0305");
    assert_eq!(findings[0].diag.code, codes::DIV_BY_ZERO);
    assert_eq!(findings[0].diag.severity, Severity::Warning);
    assert_eq!(findings[0].diag.span.slice(src), Some("metrics.mae"));
}

#[test]
fn rl0306_contradictory_bounds() {
    let src = "metrics.bias > 0.5 && metrics.bias < 0.1";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0306");
    assert_eq!(findings[0].diag.code, codes::CONTRADICTORY_BOUNDS);
    assert_eq!(findings[0].diag.severity, Severity::Error);
    assert_eq!(findings[0].diag.span.slice(src), Some("metrics.bias < 0.1"));
}

#[test]
fn rl0307_redundant_comparison() {
    // An inverted corridor: the author meant `<= 0.1 && >= -0.1` but
    // flipped one comparison, leaving the second bound implied.
    let src = "metrics.bias >= 0.1 && metrics.bias >= -0.1";
    let findings = lint_when(src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, "RL0307");
    assert_eq!(findings[0].diag.code, codes::REDUNDANT_COMPARISON);
    assert_eq!(findings[0].diag.severity, Severity::Warning);
    assert_eq!(
        findings[0].diag.span.slice(src),
        Some("metrics.bias >= -0.1")
    );
}

// --- RL04xx: rule-set analysis -------------------------------------------

#[test]
fn rl0401_shadowed_rule() {
    let narrow = action_rule(
        "narrow",
        "model_domain == \"UberX\"",
        "metrics.bias <= 0.05 && metrics.bias >= -0.05",
        &["forecasting_deployment"],
    );
    let wide = action_rule(
        "wide",
        "model_domain == \"UberX\"",
        "metrics.bias <= 0.1 && metrics.bias >= -0.1",
        &["forecasting_deployment"],
    );
    let report = analyze_rule_set(&[narrow, wide]);
    assert_eq!(report.codes(), vec!["RL0401"]);
    assert_eq!(report.codes(), vec![codes::SHADOWED_RULE]);
    let f = &report.findings[0];
    assert_eq!(f.diag.severity, Severity::Warning);
    assert!(f.origin.contains("wide"));
}

#[test]
fn rl0402_contradictory_actions() {
    let deploy = action_rule(
        "deploy",
        "model_domain == \"UberX\"",
        "metrics.bias <= 0.1",
        &["forecasting_deployment"],
    );
    let deprecate = action_rule(
        "deprecate",
        "model_domain == \"UberX\"",
        "metrics.bias <= 0.2",
        &["deprecate_instance"],
    );
    let report = analyze_rule_set(&[deploy, deprecate]);
    assert_eq!(report.codes(), vec!["RL0402"]);
    assert_eq!(report.codes(), vec![codes::CONTRADICTORY_ACTIONS]);
    assert_eq!(report.findings[0].diag.severity, Severity::Error);
    // Disjoint WHENs do not conflict.
    let deploy = action_rule(
        "deploy",
        "model_domain == \"UberX\"",
        "metrics.bias <= 0.1",
        &["forecasting_deployment"],
    );
    let deprecate = action_rule(
        "deprecate",
        "model_domain == \"UberX\"",
        "metrics.bias > 0.5",
        &["deprecate_instance"],
    );
    assert!(analyze_rule_set(&[deploy, deprecate]).is_empty());
}

#[test]
fn rl0403_unreachable_rule() {
    let doc = action_rule(
        "unreachable",
        "model_domain == \"UberX\" && metrics.bias > 0.5",
        "metrics.bias < 0.1",
        &["forecasting_deployment"],
    );
    let report = analyze_rule(&doc);
    assert_eq!(report.codes(), vec!["RL0403"]);
    assert_eq!(report.codes(), vec![codes::UNREACHABLE_RULE]);
    assert_eq!(report.findings[0].diag.severity, Severity::Error);
    assert_eq!(report.findings[0].origin, "WHEN");
}

#[test]
fn rl0404_duplicate_rule_id() {
    let a = action_rule("same-id", "true", "metrics.bias <= 0.1", &["noop"]);
    let b = action_rule("same-id", "true", "metrics.bias > 0.2", &["noop"]);
    let report = analyze_rule_set(&[a, b]);
    assert_eq!(report.codes(), vec!["RL0404"]);
    assert_eq!(report.codes(), vec![codes::DUPLICATE_RULE_ID]);
    assert_eq!(report.findings[0].diag.severity, Severity::Error);
}

// --- Clean corpus ---------------------------------------------------------

/// A production-like rule set — the paper's Listing 1 and Listing 2 plus a
/// retrained variant — lints clean, individually and as a set.
#[test]
fn production_like_rules_are_clean() {
    let listing1 = gallery_rules::rule::listing1_selection_rule();
    let listing2 = gallery_rules::rule::listing2_action_rule();
    // A *tighter* retrained variant: not shadowed by Listing 1 (the wider
    // earlier rule does not imply it).
    let mut variant = gallery_rules::rule::listing1_selection_rule();
    variant.uuid = "f1b2d5a3-0000-4c6e-9f00-000000000001".into();
    variant.rule.when = "metrics[\"r2\"] <= 0.8".into();
    assert!(
        analyze_rule(&listing1).is_empty(),
        "{}",
        analyze_rule(&listing1)
    );
    assert!(
        analyze_rule(&listing2).is_empty(),
        "{}",
        analyze_rule(&listing2)
    );
    let report = analyze_rule_set(&[listing1, listing2, variant]);
    assert!(report.is_empty(), "expected clean set, got:\n{report}");
}

/// The alert conditions used across the workspace lint clean.
#[test]
fn production_like_alert_conditions_are_clean() {
    for src in [
        "gallery_monitor_drift_score > 3.0",
        "gallery_monitor_staleness_ms > 60000",
        "gallery_rpc_server_requests_total >= 1",
        "gallery_monitor_feature_completeness < 0.9",
        "gallery_monitor_drift_score > 3.0 && metrics.errs_total >= 2",
    ] {
        let report = analyze_condition(src);
        assert!(report.is_empty(), "{src:?} should be clean, got:\n{report}");
    }
}
