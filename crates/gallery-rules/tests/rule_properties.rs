//! Property tests for the rule expression language and rule documents.

#![allow(clippy::disallowed_methods)]

use gallery_rules::ast::{BinOp, Expr, ExprKind, UnOp};
use gallery_rules::eval::{eval, EvalContext, EvalValue};
use gallery_rules::parser::parse;
use gallery_rules::rule::{CompiledRule, RuleBody, RuleDoc};
use proptest::prelude::*;

/// Generate random well-formed expressions. Numbers are non-negative
/// (negative literals reparse as unary negation), identifiers avoid the
/// reserved word operators, and strings stay in printable ASCII.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::from(ExprKind::Null)),
        any::<bool>().prop_map(|b| Expr::from(ExprKind::Bool(b))),
        (0u32..1000).prop_map(|n| Expr::from(ExprKind::Num(n as f64))),
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| Expr::from(ExprKind::Str(s))),
        "v[a-z0-9_]{0,8}".prop_map(|s| Expr::from(ExprKind::Ident(s))),
    ];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), "v[a-z0-9_]{0,6}")
                .prop_map(|(e, f)| Expr::from(ExprKind::Member(Box::new(e), f))),
            (inner.clone(), "[a-z][a-z0-9_]{0,6}").prop_map(|(e, k)| {
                Expr::from(ExprKind::Index(
                    Box::new(e),
                    Box::new(Expr::from(ExprKind::Str(k))),
                ))
            }),
            (
                "v[a-z0-9_]{0,6}",
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(name, args)| Expr::from(ExprKind::Call(name, args))),
            inner
                .clone()
                .prop_map(|e| Expr::from(ExprKind::Unary(UnOp::Not, Box::new(e)))),
            (
                prop_oneof![
                    Just(BinOp::Or),
                    Just(BinOp::And),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                ],
                inner.clone(),
                inner,
            )
                .prop_map(|(op, l, r)| {
                    Expr::from(ExprKind::Binary(op, Box::new(l), Box::new(r)))
                }),
        ]
    })
}

/// Print an expression fully parenthesized (unambiguous).
fn print(expr: &Expr) -> String {
    match &expr.kind {
        ExprKind::Null => "null".into(),
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Num(x) => format!("{x}"),
        ExprKind::Str(s) => format!("{s:?}"),
        ExprKind::Ident(name) => name.clone(),
        ExprKind::Member(base, field) => format!("({}).{field}", print(base)),
        ExprKind::Index(base, key) => format!("({})[{}]", print(base), print(key)),
        ExprKind::Call(name, args) => format!(
            "{name}({})",
            args.iter().map(print).collect::<Vec<_>>().join(", ")
        ),
        ExprKind::Unary(UnOp::Not, e) => format!("!({})", print(e)),
        ExprKind::Unary(UnOp::Neg, e) => format!("-({})", print(e)),
        ExprKind::Binary(op, l, r) => format!("({}) {op} ({})", print(l), print(r)),
    }
}

proptest! {
    /// parse ∘ print is the identity on ASTs (Expr equality ignores spans).
    #[test]
    fn parse_print_roundtrip(expr in arb_expr()) {
        let src = print(&expr);
        let parsed = parse(&src).unwrap_or_else(|e| panic!("printed {src:?} failed: {e}"));
        prop_assert_eq!(&parsed, &expr, "src: {}", src);
    }

    /// The pretty-printer (`Display`, minimal parentheses) also round-trips:
    /// parse(to_string(e)) == e.
    #[test]
    fn parse_pretty_print_roundtrip(expr in arb_expr()) {
        let src = expr.to_string();
        let parsed = parse(&src).unwrap_or_else(|e| panic!("pretty {src:?} failed: {e}"));
        prop_assert_eq!(&parsed, &expr, "src: {}", src);
    }

    /// Evaluation is deterministic and never panics over random
    /// expressions and contexts.
    #[test]
    fn eval_is_deterministic(expr in arb_expr(), bias in any::<f64>()) {
        let metrics = EvalValue::object([("bias".to_string(), EvalValue::Num(bias))]);
        let ctx = EvalContext::new()
            .with("metrics", metrics)
            .with("modelName", "rf");
        let a = eval(&expr, &ctx);
        let b = eval(&expr, &ctx);
        prop_assert_eq!(a, b);
    }

    /// Compiled rules always watch exactly the metrics their sources
    /// mention, and rule compilation never panics on arbitrary WHENs.
    /// Word operators (`and`, `lt`, ...) are reserved in dot position —
    /// such metric names use bracket syntax (covered below) — so the
    /// generator avoids them.
    #[test]
    fn watched_metrics_found(names in proptest::collection::btree_set("[a-z]{1,6}", 1..4)) {
        const RESERVED: [&str; 12] = [
            "and", "or", "not", "eq", "ne", "lt", "le", "gt", "ge", "true", "false", "null",
        ];
        let names: std::collections::BTreeSet<String> = names
            .into_iter()
            .filter(|n| !RESERVED.contains(&n.as_str()))
            .collect();
        prop_assume!(!names.is_empty());
        let when = names
            .iter()
            .map(|n| format!("metrics.{n} < 1"))
            .collect::<Vec<_>>()
            .join(" && ");
        let doc = RuleDoc {
            team: "t".into(),
            uuid: "u".into(),
            rule: RuleBody {
                given: "true".into(),
                when,
                environment: "production".into(),
                model_selection: None,
                callback_actions: vec!["noop".into()],
            },
        };
        let rule = CompiledRule::compile(&doc).unwrap();
        let expected: Vec<String> = names.into_iter().collect();
        prop_assert_eq!(rule.watched_metrics, expected);
    }
}

/// Metric names that collide with word operators are still addressable via
/// bracket syntax.
#[test]
fn reserved_word_metrics_use_bracket_syntax() {
    let expr = parse(r#"metrics["or"] < 1 && metrics["lt"] >= 0"#).unwrap();
    assert_eq!(
        expr.referenced_metrics(),
        vec!["lt".to_string(), "or".to_string()]
    );
    let metrics = EvalValue::object([
        ("or".to_string(), EvalValue::Num(0.5)),
        ("lt".to_string(), EvalValue::Num(0.2)),
    ]);
    let ctx = EvalContext::new().with("metrics", metrics);
    assert_eq!(eval(&expr, &ctx).unwrap(), EvalValue::Bool(true));
}
