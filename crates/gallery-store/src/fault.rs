//! Deterministic fault injection for consistency experiments (E10).
//!
//! The paper (§3.5) prescribes blob-first write ordering so that "if the
//! model blob of a model instance is saved but the metadata fails to save,
//! then the model instance will not be available in the system". To test
//! that property we need controllable failures at each write site.

use gallery_sync::locks::OrderedMutex;
use gallery_sync::rank;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Sites where a fault can be injected. Names are stable strings so that
/// experiments can configure them from the command line.
pub mod sites {
    pub const BLOB_PUT: &str = "blob.put";
    pub const BLOB_GET: &str = "blob.get";
    pub const BLOB_DELETE: &str = "blob.delete";
    pub const META_INSERT: &str = "meta.insert";
    pub const META_QUERY: &str = "meta.query";
    pub const WAL_APPEND: &str = "wal.append";
    pub const RPC_SEND: &str = "rpc.send";
    pub const RPC_RECV: &str = "rpc.recv";
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Fail with the given probability per call.
    Probability(f64),
    /// Fail exactly on the nth call (0-based), then never again.
    NthCall(u64),
    /// Fail the first n calls, then never again.
    FirstN(u64),
    /// Fail every call.
    Always,
}

#[derive(Debug, Default)]
struct SiteState {
    mode: Option<Mode>,
    calls: u64,
    fired: u64,
}

/// A shareable fault plan. Cloning shares state.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<OrderedMutex<FaultPlanInner>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            inner: Arc::new(OrderedMutex::new(
                rank::FAULT_PLAN,
                FaultPlanInner::default(),
            )),
        }
    }
}

#[derive(Debug)]
struct FaultPlanInner {
    sites: HashMap<String, SiteState>,
    rng: StdRng,
}

impl Default for FaultPlanInner {
    fn default() -> Self {
        FaultPlanInner {
            sites: HashMap::new(),
            rng: StdRng::seed_from_u64(0xFA17),
        }
    }
}

impl FaultPlan {
    /// A plan that never injects faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Seed the internal RNG (probabilistic faults become reproducible).
    pub fn with_seed(seed: u64) -> Self {
        let plan = Self::default();
        plan.inner.lock().rng = StdRng::seed_from_u64(seed);
        plan
    }

    /// Fail calls at `site` with probability `p`.
    pub fn fail_with_probability(&self, site: &str, p: f64) -> &Self {
        self.inner.lock().sites.insert(
            site.to_owned(),
            SiteState {
                mode: Some(Mode::Probability(p.clamp(0.0, 1.0))),
                ..Default::default()
            },
        );
        self
    }

    /// Fail exactly the `n`th (0-based) call at `site`.
    pub fn fail_nth_call(&self, site: &str, n: u64) -> &Self {
        self.inner.lock().sites.insert(
            site.to_owned(),
            SiteState {
                mode: Some(Mode::NthCall(n)),
                ..Default::default()
            },
        );
        self
    }

    /// Fail the first `n` calls at `site`, then let every later call
    /// through. This is the canonical "transient outage" shape for retry
    /// tests: an operation retried more than `n` times always succeeds.
    pub fn fail_first_n(&self, site: &str, n: u64) -> &Self {
        self.inner.lock().sites.insert(
            site.to_owned(),
            SiteState {
                mode: Some(Mode::FirstN(n)),
                ..Default::default()
            },
        );
        self
    }

    /// Fail every call at `site`.
    pub fn fail_always(&self, site: &str) -> &Self {
        self.inner.lock().sites.insert(
            site.to_owned(),
            SiteState {
                mode: Some(Mode::Always),
                ..Default::default()
            },
        );
        self
    }

    /// Stop injecting at `site`.
    pub fn clear(&self, site: &str) {
        self.inner.lock().sites.remove(site);
    }

    /// Record a call at `site`; returns `true` if the call should fail.
    pub fn should_fail(&self, site: &str) -> bool {
        let mut inner = self.inner.lock();
        let Some(state) = inner.sites.get(site).map(|s| s.mode) else {
            return false;
        };
        let Some(mode) = state else { return false };
        let fail = {
            let roll = match mode {
                Mode::Probability(p) => Some(inner.rng.gen_bool(p)),
                _ => None,
            };
            let state = inner.sites.get_mut(site).expect("checked above");
            let n = state.calls;
            state.calls += 1;
            let fail = match mode {
                Mode::Probability(_) => roll.unwrap(),
                Mode::NthCall(target) => n == target,
                Mode::FirstN(count) => n < count,
                Mode::Always => true,
            };
            if fail {
                state.fired += 1;
            }
            fail
        };
        fail
    }

    /// How many times faults actually fired at `site`.
    pub fn fired(&self, site: &str) -> u64 {
        self.inner
            .lock()
            .sites
            .get(site)
            .map(|s| s.fired)
            .unwrap_or(0)
    }

    /// How many calls were observed at `site`.
    pub fn calls(&self, site: &str) -> u64 {
        self.inner
            .lock()
            .sites
            .get(site)
            .map(|s| s.calls)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let p = FaultPlan::none();
        for _ in 0..100 {
            assert!(!p.should_fail(sites::BLOB_PUT));
        }
    }

    #[test]
    fn always_fails() {
        let p = FaultPlan::none();
        p.fail_always(sites::META_INSERT);
        assert!(p.should_fail(sites::META_INSERT));
        assert!(p.should_fail(sites::META_INSERT));
        assert_eq!(p.fired(sites::META_INSERT), 2);
    }

    #[test]
    fn nth_call_fails_once() {
        let p = FaultPlan::none();
        p.fail_nth_call(sites::BLOB_PUT, 2);
        assert!(!p.should_fail(sites::BLOB_PUT));
        assert!(!p.should_fail(sites::BLOB_PUT));
        assert!(p.should_fail(sites::BLOB_PUT));
        assert!(!p.should_fail(sites::BLOB_PUT));
        assert_eq!(p.fired(sites::BLOB_PUT), 1);
        assert_eq!(p.calls(sites::BLOB_PUT), 4);
    }

    #[test]
    fn first_n_fails_then_recovers() {
        let p = FaultPlan::none();
        p.fail_first_n(sites::RPC_SEND, 3);
        assert!(p.should_fail(sites::RPC_SEND));
        assert!(p.should_fail(sites::RPC_SEND));
        assert!(p.should_fail(sites::RPC_SEND));
        assert!(!p.should_fail(sites::RPC_SEND));
        assert!(!p.should_fail(sites::RPC_SEND));
        assert_eq!(p.fired(sites::RPC_SEND), 3);
        assert_eq!(p.calls(sites::RPC_SEND), 5);
    }

    #[test]
    fn probability_is_seed_deterministic() {
        let run = |seed| {
            let p = FaultPlan::with_seed(seed);
            p.fail_with_probability(sites::WAL_APPEND, 0.5);
            (0..64)
                .map(|_| p.should_fail(sites::WAL_APPEND))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // overwhelmingly likely
    }

    #[test]
    fn clear_stops_faults() {
        let p = FaultPlan::none();
        p.fail_always(sites::BLOB_GET);
        assert!(p.should_fail(sites::BLOB_GET));
        p.clear(sites::BLOB_GET);
        assert!(!p.should_fail(sites::BLOB_GET));
    }

    #[test]
    fn sites_are_independent() {
        let p = FaultPlan::none();
        p.fail_always(sites::BLOB_PUT);
        assert!(p.should_fail(sites::BLOB_PUT));
        assert!(!p.should_fail(sites::META_INSERT));
    }
}
