//! Seeded schedule perturbation for concurrency tests.
//!
//! Race conditions and lock-order bugs hide in schedules the OS scheduler
//! rarely produces: thread A pausing *between* taking its first and second
//! lock, right when thread B wants them in the other order. This module
//! widens those windows deterministically. [`ScheduleShaker`] installs an
//! acquire hook into the lock-rank checker
//! ([`gallery_sync::checker::set_acquire_hook`]) that, at every ordered
//! lock acquisition, consults a seeded per-thread LCG and either does
//! nothing, yields the thread, or sleeps a few hundred microseconds.
//!
//! The same seed produces the same per-thread decision stream, so a
//! schedule that exposed a bug is re-runnable: the failing test prints its
//! seed, and re-running with that seed replays the same perturbation
//! pattern (thread interleaving itself stays up to the OS, but the
//! injected pauses — the part that widened the race window — are
//! reproduced exactly).
//!
//! Usage, from a `#[test]`:
//!
//! ```ignore
//! let _shaker = ScheduleShaker::install(seed);
//! // spawn threads, hammer the store...
//! // hook uninstalls when `_shaker` drops
//! ```
//!
//! The hook only fires when rank checking is on ([`ScheduleShaker::install`]
//! enables it), so release-mode benchmark runs are unaffected.

use gallery_sync::checker;
use gallery_sync::Rank;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Out of 16: how often an acquisition yields vs sleeps vs runs through.
/// Tuned so a perturbed test suite stays fast (most acquisitions
/// unperturbed) while every thread still gets pauses at lock boundaries.
const YIELD_WEIGHT: u64 = 3;
const SLEEP_WEIGHT: u64 = 1;

/// Longest injected sleep. Long enough for another thread to run a whole
/// critical section, short enough that thousands of injections stay
/// sub-second in aggregate.
const MAX_SLEEP_MICROS: u64 = 300;

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer — decorrelates seed+thread-id into a stream.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

thread_local! {
    /// Per-thread LCG state, derived from the shaker seed and a stable
    /// per-thread counter the first time this thread hits the hook.
    static STREAM: Cell<u64> = const { Cell::new(0) };
}

/// Stable small ids handed to threads in first-hook order; part of the
/// per-thread stream derivation so two threads never share a stream.
static THREAD_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn thread_stream(seed: u64) -> u64 {
    let id = THREAD_ID.with(|t| {
        if t.get() == 0 {
            t.set(THREAD_SEQ.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    });
    STREAM.with(|s| {
        if s.get() == 0 {
            s.set(mix(seed ^ id.wrapping_mul(0x9e3779b97f4a7c15)));
        }
        let cur = s.get();
        let next = cur
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s.set(next);
        next >> 33
    })
}

/// RAII guard over an installed perturbation hook. Constructed with
/// [`ScheduleShaker::install`]; dropping it uninstalls the hook and turns
/// rank checking back to its build default.
pub struct ScheduleShaker {
    injections: Arc<AtomicU64>,
}

impl ScheduleShaker {
    /// Enable rank checking and install a seeded perturbation hook at
    /// every ordered-lock acquisition site. Only one shaker should be
    /// live at a time (the checker holds a single hook slot; a second
    /// install displaces the first).
    pub fn install(seed: u64) -> ScheduleShaker {
        let injections = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&injections);
        checker::enable();
        checker::set_acquire_hook(Some(Arc::new(move |_rank: &Rank| {
            let roll = thread_stream(seed) & 0xf;
            if roll < SLEEP_WEIGHT {
                counter.fetch_add(1, Ordering::Relaxed);
                let micros = thread_stream(seed) % MAX_SLEEP_MICROS + 1;
                std::thread::sleep(Duration::from_micros(micros));
            } else if roll < SLEEP_WEIGHT + YIELD_WEIGHT {
                counter.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        })));
        ScheduleShaker { injections }
    }

    /// How many acquisitions were perturbed (yield or sleep) so far.
    /// Tests assert this is non-zero to prove the hook actually ran.
    pub fn injections(&self) -> u64 {
        self.injections.load(Ordering::Relaxed)
    }
}

impl Drop for ScheduleShaker {
    fn drop(&mut self) {
        checker::set_acquire_hook(None);
        checker::reset_mode();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gallery_sync::{rank, OrderedMutex};

    #[test]
    fn shaker_perturbs_and_uninstalls() {
        let m = OrderedMutex::new(rank::GATE, 0u64);
        {
            let shaker = ScheduleShaker::install(42);
            for _ in 0..512 {
                *m.lock() += 1;
            }
            assert!(
                shaker.injections() > 0,
                "512 acquisitions at 1-in-4 odds must perturb at least once"
            );
        }
        // Hook gone: further acquisitions don't panic or perturb.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 513);
    }

    #[test]
    fn same_seed_same_decision_stream() {
        // The decision stream is a pure function of (seed, thread id,
        // call index); two fresh threads with the same derived stream
        // state make identical choices.
        let a: Vec<u64> = (0..64).map(|i| mix(7 ^ i) & 0xf).collect();
        let b: Vec<u64> = (0..64).map(|i| mix(7 ^ i) & 0xf).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..64).map(|i| mix(8 ^ i) & 0xf).collect();
        assert_ne!(a, c, "different seed must shift the stream");
    }
}
