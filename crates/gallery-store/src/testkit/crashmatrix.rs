//! The crash-point matrix checker.
//!
//! Strategy: run a seeded workload once over a clean [`SimFs`] to record
//! the full IO-operation trace, then re-run it once *per crash point* —
//! every mutating IO op the trace recorded — with a [`SimFaultPlan`] that
//! crashes there. Each crashed disk is recovered the way a restarted
//! process would recover it (WAL heal + replay, stale-tmp sweep) and the
//! survivor is checked against the paper's §3.5 invariants:
//!
//! - **No dangling metadata** — every recovered row's `blob_location`
//!   resolves (blob-first ordering's whole point). The deliberately unsafe
//!   `MetadataFirst` ablation *must* trip this check, which is how the
//!   harness proves it can catch the bug it exists to catch.
//! - **No silent corruption** — a recovered blob read either returns
//!   exactly `payload_for(seed, id)` or a detected error
//!   (checksum/missing); wrong bytes are never served quietly.
//! - **WAL replay is idempotent** — replaying the healed log twice yields
//!   identical operation sequences, and a second recovery pass finds
//!   nothing left to heal.
//! - **Flags are prefix-consistent** — `deprecated = true` on a survivor
//!   implies the full workload deprecated that instance (flags are
//!   monotone, so any durable prefix agrees).
//! - **Orphans are repairable** — `repair_orphans` deletes every orphan
//!   blob and a re-audit comes back clean.
//! - **Acked ops are durable** — every op the DAL acknowledged before the
//!   crash survives recovery (rows present, acked deprecations set). With
//!   group commit in the write path this is the load-bearing check: a
//!   crash *inside* a batched WAL write may lose or tear the in-flight
//!   batch (none of it acked yet), but must never lose an acknowledged
//!   row. Applies to clean-crash and torn-write scenarios; lossy
//!   scenarios (lying fsync, bit rot) legitimately lose acked data.
//!
//! Beyond clean crashes the matrix optionally tears the final write
//! (prefix-persisted), drops fsyncs on a matching path (lying disk), and
//! flips bits in the durable image. Lossy scenarios get weaker-but-still-
//! strong invariants: data may be *lost*, corruption must be *detected*,
//! silent wrong answers are violations everywhere.

use super::model::RefModel;
use super::workload::{self, instance_schema, payload_for, Workload, TABLE};
use crate::blob::localfs::LocalFsBlobStore;
use crate::blob::BlobLocation;
use crate::dal::{Dal, WriteOrdering};
use crate::error::StoreError;
use crate::meta::MetadataStore;
use crate::query::Query;
use crate::simfs::{FileSystem, IoOp, IoOpRecord, SimFaultPlan, SimFs};
use crate::wal::{SyncPolicy, Wal};
use gallery_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// WAL path used by matrix runs (inside the simulated fs).
pub const WAL_PATH: &str = "/db/wal.log";
/// Blob root used by matrix runs (inside the simulated fs).
pub const BLOB_ROOT: &str = "/db/blobs";

/// Configuration of one matrix run. Everything is derived from `seed`;
/// repeating a config reproduces the identical matrix.
#[derive(Debug, Clone)]
pub struct CrashMatrixConfig {
    pub seed: u64,
    /// Logical DAL ops in the generated workload.
    pub workload_len: usize,
    /// Write ordering under test. `BlobFirst` must produce zero violations;
    /// `MetadataFirst` must not.
    pub ordering: WriteOrdering,
    /// Also run a torn-write variant of every multi-byte write crash point.
    pub torn_writes: bool,
    /// Also run lying-fsync scenarios (drop syncs on the WAL / on blobs).
    pub drop_sync: bool,
    /// Number of bit-flip-at-recovery scenarios (alternating WAL/blobs).
    pub bit_flips: usize,
    /// Test every `stride`-th crash point (1 = exhaustive; smoke uses more).
    pub stride: usize,
}

impl CrashMatrixConfig {
    /// Exhaustive configuration: every IO op is a crash point.
    pub fn new(seed: u64) -> Self {
        CrashMatrixConfig {
            seed,
            workload_len: 64,
            ordering: WriteOrdering::BlobFirst,
            torn_writes: true,
            drop_sync: true,
            bit_flips: 4,
            stride: 1,
        }
    }

    /// Bounded configuration for CI smoke runs: shorter workload, sampled
    /// crash points. Still covers all scenario kinds.
    pub fn smoke(seed: u64) -> Self {
        CrashMatrixConfig {
            workload_len: 28,
            bit_flips: 2,
            stride: 3,
            ..Self::new(seed)
        }
    }

    pub fn with_ordering(mut self, ordering: WriteOrdering) -> Self {
        self.ordering = ordering;
        self
    }
}

/// One invariant breach, tagged with the scenario that produced it. The
/// scenario string plus the config seed fully reproduce the failure.
#[derive(Debug, Clone)]
pub struct Violation {
    pub scenario: String,
    pub invariant: &'static str,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.scenario, self.invariant, self.detail)
    }
}

/// Invariant names used in [`Violation::invariant`].
pub mod invariants {
    pub const FAULT_FREE_RUN: &str = "fault-free-run";
    pub const RECOVERY_SUCCEEDS: &str = "recovery-succeeds";
    pub const ACKED_DURABLE: &str = "acked-ops-durable";
    pub const NO_DANGLING_METADATA: &str = "no-dangling-metadata";
    pub const NO_SILENT_CORRUPTION: &str = "no-silent-corruption";
    pub const BLOB_READABLE: &str = "blob-readable-after-clean-crash";
    pub const REPLAY_IDEMPOTENT: &str = "wal-replay-idempotent";
    pub const FLAG_MONOTONE: &str = "deprecated-flag-monotone";
    pub const NO_PHANTOM_ROWS: &str = "no-phantom-rows";
    pub const ORPHANS_REPAIRABLE: &str = "orphans-repairable";
}

/// Aggregate outcome of a matrix run.
#[derive(Debug, Default)]
pub struct CrashMatrixReport {
    pub seed: u64,
    /// Mutating IO ops in the fault-free trace.
    pub io_ops_traced: usize,
    /// Scenarios executed (crash points plus bit-flip runs).
    pub scenarios_run: usize,
    /// Distinct crash-point scenarios (clean + torn + lying-fsync).
    pub crash_points: usize,
    /// Crash points per IO site classification (`wal.append`,
    /// `blob.publish`, ...).
    pub sites: BTreeMap<String, usize>,
    pub violations: Vec<Violation>,
    /// Orphan blobs garbage-collected across all recoveries.
    pub orphans_repaired: u64,
    /// Torn WAL tails healed across all recoveries.
    pub torn_tails_truncated: u64,
    /// Stale `.tmp` blobs swept across all recoveries.
    pub tmp_files_swept: u64,
    /// Lossy-scenario corruptions that were *detected* (the required
    /// outcome; silent wrong bytes would be violations instead).
    pub corruption_detected: u64,
    pub recovered_rows_total: u64,
    pub recovered_blobs_total: u64,
}

impl CrashMatrixReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any violation breaches the §3.5 referential-integrity
    /// invariant (what the MetadataFirst ablation must trip).
    pub fn caught_dangling_metadata(&self) -> bool {
        self.violations
            .iter()
            .any(|v| v.invariant == invariants::NO_DANGLING_METADATA)
    }
}

/// Classify an IO-trace record into the site it belongs to. `wal.commit`
/// (the fsync making a metadata record durable) and `blob.publish` (the
/// rename exposing a blob under its final key) are the two commit points
/// §3.5's ordering argument is about. A WAL write carrying more than one
/// line is a group-commit batch (`wal.append.batch`) — crashing there is
/// the mid-batch crash the acked-durability invariant targets.
pub fn classify(rec: &IoOpRecord) -> &'static str {
    let wal = rec.path.to_string_lossy().contains("wal");
    match (wal, rec.op) {
        (true, IoOp::Write) if rec.newlines > 1 => "wal.append.batch",
        (true, IoOp::Write) => "wal.append",
        (true, IoOp::Sync) => "wal.commit",
        (true, _) => "wal.other",
        (false, IoOp::Create) => "blob.create",
        (false, IoOp::Write) => "blob.write",
        (false, IoOp::Sync) => "blob.sync",
        (false, IoOp::Rename) => "blob.publish",
        (false, IoOp::Remove) => "blob.delete",
        (false, IoOp::Truncate) => "blob.other",
    }
}

/// How strictly a scenario's survivor is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rigor {
    /// Clean crash / torn final write: full invariants — durable rows must
    /// have intact, readable blobs.
    Strict,
    /// Lying fsync: content may be lost, but loss must surface as a
    /// detected error, never as wrong bytes.
    LossySync,
    /// Bit rot at recovery: corruption must be detected (checksum / WAL
    /// CRC), never served.
    BitFlip,
}

/// Run the full matrix for `cfg`.
pub fn run_crash_matrix(cfg: &CrashMatrixConfig) -> CrashMatrixReport {
    let w = Workload::generate(cfg.seed, cfg.workload_len);
    let model = RefModel::of_workload(&w);
    let mut report = CrashMatrixReport {
        seed: cfg.seed,
        ..Default::default()
    };

    // Pass 1: fault-free trace enumerating every mutating IO op.
    let trace_fs = SimFs::new();
    if let (_, Err(e)) = run_workload(&trace_fs, &w, cfg.ordering) {
        report.violations.push(Violation {
            scenario: "trace".to_string(),
            invariant: invariants::FAULT_FREE_RUN,
            detail: e.to_string(),
        });
        return report;
    }
    let trace = trace_fs.op_log();
    report.io_ops_traced = trace.len();

    // Pass 2: crash at every (stride-sampled) IO op, plus a torn variant
    // for multi-byte writes. Group-commit batch writes are always crash
    // points, even when the stride would skip them — mid-batch crashes are
    // what the acked-durability invariant exists to judge.
    let stride = cfg.stride.max(1);
    for (k, rec) in trace
        .iter()
        .enumerate()
        .filter(|(k, rec)| k % stride == 0 || classify(rec) == "wal.append.batch")
    {
        *report.sites.entry(classify(rec).to_string()).or_insert(0) += 1;
        let name = format!("crash@{k}/{}:{}", rec.op.name(), rec.path.display());
        let plan = SimFaultPlan {
            crash_at_op: Some(k as u64),
            ..Default::default()
        };
        run_scenario(cfg, &w, &model, &mut report, name, plan, Rigor::Strict);
        report.crash_points += 1;
        if cfg.torn_writes && rec.op == IoOp::Write && rec.bytes > 1 {
            let keep = rec.bytes / 2;
            let name = format!("torn@{k}(keep={keep}):{}", rec.path.display());
            let plan = SimFaultPlan {
                crash_at_op: Some(k as u64),
                torn_write_keep: Some(keep),
                ..Default::default()
            };
            run_scenario(cfg, &w, &model, &mut report, name, plan, Rigor::Strict);
            report.crash_points += 1;
            // Torn *batch*: a multi-record group-commit write torn at a
            // line boundary minus one byte — every record but the last
            // persists whole, the last heals away as a torn tail. None of
            // the batch was acked, so losing its suffix must be invisible
            // to the acked-durability check.
            if rec.newlines > 1 {
                let keep = rec.bytes - 1;
                let name = format!("torn-batch@{k}(keep={keep}):{}", rec.path.display());
                let plan = SimFaultPlan {
                    crash_at_op: Some(k as u64),
                    torn_write_keep: Some(keep),
                    ..Default::default()
                };
                run_scenario(cfg, &w, &model, &mut report, name, plan, Rigor::Strict);
                report.crash_points += 1;
            }
        }
    }

    // Pass 3: lying-fsync crash points, sampled across the trace, once per
    // target (the WAL, then the blob tree).
    if cfg.drop_sync {
        let step = (trace.len() / 6).max(1);
        for needle in ["wal.log", "blobs"] {
            for k in (0..trace.len()).step_by(step) {
                let name = format!("drop-sync({needle})+crash@{k}");
                let plan = SimFaultPlan {
                    crash_at_op: Some(k as u64),
                    drop_sync_on: Some(needle.to_string()),
                    ..Default::default()
                };
                run_scenario(cfg, &w, &model, &mut report, name, plan, Rigor::LossySync);
                report.crash_points += 1;
            }
        }
    }

    // Pass 4: bit rot — run to completion, flip a durable byte at
    // recovery, alternate between the WAL and the blob tree.
    for j in 0..cfg.bit_flips {
        let needle = if j % 2 == 0 { "wal.log" } else { "blobs" };
        let offset = 7 + 13 * j;
        let name = format!("bit-flip({needle}@{offset})");
        let plan = SimFaultPlan {
            bit_flip: Some((needle.to_string(), offset)),
            ..Default::default()
        };
        run_scenario(cfg, &w, &model, &mut report, name, plan, Rigor::BitFlip);
    }

    report
}

/// Build the store stack over `fs` and run the workload, stopping at the
/// first storage failure (the injected crash). Returns how many ops were
/// *acknowledged* (applied successfully, all durability syncs included)
/// before the failure, plus the failure itself if any — the acked prefix
/// feeds the acked-durability invariant.
fn run_workload(
    fs: &SimFs,
    w: &Workload,
    ordering: WriteOrdering,
) -> (usize, crate::error::Result<()>) {
    let fs_arc: Arc<dyn FileSystem> = Arc::new(fs.clone());
    let telemetry = Telemetry::new();
    let setup = || -> crate::error::Result<Dal> {
        let meta = Arc::new(MetadataStore::durable_with(
            Arc::clone(&fs_arc),
            WAL_PATH,
            SyncPolicy::Always,
            Arc::clone(&telemetry),
        )?);
        let blobs = Arc::new(LocalFsBlobStore::open_with_fs(
            Arc::clone(&fs_arc),
            BLOB_ROOT,
        )?);
        let dal = Dal::new(meta, blobs)
            .with_ordering(ordering)
            .with_telemetry(Arc::clone(&telemetry));
        dal.create_table(instance_schema())?;
        Ok(dal)
    };
    let dal = match setup() {
        Ok(d) => d,
        Err(e) => return (0, Err(e)),
    };
    for (i, op) in w.ops.iter().enumerate() {
        if let Err(e) = workload::apply(&dal, w.seed, op) {
            return (i, Err(e));
        }
    }
    (w.ops.len(), Ok(()))
}

fn run_scenario(
    cfg: &CrashMatrixConfig,
    w: &Workload,
    model: &RefModel,
    report: &mut CrashMatrixReport,
    name: String,
    plan: SimFaultPlan,
    rigor: Rigor,
) {
    report.scenarios_run += 1;
    let fs = SimFs::with_plan(plan);
    // The run is expected to die at the crash point (bit-flip scenarios
    // run to completion); either way the recovered image is what matters.
    let (acked, _) = run_workload(&fs, w, cfg.ordering);
    let recovered = fs.recover();
    check_recovery(cfg, w, acked, model, report, &name, rigor, &recovered);
}

/// Recover stores from a post-crash disk image and check every invariant.
/// `acked` is the count of workload ops the crashed run acknowledged.
#[allow(clippy::too_many_arguments)]
fn check_recovery(
    cfg: &CrashMatrixConfig,
    w: &Workload,
    acked: usize,
    model: &RefModel,
    report: &mut CrashMatrixReport,
    scenario: &str,
    rigor: Rigor,
    fs: &SimFs,
) {
    let fail = |invariant: &'static str, detail: String| Violation {
        scenario: scenario.to_string(),
        invariant,
        detail,
    };
    let fs_arc: Arc<dyn FileSystem> = Arc::new(fs.clone());
    let telemetry = Telemetry::new();

    // Recovery must succeed: torn tails heal, crashes never brick the
    // store. The one sanctioned exception is bit rot *inside* the log,
    // which must surface as detected corruption.
    let meta = match MetadataStore::durable_with(
        Arc::clone(&fs_arc),
        WAL_PATH,
        SyncPolicy::Always,
        Arc::clone(&telemetry),
    ) {
        Ok(m) => Arc::new(m),
        Err(StoreError::WalCorrupt(_)) if rigor == Rigor::BitFlip => {
            report.corruption_detected += 1;
            return;
        }
        Err(e) => {
            report
                .violations
                .push(fail(invariants::RECOVERY_SUCCEEDS, e.to_string()));
            return;
        }
    };
    report.torn_tails_truncated += telemetry
        .registry()
        .counter("gallery_wal_torn_tail_truncated_total", &[])
        .get();

    // WAL replay idempotence: the healed log replays to the same op
    // sequence every time, and a second recovery finds nothing to heal.
    match (
        Wal::replay_with_fs(&*fs_arc, WAL_PATH),
        Wal::replay_with_fs(&*fs_arc, WAL_PATH),
    ) {
        (Ok(a), Ok(b)) => {
            let ja = serde_json::to_string(&a).unwrap_or_default();
            let jb = serde_json::to_string(&b).unwrap_or_default();
            if ja != jb {
                report.violations.push(fail(
                    invariants::REPLAY_IDEMPOTENT,
                    "two replays of the healed log disagree".to_string(),
                ));
            }
        }
        (Err(e), _) | (_, Err(e)) => {
            report.violations.push(fail(
                invariants::REPLAY_IDEMPOTENT,
                format!("replay of healed log failed: {e}"),
            ));
        }
    }

    let blobs = match LocalFsBlobStore::open_with_fs(Arc::clone(&fs_arc), BLOB_ROOT) {
        Ok(b) => Arc::new(b),
        Err(e) => {
            report
                .violations
                .push(fail(invariants::RECOVERY_SUCCEEDS, e.to_string()));
            return;
        }
    };
    report.tmp_files_swept += blobs.swept_tmp_files();
    let dal = Dal::new(Arc::clone(&meta), blobs).with_telemetry(telemetry);

    if !meta.has_table(TABLE) {
        // Crashed before CreateTable became durable: the store is empty and
        // any blobs on disk are unreferenced artifacts. Nothing to check.
        return;
    }

    // §3.5: no recovered row may point at a missing blob.
    let audit = match dal.audit_consistency(&[TABLE]) {
        Ok(a) => a,
        Err(e) => {
            report
                .violations
                .push(fail(invariants::RECOVERY_SUCCEEDS, e.to_string()));
            return;
        }
    };
    report.recovered_rows_total += audit.rows_checked as u64;
    report.recovered_blobs_total += audit.blobs_checked as u64;
    if !audit.is_consistent() {
        report.violations.push(fail(
            invariants::NO_DANGLING_METADATA,
            format!("{:?}", audit.dangling_metadata),
        ));
    }

    // Per-row content and flag checks against the reference model.
    let rows = match meta.query(TABLE, &Query::all().with_deprecated()) {
        Ok(r) => r,
        Err(e) => {
            report
                .violations
                .push(fail(invariants::RECOVERY_SUCCEEDS, e.to_string()));
            return;
        }
    };
    for row in &rows {
        let pk = row
            .get("id")
            .and_then(|v| v.as_str())
            .unwrap_or("<no-id>")
            .to_owned();
        let expected = model.rows.get(&pk);
        if expected.is_none() {
            report.violations.push(fail(
                invariants::NO_PHANTOM_ROWS,
                format!("{pk} recovered but never written by the workload"),
            ));
            continue;
        }
        if let Some(loc) = row.get("blob_location").and_then(|v| v.as_str()) {
            match dal.fetch_blob(&BlobLocation::new(loc)) {
                Ok(bytes) => {
                    if bytes[..] != payload_for(cfg.seed, &pk)[..] {
                        report.violations.push(fail(
                            invariants::NO_SILENT_CORRUPTION,
                            format!("{pk}: blob bytes differ from the written payload"),
                        ));
                    }
                }
                Err(
                    StoreError::ChecksumMismatch { .. }
                    | StoreError::NoSuchBlob(_)
                    | StoreError::Io(_),
                ) if rigor != Rigor::Strict || cfg.ordering == WriteOrdering::MetadataFirst => {
                    // Lossy scenarios (and the unsafe ordering, whose
                    // dangling rows were already flagged above): loss is
                    // permitted as long as it is *detected*.
                    report.corruption_detected += 1;
                }
                Err(e) => {
                    report
                        .violations
                        .push(fail(invariants::BLOB_READABLE, format!("{pk}: {e}")));
                }
            }
        }
        // Monotone flag: a recovered prefix can only under-report
        // deprecation, never invent it.
        let deprecated = row
            .get("deprecated")
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        if deprecated && !expected.is_some_and(|r| r.deprecated) {
            report.violations.push(fail(
                invariants::FLAG_MONOTONE,
                format!("{pk}: deprecated after recovery but not in the full workload"),
            ));
        }
    }

    // Acked durability: everything the DAL acknowledged before the crash
    // must have survived. Only sound under Strict rigor — lying fsyncs and
    // bit rot lose acked data by design (detected, not denied).
    if rigor == Rigor::Strict {
        let recovered: BTreeMap<&str, bool> = rows
            .iter()
            .filter_map(|row| {
                row.get("id").and_then(|v| v.as_str()).map(|pk| {
                    (
                        pk,
                        row.get("deprecated")
                            .and_then(|v| v.as_bool())
                            .unwrap_or(false),
                    )
                })
            })
            .collect();
        for op in &w.ops[..acked] {
            for id in op.inserted_ids() {
                if !recovered.contains_key(id.as_str()) {
                    report.violations.push(fail(
                        invariants::ACKED_DURABLE,
                        format!("{id}: insert was acknowledged but lost by recovery"),
                    ));
                }
            }
            if let workload::WorkloadOp::Deprecate { id } = op {
                // Deprecate on a not-yet-inserted id is a swallowed
                // semantic no-op; only check ids the acked prefix created.
                let inserted = w.ops[..acked]
                    .iter()
                    .any(|o| o.inserted_ids().iter().any(|i| i == id));
                if inserted && recovered.get(id.as_str()) != Some(&true) {
                    report.violations.push(fail(
                        invariants::ACKED_DURABLE,
                        format!("{id}: acknowledged deprecation lost by recovery"),
                    ));
                }
            }
        }
    }

    // Orphans (interrupted blob-first writes) must be fully repairable.
    match dal.repair_orphans(&[TABLE]) {
        Ok(rep) => {
            report.orphans_repaired += rep.deleted.len() as u64;
            if !rep.failed.is_empty() {
                report.violations.push(fail(
                    invariants::ORPHANS_REPAIRABLE,
                    format!("{} deletions failed", rep.failed.len()),
                ));
            }
            match dal.audit_consistency(&[TABLE]) {
                Ok(after) if after.orphan_blobs.is_empty() => {}
                Ok(after) => {
                    report.violations.push(fail(
                        invariants::ORPHANS_REPAIRABLE,
                        format!("{} orphans survived repair", after.orphan_blobs.len()),
                    ));
                }
                Err(e) => {
                    report
                        .violations
                        .push(fail(invariants::ORPHANS_REPAIRABLE, e.to_string()));
                }
            }
        }
        Err(e) => {
            report
                .violations
                .push(fail(invariants::ORPHANS_REPAIRABLE, e.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_is_clean_under_blob_first() {
        let report = run_crash_matrix(&CrashMatrixConfig::smoke(0xC0FFEE));
        assert!(
            report.is_clean(),
            "seed {:#x} violations: {:#?}",
            report.seed,
            report.violations
        );
        assert!(report.crash_points > 0);
        assert!(report.io_ops_traced > 0);
    }

    #[test]
    fn matrix_catches_metadata_first_ordering() {
        let cfg = CrashMatrixConfig {
            torn_writes: false,
            drop_sync: false,
            bit_flips: 0,
            ..CrashMatrixConfig::smoke(7)
        }
        .with_ordering(WriteOrdering::MetadataFirst);
        let report = run_crash_matrix(&cfg);
        assert!(
            report.caught_dangling_metadata(),
            "the harness must catch the deliberately unsafe ordering"
        );
    }

    #[test]
    fn classify_covers_both_trees() {
        use std::path::PathBuf;
        let wal = IoOpRecord {
            op: IoOp::Sync,
            path: PathBuf::from(WAL_PATH),
            bytes: 0,
            newlines: 0,
        };
        assert_eq!(classify(&wal), "wal.commit");
        let blob = IoOpRecord {
            op: IoOp::Rename,
            path: PathBuf::from("/db/blobs/00/x.blob"),
            bytes: 0,
            newlines: 0,
        };
        assert_eq!(classify(&blob), "blob.publish");
        // One line per record: multi-line writes are group-commit batches.
        let single = IoOpRecord {
            op: IoOp::Write,
            path: PathBuf::from(WAL_PATH),
            bytes: 64,
            newlines: 1,
        };
        assert_eq!(classify(&single), "wal.append");
        let batch = IoOpRecord {
            op: IoOp::Write,
            path: PathBuf::from(WAL_PATH),
            bytes: 256,
            newlines: 4,
        };
        assert_eq!(classify(&batch), "wal.append.batch");
    }

    #[test]
    fn matrix_exercises_mid_batch_crash_points() {
        // The workload mix includes put_many, so the fault-free trace must
        // contain multi-record WAL batch writes, and the matrix must have
        // crashed inside them (clean + torn-batch) without violations.
        let report = run_crash_matrix(&CrashMatrixConfig::smoke(0xBA7C4));
        assert!(
            report.sites.contains_key("wal.append.batch"),
            "trace sites: {:?}",
            report.sites
        );
        assert!(report.is_clean(), "violations: {:#?}", report.violations);
    }
}
