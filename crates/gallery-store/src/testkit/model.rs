//! In-memory reference model of DAL semantics, plus a differential runner.
//!
//! [`RefModel`] is the *obviously correct* implementation: a map from
//! instance id to `{has_blob, deprecated}`. It ignores storage entirely —
//! no WAL, no blob store, no caching — which is exactly what makes it a
//! useful oracle. [`run_differential`] drives a real DAL and the model with
//! the same seeded workload and reports every observable divergence:
//! presence, flag state, blob bytes, and referential integrity.
//!
//! The crash matrix ([`super::crashmatrix`]) reuses the model differently:
//! a recovered store holds a *prefix* of the workload, so it is checked
//! against the model's final state with prefix-tolerant invariants
//! (monotone flags, no phantom rows) rather than strict equality.

use super::workload::{self, instance_schema, payload_for, Workload, WorkloadOp, TABLE};
use crate::blob::memory::MemoryBlobStore;
use crate::dal::Dal;
use crate::meta::MetadataStore;
use crate::query::Query;
use gallery_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Reference state for one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefRow {
    pub has_blob: bool,
    pub deprecated: bool,
}

/// Reference implementation of the DAL's observable state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefModel {
    pub rows: BTreeMap<String, RefRow>,
}

impl RefModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror one workload op. Reads and repair are state-neutral; inserts
    /// of an existing id are rejected (records are immutable) and so leave
    /// the model unchanged too.
    pub fn apply(&mut self, op: &WorkloadOp) {
        match op {
            WorkloadOp::PutWithBlob { id } => {
                self.rows.entry(id.clone()).or_insert(RefRow {
                    has_blob: true,
                    deprecated: false,
                });
            }
            WorkloadOp::PutMeta { id } => {
                self.rows.entry(id.clone()).or_insert(RefRow {
                    has_blob: false,
                    deprecated: false,
                });
            }
            WorkloadOp::PutMany { ids } => {
                for id in ids {
                    self.rows.entry(id.clone()).or_insert(RefRow {
                        has_blob: false,
                        deprecated: false,
                    });
                }
            }
            WorkloadOp::Deprecate { id } => {
                if let Some(row) = self.rows.get_mut(id) {
                    row.deprecated = true;
                }
            }
            WorkloadOp::Get { .. } | WorkloadOp::FetchBlob { .. } | WorkloadOp::RepairOrphans => {}
        }
    }

    /// Replay a whole workload into a fresh model.
    pub fn of_workload(w: &Workload) -> RefModel {
        let mut m = RefModel::new();
        for op in &w.ops {
            m.apply(op);
        }
        m
    }
}

/// Outcome of one differential run.
#[derive(Debug, Default)]
pub struct DiffReport {
    pub seed: u64,
    pub ops_applied: usize,
    /// Human-readable divergence descriptions; empty means the DAL agreed
    /// with the reference model on every check.
    pub divergences: Vec<String>,
}

impl DiffReport {
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Diff a live DAL against a model: same rows, same flags, matching blob
/// bytes, clean referential integrity. Returns divergence descriptions.
pub fn diff_against_model(dal: &Dal, model: &RefModel, seed: u64) -> Vec<String> {
    let mut out = Vec::new();
    let rows = match dal.query(TABLE, &Query::all().with_deprecated()) {
        Ok(rows) => rows,
        Err(e) => return vec![format!("query all failed: {e}")],
    };
    if rows.len() != model.rows.len() {
        out.push(format!(
            "row count: dal={} model={}",
            rows.len(),
            model.rows.len()
        ));
    }
    for row in &rows {
        let Some(pk) = row.get("id").and_then(|v| v.as_str()) else {
            out.push("row without id".to_string());
            continue;
        };
        let Some(expected) = model.rows.get(pk) else {
            out.push(format!("{pk}: present in dal, absent in model"));
            continue;
        };
        let deprecated = row
            .get("deprecated")
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        if deprecated != expected.deprecated {
            out.push(format!(
                "{pk}: deprecated dal={deprecated} model={}",
                expected.deprecated
            ));
        }
        let has_blob = row.get("blob_location").and_then(|v| v.as_str()).is_some();
        if has_blob != expected.has_blob {
            out.push(format!(
                "{pk}: has_blob dal={has_blob} model={}",
                expected.has_blob
            ));
        }
        if expected.has_blob {
            match dal.fetch_blob_of(TABLE, pk) {
                Ok(bytes) if bytes[..] == payload_for(seed, pk)[..] => {}
                Ok(_) => out.push(format!("{pk}: blob bytes differ from payload_for")),
                Err(e) => out.push(format!("{pk}: fetch_blob_of failed: {e}")),
            }
        }
    }
    match dal.audit_consistency(&[TABLE]) {
        Ok(audit) => {
            if !audit.is_consistent() {
                out.push(format!("dangling metadata: {:?}", audit.dangling_metadata));
            }
            // Fault-free run over unique ids: every blob is referenced.
            if !audit.orphan_blobs.is_empty() {
                out.push(format!("unexpected orphans: {:?}", audit.orphan_blobs));
            }
        }
        Err(e) => out.push(format!("audit failed: {e}")),
    }
    out
}

/// Run a seeded workload against a real in-memory DAL and the reference
/// model in lockstep, diffing observable state as it goes and deeply at the
/// end.
pub fn run_differential(seed: u64, len: usize) -> DiffReport {
    let w = Workload::generate(seed, len);
    let telemetry = Telemetry::new();
    let meta = Arc::new(MetadataStore::in_memory().with_telemetry(Arc::clone(&telemetry)));
    let blobs = Arc::new(MemoryBlobStore::new());
    let dal = Dal::new(meta, blobs).with_telemetry(telemetry);
    let mut report = DiffReport {
        seed,
        ..Default::default()
    };
    if let Err(e) = dal.create_table(instance_schema()) {
        report.divergences.push(format!("create_table failed: {e}"));
        return report;
    }
    let mut model = RefModel::new();
    for (i, op) in w.ops.iter().enumerate() {
        // Observable comparison on reads, before state changes below.
        if let WorkloadOp::Get { id } = op {
            // Point lookups see deprecated rows (only queries filter them),
            // so visibility is plain existence.
            let dal_has = matches!(dal.get(TABLE, id), Ok(Some(_)));
            let model_has = model.rows.contains_key(id);
            if dal_has != model_has {
                report
                    .divergences
                    .push(format!("op {i}: get({id}) dal={dal_has} model={model_has}"));
            }
        }
        if let Err(e) = workload::apply(&dal, seed, op) {
            report
                .divergences
                .push(format!("op {i}: {op:?} storage failure: {e}"));
            return report;
        }
        model.apply(op);
        report.ops_applied += 1;
    }
    report
        .divergences
        .extend(diff_against_model(&dal, &model, seed));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_runs_clean_on_many_seeds() {
        for seed in [1u64, 7, 42, 1234, 99999] {
            let report = run_differential(seed, 120);
            assert!(
                report.is_clean(),
                "seed {seed} diverged: {:?}",
                report.divergences
            );
            assert_eq!(report.ops_applied, 120);
        }
    }

    #[test]
    fn model_tracks_monotone_deprecation() {
        let mut m = RefModel::new();
        m.apply(&WorkloadOp::PutWithBlob { id: "a".into() });
        m.apply(&WorkloadOp::Deprecate { id: "a".into() });
        m.apply(&WorkloadOp::Deprecate {
            id: "missing".into(),
        });
        assert!(m.rows["a"].deprecated);
        assert_eq!(m.rows.len(), 1);
    }

    #[test]
    fn diff_catches_a_seeded_divergence() {
        // A model that disagrees with what the workload actually did must
        // produce divergences — the oracle itself is being tested here.
        let w = Workload::generate(5, 40);
        let telemetry = Telemetry::new();
        let meta = Arc::new(MetadataStore::in_memory().with_telemetry(Arc::clone(&telemetry)));
        let blobs = Arc::new(MemoryBlobStore::new());
        let dal = Dal::new(meta, blobs).with_telemetry(telemetry);
        dal.create_table(instance_schema()).unwrap();
        for op in &w.ops {
            workload::apply(&dal, w.seed, op).unwrap();
        }
        let mut model = RefModel::of_workload(&w);
        let first = model.rows.keys().next().unwrap().clone();
        model.rows.remove(&first);
        let divergences = diff_against_model(&dal, &model, w.seed);
        assert!(!divergences.is_empty());
    }
}
