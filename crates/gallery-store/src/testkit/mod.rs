//! Deterministic crash-consistency test harness.
//!
//! The paper's central durability claim (§3.5) is an *ordering* argument:
//! blobs are written before the metadata that references them, so a crash
//! at any instant leaves either a complete instance or a harmless orphan
//! blob — never metadata pointing at nothing. Arguments like that are only
//! as good as the set of crash instants actually exercised, so this module
//! provides machinery to exercise **all of them**:
//!
//! - [`workload`] — seeded random DAL workloads with deterministic,
//!   per-instance blob payloads (recoverable state can be verified without
//!   replaying the op sequence);
//! - [`model`] — an in-memory reference model of DAL semantics plus a
//!   differential runner that diffs a real DAL against it op by op;
//! - [`crashmatrix`] — the matrix checker: trace a workload over a
//!   simulated disk ([`crate::simfs::SimFs`]), then replay it crashing at
//!   *every* recorded IO operation (optionally with torn final writes,
//!   lying fsyncs, and bit flips), recover, and assert the paper's
//!   invariants on the survivor;
//! - [`schedule`] — seeded schedule perturbation: a hook at every ordered
//!   lock acquisition that yields or sleeps per a deterministic stream,
//!   widening race windows so concurrency tests explore more
//!   interleavings (drives the E22 lock-lint experiment).
//!
//! Everything is seeded: a failing scenario prints its seed, and re-running
//! with that seed reproduces the exact workload, IO trace, and crash point.
//! See `docs/testing.md` for the invariant catalogue and the reproduction
//! workflow. Experiment E16 (`exp_crashmatrix`) drives this harness at
//! scale; a bounded smoke configuration runs in CI on every push.

pub mod crashmatrix;
pub mod model;
pub mod schedule;
pub mod workload;

pub use crashmatrix::{
    run_crash_matrix, CrashMatrixConfig, CrashMatrixReport, Violation, BLOB_ROOT, WAL_PATH,
};
pub use model::{run_differential, DiffReport, RefModel, RefRow};
pub use schedule::ScheduleShaker;
pub use workload::{instance_schema, payload_for, Workload, WorkloadOp, TABLE};
