//! Seeded random DAL workloads.
//!
//! A workload is a flat list of logical operations against one `instances`
//! table. Two properties make workloads usable for crash testing:
//!
//! 1. **Determinism** — `Workload::generate(seed, len)` always produces the
//!    same op list, so a failing crash scenario is reproduced from its seed
//!    alone.
//! 2. **Self-describing payloads** — the blob for instance `id` is
//!    `payload_for(seed, id)`, a pure function. After a crash + recovery,
//!    any surviving row's blob can be checked byte-for-byte without
//!    replaying the workload.
//!
//! Flag mutation is deliberately monotone (instances are only ever
//! *deprecated*, never un-deprecated, matching §3.7's immutability story).
//! A recovered store holds a prefix of the workload, so a monotone flag
//! admits a simple invariant: a recovered `deprecated = true` implies the
//! full workload deprecated that instance too.

use crate::dal::Dal;
use crate::error::StoreError;
use crate::record::Record;
use crate::schema::{ColumnDef, TableSchema};
use crate::value::ValueType;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The single table crash workloads run against (mirrors the `instances`
/// schema used throughout the test suite).
pub const TABLE: &str = "instances";

/// Schema for [`TABLE`]: primary key, nullable blob pointer, nullable
/// deprecation flag.
pub fn instance_schema() -> TableSchema {
    TableSchema::new(
        TABLE,
        "id",
        vec![
            ColumnDef::new("id", ValueType::Str),
            ColumnDef::new("blob_location", ValueType::Str).nullable(),
            ColumnDef::new("deprecated", ValueType::Bool).nullable(),
        ],
    )
    .expect("static schema is valid")
}

/// Deterministic blob payload for instance `id` under `seed`: 16–135 bytes
/// derived from an FNV-mixed per-id RNG.
pub fn payload_for(seed: u64, id: &str) -> Vec<u8> {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in id.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(h);
    let len = 16 + rng.gen_range(0..120u64) as usize;
    (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect()
}

/// One logical DAL operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// `put_with_blob`: new instance with payload `payload_for(seed, id)`.
    PutWithBlob { id: String },
    /// Metadata-only insert (no blob), e.g. a registered-but-unmaterialised
    /// instance.
    PutMeta { id: String },
    /// Batched metadata-only insert through the store's group commit —
    /// `put_many`, one WAL batch for all ids. Acknowledged atomically from
    /// the caller's view, but a crash mid-batch may persist a prefix.
    PutMany { ids: Vec<String> },
    /// Monotone flag write: `set_flag(id, "deprecated", true)`.
    Deprecate { id: String },
    /// Point read of the metadata row.
    Get { id: String },
    /// Two-hop read: metadata row, then blob bytes.
    FetchBlob { id: String },
    /// Orphan GC pass over [`TABLE`].
    RepairOrphans,
}

impl WorkloadOp {
    /// The instance this op targets, if any (batch ops target many; see
    /// [`WorkloadOp::inserted_ids`]).
    pub fn id(&self) -> Option<&str> {
        match self {
            WorkloadOp::PutWithBlob { id }
            | WorkloadOp::PutMeta { id }
            | WorkloadOp::Deprecate { id }
            | WorkloadOp::Get { id }
            | WorkloadOp::FetchBlob { id } => Some(id),
            WorkloadOp::PutMany { .. } | WorkloadOp::RepairOrphans => None,
        }
    }

    /// Ids this op inserts (empty for reads/flags/repair). The crash
    /// matrix's acked-durability invariant walks these.
    pub fn inserted_ids(&self) -> &[String] {
        match self {
            WorkloadOp::PutWithBlob { id } | WorkloadOp::PutMeta { id } => std::slice::from_ref(id),
            WorkloadOp::PutMany { ids } => ids,
            _ => &[],
        }
    }
}

/// A reproducible op sequence. The seed is carried along because payloads
/// ([`payload_for`]) and hence all content checks depend on it.
#[derive(Debug, Clone)]
pub struct Workload {
    pub seed: u64,
    pub ops: Vec<WorkloadOp>,
}

impl Workload {
    /// Generate `len` operations from `seed`. Ids are unique per workload
    /// (the store's records are immutable; duplicate-key probing belongs to
    /// the differential model, not the crash matrix).
    pub fn generate(seed: u64, len: usize) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<String> = Vec::new();
        let mut next = 0u32;
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let roll = rng.gen_range(0..100u64);
            let op = if ids.is_empty() || roll < 40 {
                next += 1;
                let id = format!("inst-{next:04}");
                ids.push(id.clone());
                WorkloadOp::PutWithBlob { id }
            } else if roll < 50 {
                next += 1;
                let id = format!("inst-{next:04}");
                ids.push(id.clone());
                WorkloadOp::PutMeta { id }
            } else if roll < 58 {
                let n = 2 + rng.gen_range(0..4u64) as usize;
                let batch: Vec<String> = (0..n)
                    .map(|_| {
                        next += 1;
                        let id = format!("inst-{next:04}");
                        ids.push(id.clone());
                        id
                    })
                    .collect();
                WorkloadOp::PutMany { ids: batch }
            } else if roll < 70 {
                WorkloadOp::Deprecate {
                    id: pick(&mut rng, &ids),
                }
            } else if roll < 82 {
                WorkloadOp::Get {
                    id: pick(&mut rng, &ids),
                }
            } else if roll < 94 {
                WorkloadOp::FetchBlob {
                    id: pick(&mut rng, &ids),
                }
            } else {
                WorkloadOp::RepairOrphans
            };
            ops.push(op);
        }
        Workload { seed, ops }
    }
}

fn pick(rng: &mut StdRng, ids: &[String]) -> String {
    ids[rng.gen_range(0..ids.len() as u64) as usize].clone()
}

/// Whether an error from [`apply`] means the *storage layer* failed (crash,
/// injected fault, corruption) as opposed to an expected semantic outcome
/// of the op mix (e.g. fetching the blob of a metadata-only instance).
pub fn is_storage_failure(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::Io(_)
            | StoreError::InjectedFault(_)
            | StoreError::WalCorrupt(_)
            | StoreError::ChecksumMismatch { .. }
    )
}

/// Apply one op to a DAL. Semantic errors (no such key, no blob on a
/// metadata-only row) are swallowed — they are legitimate outcomes of a
/// random op mix. Storage failures propagate so a crash-matrix run stops at
/// its injected crash.
pub fn apply(dal: &Dal, seed: u64, op: &WorkloadOp) -> crate::error::Result<()> {
    let outcome = match op {
        WorkloadOp::PutWithBlob { id } => dal
            .put_with_blob(
                TABLE,
                Record::new().set("id", id.as_str()),
                Bytes::from(payload_for(seed, id)),
            )
            .map(|_| ()),
        WorkloadOp::PutMeta { id } => dal.put(TABLE, Record::new().set("id", id.as_str())),
        WorkloadOp::PutMany { ids } => dal
            .put_many(
                TABLE,
                ids.iter()
                    .map(|id| Record::new().set("id", id.as_str()))
                    .collect(),
            )
            .map(|_| ()),
        WorkloadOp::Deprecate { id } => dal.set_flag(TABLE, id, "deprecated", true),
        WorkloadOp::Get { id } => dal.get(TABLE, id).map(|_| ()),
        WorkloadOp::FetchBlob { id } => dal.fetch_blob_of(TABLE, id).map(|_| ()),
        WorkloadOp::RepairOrphans => dal.repair_orphans(&[TABLE]).map(|_| ()),
    };
    match outcome {
        Ok(()) => Ok(()),
        Err(e) if is_storage_failure(&e) => Err(e),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(42, 64);
        let b = Workload::generate(42, 64);
        assert_eq!(a.ops, b.ops);
        let c = Workload::generate(43, 64);
        assert_ne!(a.ops, c.ops, "different seeds should differ");
    }

    #[test]
    fn payloads_are_stable_and_id_sensitive() {
        assert_eq!(payload_for(7, "inst-0001"), payload_for(7, "inst-0001"));
        assert_ne!(payload_for(7, "inst-0001"), payload_for(7, "inst-0002"));
        assert_ne!(payload_for(7, "inst-0001"), payload_for(8, "inst-0001"));
        assert!(payload_for(7, "inst-0001").len() >= 16);
    }

    #[test]
    fn ids_are_unique_within_a_workload() {
        let w = Workload::generate(11, 200);
        let mut seen = std::collections::HashSet::new();
        for op in &w.ops {
            for id in op.inserted_ids() {
                assert!(seen.insert(id.clone()), "duplicate insert id {id}");
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn workloads_include_batch_inserts() {
        let w = Workload::generate(11, 200);
        let batches: Vec<&WorkloadOp> = w
            .ops
            .iter()
            .filter(|op| matches!(op, WorkloadOp::PutMany { .. }))
            .collect();
        assert!(!batches.is_empty(), "op mix must exercise put_many");
        for op in batches {
            let WorkloadOp::PutMany { ids } = op else {
                unreachable!()
            };
            assert!((2..=5).contains(&ids.len()));
        }
    }
}
