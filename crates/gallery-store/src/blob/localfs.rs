//! Durable blob store over a local directory, sharded like object stores
//! shard keys: `<root>/<first two hex chars>/<id>.blob`. Each file carries a
//! small header (magic, crc, length) so integrity survives restarts.
//!
//! Crash discipline: every blob is written to a same-directory `.tmp` file,
//! fsynced, and atomically renamed to its final `.blob` name — a crash
//! mid-write can never leave a half-written blob under a resolvable key.
//! Stale `.tmp` files (crash artifacts) are swept on open. All IO goes
//! through [`FileSystem`] so the crash-consistency harness can run this
//! store over a simulated disk.

use super::checksum::crc32;
use super::{BlobInfo, BlobLocation, ObjectStore};
use crate::error::{Result, StoreError};
use crate::simfs::{real_fs, FileSystem};
use bytes::Bytes;
use gallery_sync::locks::OrderedMutex;
use gallery_sync::rank;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"GBL1";

pub struct LocalFsBlobStore {
    root: PathBuf,
    fs: Arc<dyn FileSystem>,
    next_id: AtomicU64,
    // serializes directory creation; file writes are already unique-path
    dir_lock: OrderedMutex<()>,
    swept_tmp: u64,
}

impl LocalFsBlobStore {
    /// Open (creating) a blob root directory. Existing blobs are respected;
    /// the id counter resumes above the highest existing id.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_fs(real_fs(), root)
    }

    /// [`LocalFsBlobStore::open`] over an explicit file system. Sweeps
    /// stale `.tmp` files left by a crash mid-`put` (they were never
    /// renamed, so no metadata can reference them).
    pub fn open_with_fs(fs: Arc<dyn FileSystem>, root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs.create_dir_all(&root)?;
        let mut max_id = 0u64;
        let mut stale_tmp: Vec<PathBuf> = Vec::new();
        for shard in fs.list_dir(&root)? {
            if !fs.is_dir(&shard) {
                continue;
            }
            for entry in fs.list_dir(&shard)? {
                let ext = entry.extension().and_then(|e| e.to_str());
                if let Some(stem) = entry.file_stem().and_then(|s| s.to_str()) {
                    // Count both .blob and .tmp stems toward the id floor so
                    // a swept tmp's id is never re-minted for a new blob.
                    if let Ok(id) = u64::from_str_radix(stem, 16) {
                        max_id = max_id.max(id + 1);
                    }
                }
                if ext == Some("tmp") {
                    stale_tmp.push(entry);
                }
            }
        }
        let swept_tmp = stale_tmp.len() as u64;
        for tmp in stale_tmp {
            fs.remove_file(&tmp)?;
        }
        Ok(LocalFsBlobStore {
            root,
            fs,
            next_id: AtomicU64::new(max_id),
            dir_lock: OrderedMutex::new(rank::BLOB_STORE, ()),
            swept_tmp,
        })
    }

    /// Crash-artifact `.tmp` files removed by [`LocalFsBlobStore::open`].
    pub fn swept_tmp_files(&self) -> u64 {
        self.swept_tmp
    }

    fn path_for(&self, id: u64) -> PathBuf {
        let hex = format!("{id:016x}");
        self.root.join(&hex[..2]).join(format!("{hex}.blob"))
    }

    fn location_for(&self, id: u64) -> BlobLocation {
        BlobLocation::new(format!("fs://{:016x}", id))
    }

    fn id_of(location: &BlobLocation) -> Result<u64> {
        let hex = location
            .as_str()
            .strip_prefix("fs://")
            .ok_or_else(|| StoreError::NoSuchBlob(location.to_string()))?;
        u64::from_str_radix(hex, 16).map_err(|_| StoreError::NoSuchBlob(location.to_string()))
    }

    /// Write `data` under id `id` with the tmp-file + fsync + atomic-rename
    /// discipline shared by `put` and `put_at`.
    fn write_blob(&self, id: u64, data: &Bytes) -> Result<BlobInfo> {
        let path = self.path_for(id);
        {
            let _g = self.dir_lock.lock();
            if let Some(parent) = path.parent() {
                self.fs.create_dir_all(parent)?;
            }
        }
        let crc = crc32(data);
        // The tmp name embeds the (unique, never reused) blob id, so
        // concurrent writers cannot collide and a crash leaves at most one
        // orphaned tmp per interrupted put.
        let tmp = path.with_extension("tmp");
        {
            let mut f = self.fs.create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&crc.to_le_bytes())?;
            f.write_all(&(data.len() as u64).to_le_bytes())?;
            f.write_all(data)?;
            // fsync BEFORE the rename: once the blob is visible under its
            // final key its bytes must already be durable, otherwise a
            // post-rename crash could expose a key with vanished content.
            f.sync_data()?;
        }
        self.fs.rename(&tmp, &path)?;
        Ok(BlobInfo {
            location: self.location_for(id),
            size: data.len(),
            crc32: crc,
        })
    }
}

impl ObjectStore for LocalFsBlobStore {
    fn put(&self, data: Bytes) -> Result<BlobInfo> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.write_blob(id, &data)
    }

    fn reserve(&self) -> Result<BlobLocation> {
        Ok(self.location_for(self.next_id.fetch_add(1, Ordering::Relaxed)))
    }

    fn put_at(&self, location: &BlobLocation, data: Bytes) -> Result<BlobInfo> {
        let id = Self::id_of(location)?;
        if self.fs.exists(&self.path_for(id)) {
            return Err(StoreError::Io(format!("blob already exists at {location}")));
        }
        self.write_blob(id, &data)
    }

    fn get(&self, location: &BlobLocation) -> Result<Bytes> {
        let id = Self::id_of(location)?;
        let path = self.path_for(id);
        let raw = match self.fs.read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NoSuchBlob(location.to_string()))
            }
            Err(e) => return Err(e.into()),
        };
        if raw.len() < 16 || &raw[..4] != MAGIC {
            return Err(StoreError::ChecksumMismatch {
                location: location.to_string(),
            });
        }
        let crc = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")) as usize;
        let data = &raw[16..];
        if data.len() != len || crc32(data) != crc {
            return Err(StoreError::ChecksumMismatch {
                location: location.to_string(),
            });
        }
        Ok(Bytes::copy_from_slice(data))
    }

    fn delete(&self, location: &BlobLocation) -> Result<()> {
        let id = Self::id_of(location)?;
        match self.fs.remove_file(&self.path_for(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NoSuchBlob(location.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn contains(&self, location: &BlobLocation) -> bool {
        Self::id_of(location)
            .map(|id| self.fs.exists(&self.path_for(id)))
            .unwrap_or(false)
    }

    fn blob_count(&self) -> usize {
        self.list().len()
    }

    fn total_bytes(&self) -> u64 {
        let mut total = 0u64;
        for loc in self.list() {
            if let Ok(id) = Self::id_of(&loc) {
                if let Ok(len) = self.fs.len(&self.path_for(id)) {
                    total += len.saturating_sub(16);
                }
            }
        }
        total
    }

    fn list(&self) -> Vec<BlobLocation> {
        let mut out = Vec::new();
        let Ok(shards) = self.fs.list_dir(&self.root) else {
            return out;
        };
        for shard in shards {
            if !self.fs.is_dir(&shard) {
                continue;
            }
            let Ok(entries) = self.fs.list_dir(&shard) else {
                continue;
            };
            for path in entries {
                if path.extension().and_then(|e| e.to_str()) != Some("blob") {
                    continue;
                }
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if let Ok(id) = u64::from_str_radix(stem, 16) {
                        out.push(self.location_for(id));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simfs::SimFs;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gallery-blobfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let store = LocalFsBlobStore::open(tmp("rt")).unwrap();
        let info = store.put(Bytes::from_static(b"weights")).unwrap();
        assert_eq!(
            store.get(&info.location).unwrap(),
            Bytes::from_static(b"weights")
        );
        assert!(store.contains(&info.location));
    }

    #[test]
    fn survives_reopen() {
        let root = tmp("reopen");
        let loc = {
            let store = LocalFsBlobStore::open(&root).unwrap();
            store
                .put(Bytes::from_static(b"persisted"))
                .unwrap()
                .location
        };
        let store = LocalFsBlobStore::open(&root).unwrap();
        assert_eq!(store.get(&loc).unwrap(), Bytes::from_static(b"persisted"));
        // new ids don't collide with old
        let info = store.put(Bytes::from_static(b"more")).unwrap();
        assert_ne!(info.location, loc);
    }

    #[test]
    fn detects_on_disk_corruption() {
        let root = tmp("corrupt");
        let store = LocalFsBlobStore::open(&root).unwrap();
        let info = store.put(Bytes::from_static(b"fragile")).unwrap();
        // Flip a payload byte on disk.
        let id =
            u64::from_str_radix(info.location.as_str().strip_prefix("fs://").unwrap(), 16).unwrap();
        let path = store.path_for(id);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            store.get(&info.location),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn missing_blob() {
        let store = LocalFsBlobStore::open(tmp("missing")).unwrap();
        assert!(matches!(
            store.get(&BlobLocation::new("fs://00000000000000ff")),
            Err(StoreError::NoSuchBlob(_))
        ));
        assert!(matches!(
            store.get(&BlobLocation::new("garbage")),
            Err(StoreError::NoSuchBlob(_))
        ));
    }

    #[test]
    fn delete_removes_file() {
        let store = LocalFsBlobStore::open(tmp("delete")).unwrap();
        let info = store.put(Bytes::from_static(b"gone soon")).unwrap();
        store.delete(&info.location).unwrap();
        assert!(!store.contains(&info.location));
        assert!(matches!(
            store.delete(&info.location),
            Err(StoreError::NoSuchBlob(_))
        ));
    }

    #[test]
    fn list_and_accounting() {
        let store = LocalFsBlobStore::open(tmp("list")).unwrap();
        store.put(Bytes::from(vec![1u8; 10])).unwrap();
        store.put(Bytes::from(vec![2u8; 20])).unwrap();
        assert_eq!(store.blob_count(), 2);
        assert_eq!(store.total_bytes(), 30);
    }

    #[test]
    fn reserve_then_put_at() {
        let store = LocalFsBlobStore::open(tmp("reserve")).unwrap();
        let loc = store.reserve().unwrap();
        assert!(!store.contains(&loc));
        let info = store.put_at(&loc, Bytes::from_static(b"late")).unwrap();
        assert_eq!(info.location, loc);
        assert_eq!(store.get(&loc).unwrap(), Bytes::from_static(b"late"));
        // Double put_at at the same location is refused (immutability).
        assert!(store.put_at(&loc, Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn stale_tmp_swept_on_open_and_invisible_to_list() {
        let root = tmp("sweep");
        {
            let store = LocalFsBlobStore::open(&root).unwrap();
            store.put(Bytes::from_static(b"good")).unwrap();
        }
        // Simulate a crash mid-put: a half-written tmp file next to a real
        // blob in the same shard.
        let shard = fs::read_dir(&root).unwrap().next().unwrap().unwrap().path();
        fs::write(shard.join("00000000000000aa.tmp"), b"GBL1half").unwrap();
        {
            let store = LocalFsBlobStore::open(&root).unwrap();
            assert_eq!(store.swept_tmp_files(), 1);
            assert_eq!(store.blob_count(), 1, "tmp must never surface as a blob");
            // The tmp's id is not re-minted for new blobs.
            let info = store.put(Bytes::from_static(b"new")).unwrap();
            assert_ne!(info.location.as_str(), "fs://00000000000000aa");
            assert!(!shard.join("00000000000000aa.tmp").exists());
        }
    }

    #[test]
    fn crash_mid_put_leaves_no_resolvable_blob() {
        // Crash the SimFs at every IO op inside a put: recovery must never
        // observe a readable-but-wrong blob at the final key.
        let payload = Bytes::from_static(b"crash-window payload");
        // put over SimFs costs: create(tmp) + 4 writes + sync + rename = 7 ops.
        for crash_at in 0..7 {
            let fs = SimFs::with_plan(crate::simfs::SimFaultPlan {
                crash_at_op: Some(crash_at),
                ..Default::default()
            });
            let store = LocalFsBlobStore::open_with_fs(Arc::new(fs.clone()), "/blobs").unwrap();
            let err = store.put(payload.clone());
            assert!(err.is_err(), "crash at op {crash_at} must fail the put");
            let after = fs.recover();
            let store = LocalFsBlobStore::open_with_fs(Arc::new(after), "/blobs").unwrap();
            for loc in store.list() {
                // A blob visible after recovery must be intact: the rename
                // happened, so the fsync before it made the bytes durable.
                assert_eq!(store.get(&loc).unwrap(), payload);
            }
        }
        // Sanity: without a crash the put lands and survives recovery.
        let fs = SimFs::new();
        let store = LocalFsBlobStore::open_with_fs(Arc::new(fs.clone()), "/blobs").unwrap();
        let info = store.put(payload.clone()).unwrap();
        let store = LocalFsBlobStore::open_with_fs(Arc::new(fs.recover()), "/blobs").unwrap();
        assert_eq!(store.get(&info.location).unwrap(), payload);
    }
}
