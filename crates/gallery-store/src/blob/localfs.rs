//! Durable blob store over a local directory, sharded like object stores
//! shard keys: `<root>/<first two hex chars>/<id>.blob`. Each file carries a
//! small header (magic, crc, length) so integrity survives restarts.

use super::checksum::crc32;
use super::{BlobInfo, BlobLocation, ObjectStore};
use crate::error::{Result, StoreError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: &[u8; 4] = b"GBL1";

pub struct LocalFsBlobStore {
    root: PathBuf,
    next_id: AtomicU64,
    // serializes directory creation; file writes are already unique-path
    dir_lock: Mutex<()>,
}

impl LocalFsBlobStore {
    /// Open (creating) a blob root directory. Existing blobs are respected;
    /// the id counter resumes above the highest existing id.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let mut max_id = 0u64;
        for shard in fs::read_dir(&root)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(shard.path())? {
                let entry = entry?;
                if let Some(stem) = entry.path().file_stem().and_then(|s| s.to_str()) {
                    if let Ok(id) = u64::from_str_radix(stem, 16) {
                        max_id = max_id.max(id + 1);
                    }
                }
            }
        }
        Ok(LocalFsBlobStore {
            root,
            next_id: AtomicU64::new(max_id),
            dir_lock: Mutex::new(()),
        })
    }

    fn path_for(&self, id: u64) -> PathBuf {
        let hex = format!("{id:016x}");
        self.root.join(&hex[..2]).join(format!("{hex}.blob"))
    }

    fn location_for(&self, id: u64) -> BlobLocation {
        BlobLocation::new(format!("fs://{:016x}", id))
    }

    fn id_of(location: &BlobLocation) -> Result<u64> {
        let hex = location
            .as_str()
            .strip_prefix("fs://")
            .ok_or_else(|| StoreError::NoSuchBlob(location.to_string()))?;
        u64::from_str_radix(hex, 16).map_err(|_| StoreError::NoSuchBlob(location.to_string()))
    }
}

impl ObjectStore for LocalFsBlobStore {
    fn put(&self, data: Bytes) -> Result<BlobInfo> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.path_for(id);
        {
            let _g = self.dir_lock.lock();
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent)?;
            }
        }
        let crc = crc32(&data);
        // Write to a temp file then rename, so a crash mid-write never
        // leaves a half-written blob at a resolvable location.
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&crc.to_le_bytes())?;
            f.write_all(&(data.len() as u64).to_le_bytes())?;
            f.write_all(&data)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(BlobInfo {
            location: self.location_for(id),
            size: data.len(),
            crc32: crc,
        })
    }

    fn get(&self, location: &BlobLocation) -> Result<Bytes> {
        let id = Self::id_of(location)?;
        let path = self.path_for(id);
        let mut f = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NoSuchBlob(location.to_string()))
            }
            Err(e) => return Err(e.into()),
        };
        let mut header = [0u8; 16];
        f.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(StoreError::ChecksumMismatch {
                location: location.to_string(),
            });
        }
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
        let mut data = Vec::with_capacity(len);
        f.read_to_end(&mut data)?;
        if data.len() != len || crc32(&data) != crc {
            return Err(StoreError::ChecksumMismatch {
                location: location.to_string(),
            });
        }
        Ok(Bytes::from(data))
    }

    fn delete(&self, location: &BlobLocation) -> Result<()> {
        let id = Self::id_of(location)?;
        match fs::remove_file(self.path_for(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NoSuchBlob(location.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn contains(&self, location: &BlobLocation) -> bool {
        Self::id_of(location)
            .map(|id| self.path_for(id).exists())
            .unwrap_or(false)
    }

    fn blob_count(&self) -> usize {
        self.list().len()
    }

    fn total_bytes(&self) -> u64 {
        let mut total = 0u64;
        for loc in self.list() {
            if let Ok(id) = Self::id_of(&loc) {
                if let Ok(meta) = fs::metadata(self.path_for(id)) {
                    total += meta.len().saturating_sub(16);
                }
            }
        }
        total
    }

    fn list(&self) -> Vec<BlobLocation> {
        let mut out = Vec::new();
        let Ok(shards) = fs::read_dir(&self.root) else {
            return out;
        };
        for shard in shards.flatten() {
            let Ok(entries) = fs::read_dir(shard.path()) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("blob") {
                    continue;
                }
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if let Ok(id) = u64::from_str_radix(stem, 16) {
                        out.push(self.location_for(id));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gallery-blobfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let store = LocalFsBlobStore::open(tmp("rt")).unwrap();
        let info = store.put(Bytes::from_static(b"weights")).unwrap();
        assert_eq!(
            store.get(&info.location).unwrap(),
            Bytes::from_static(b"weights")
        );
        assert!(store.contains(&info.location));
    }

    #[test]
    fn survives_reopen() {
        let root = tmp("reopen");
        let loc = {
            let store = LocalFsBlobStore::open(&root).unwrap();
            store
                .put(Bytes::from_static(b"persisted"))
                .unwrap()
                .location
        };
        let store = LocalFsBlobStore::open(&root).unwrap();
        assert_eq!(store.get(&loc).unwrap(), Bytes::from_static(b"persisted"));
        // new ids don't collide with old
        let info = store.put(Bytes::from_static(b"more")).unwrap();
        assert_ne!(info.location, loc);
    }

    #[test]
    fn detects_on_disk_corruption() {
        let root = tmp("corrupt");
        let store = LocalFsBlobStore::open(&root).unwrap();
        let info = store.put(Bytes::from_static(b"fragile")).unwrap();
        // Flip a payload byte on disk.
        let id =
            u64::from_str_radix(info.location.as_str().strip_prefix("fs://").unwrap(), 16).unwrap();
        let path = store.path_for(id);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            store.get(&info.location),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn missing_blob() {
        let store = LocalFsBlobStore::open(tmp("missing")).unwrap();
        assert!(matches!(
            store.get(&BlobLocation::new("fs://00000000000000ff")),
            Err(StoreError::NoSuchBlob(_))
        ));
        assert!(matches!(
            store.get(&BlobLocation::new("garbage")),
            Err(StoreError::NoSuchBlob(_))
        ));
    }

    #[test]
    fn delete_removes_file() {
        let store = LocalFsBlobStore::open(tmp("delete")).unwrap();
        let info = store.put(Bytes::from_static(b"gone soon")).unwrap();
        store.delete(&info.location).unwrap();
        assert!(!store.contains(&info.location));
        assert!(matches!(
            store.delete(&info.location),
            Err(StoreError::NoSuchBlob(_))
        ));
    }

    #[test]
    fn list_and_accounting() {
        let store = LocalFsBlobStore::open(tmp("list")).unwrap();
        store.put(Bytes::from(vec![1u8; 10])).unwrap();
        store.put(Bytes::from(vec![2u8; 20])).unwrap();
        assert_eq!(store.blob_count(), 2);
        assert_eq!(store.total_bytes(), 30);
    }
}
