//! CRC-32 (IEEE 802.3 polynomial), implemented from scratch.
//!
//! Used to frame WAL entries and to verify blob integrity end-to-end
//! (model blobs are opaque binaries — §3.3.2 — so a checksum is the only
//! integrity signal the store can provide without interpreting them).

/// Lazily-built 256-entry lookup table for the reflected polynomial
/// 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 hasher for streaming writes.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello world, this is a model blob";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        data[512] = 0x42;
        let clean = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
