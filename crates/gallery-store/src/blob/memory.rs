//! In-memory object store with fault injection and simulated latency.

use super::checksum::crc32;
use super::{BlobInfo, BlobLocation, ObjectStore};
use crate::error::{Result, StoreError};
use crate::fault::{sites, FaultPlan};
use crate::latency::{LatencyMeter, LatencyModel};
use bytes::Bytes;
use gallery_sync::locks::OrderedRwLock;
use gallery_sync::rank;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// In-memory blob store. Content is addressed by a monotonically increasing
/// id plus the content CRC, so identical blobs still get distinct locations
/// (immutability: re-uploading produces a new version, never a silent
/// dedup that would alias two instances).
pub struct MemoryBlobStore {
    blobs: OrderedRwLock<HashMap<BlobLocation, (Bytes, u32)>>,
    next_id: AtomicU64,
    faults: FaultPlan,
    latency: LatencyModel,
    meter: LatencyMeter,
    corrupt_next: OrderedRwLock<Option<BlobLocation>>,
}

impl Default for MemoryBlobStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryBlobStore {
    pub fn new() -> Self {
        MemoryBlobStore {
            blobs: OrderedRwLock::new(rank::BLOB_STORE, HashMap::new()),
            next_id: AtomicU64::new(0),
            faults: FaultPlan::none(),
            latency: LatencyModel::instant(),
            meter: LatencyMeter::new(),
            corrupt_next: OrderedRwLock::new(rank::BLOB_STORE, None),
        }
    }

    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    pub fn with_latency(mut self, model: LatencyModel) -> Self {
        self.latency = model;
        self
    }

    /// Shared meter of simulated backend time.
    pub fn meter(&self) -> LatencyMeter {
        self.meter.clone()
    }

    /// Test hook: corrupt the stored bytes at `location` (flip one byte) so
    /// the next `get` fails checksum verification.
    pub fn corrupt(&self, location: &BlobLocation) {
        let mut blobs = self.blobs.write();
        if let Some((data, crc)) = blobs.get_mut(location) {
            let mut v = data.to_vec();
            if v.is_empty() {
                v.push(0xFF);
            } else {
                v[0] ^= 0xFF;
            }
            *data = Bytes::from(v);
            // keep original crc so verification fails
            let _ = crc;
        }
        *self.corrupt_next.write() = None;
    }
}

impl ObjectStore for MemoryBlobStore {
    fn put(&self, data: Bytes) -> Result<BlobInfo> {
        if self.faults.should_fail(sites::BLOB_PUT) {
            return Err(StoreError::InjectedFault(sites::BLOB_PUT));
        }
        self.meter.charge(&self.latency, data.len());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let crc = crc32(&data);
        let location = BlobLocation::new(format!("mem://{id:016x}-{crc:08x}"));
        let size = data.len();
        self.blobs.write().insert(location.clone(), (data, crc));
        Ok(BlobInfo {
            location,
            size,
            crc32: crc,
        })
    }

    fn reserve(&self) -> Result<BlobLocation> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Ok(BlobLocation::new(format!("mem://{id:016x}-reserved")))
    }

    fn put_at(&self, location: &BlobLocation, data: Bytes) -> Result<BlobInfo> {
        if self.faults.should_fail(sites::BLOB_PUT) {
            return Err(StoreError::InjectedFault(sites::BLOB_PUT));
        }
        self.meter.charge(&self.latency, data.len());
        let mut blobs = self.blobs.write();
        if blobs.contains_key(location) {
            return Err(StoreError::Io(format!("blob already exists at {location}")));
        }
        let crc = crc32(&data);
        let size = data.len();
        blobs.insert(location.clone(), (data, crc));
        Ok(BlobInfo {
            location: location.clone(),
            size,
            crc32: crc,
        })
    }

    fn get(&self, location: &BlobLocation) -> Result<Bytes> {
        if self.faults.should_fail(sites::BLOB_GET) {
            return Err(StoreError::InjectedFault(sites::BLOB_GET));
        }
        let blobs = self.blobs.read();
        let (data, crc) = blobs
            .get(location)
            .ok_or_else(|| StoreError::NoSuchBlob(location.to_string()))?;
        self.meter.charge(&self.latency, data.len());
        if crc32(data) != *crc {
            return Err(StoreError::ChecksumMismatch {
                location: location.to_string(),
            });
        }
        Ok(data.clone())
    }

    fn delete(&self, location: &BlobLocation) -> Result<()> {
        if self.faults.should_fail(sites::BLOB_DELETE) {
            return Err(StoreError::InjectedFault(sites::BLOB_DELETE));
        }
        let mut blobs = self.blobs.write();
        match blobs.remove(location) {
            Some(_) => Ok(()),
            None => Err(StoreError::NoSuchBlob(location.to_string())),
        }
    }

    fn contains(&self, location: &BlobLocation) -> bool {
        self.blobs.read().contains_key(location)
    }

    fn blob_count(&self) -> usize {
        self.blobs.read().len()
    }

    fn total_bytes(&self) -> u64 {
        self.blobs
            .read()
            .values()
            .map(|(d, _)| d.len() as u64)
            .sum()
    }

    fn list(&self) -> Vec<BlobLocation> {
        self.blobs.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = MemoryBlobStore::new();
        let info = store.put(Bytes::from_static(b"model bytes")).unwrap();
        assert_eq!(info.size, 11);
        let back = store.get(&info.location).unwrap();
        assert_eq!(&back[..], b"model bytes");
    }

    #[test]
    fn identical_content_gets_distinct_locations() {
        let store = MemoryBlobStore::new();
        let a = store.put(Bytes::from_static(b"same")).unwrap();
        let b = store.put(Bytes::from_static(b"same")).unwrap();
        assert_ne!(a.location, b.location);
        assert_eq!(store.blob_count(), 2);
    }

    #[test]
    fn missing_blob_errors() {
        let store = MemoryBlobStore::new();
        let err = store.get(&BlobLocation::new("mem://nope"));
        assert!(matches!(err, Err(StoreError::NoSuchBlob(_))));
    }

    #[test]
    fn corruption_detected() {
        let store = MemoryBlobStore::new();
        let info = store.put(Bytes::from_static(b"precious weights")).unwrap();
        store.corrupt(&info.location);
        let err = store.get(&info.location);
        assert!(matches!(err, Err(StoreError::ChecksumMismatch { .. })));
    }

    #[test]
    fn injected_put_fault() {
        let plan = FaultPlan::none();
        plan.fail_always(sites::BLOB_PUT);
        let store = MemoryBlobStore::new().with_faults(plan);
        let err = store.put(Bytes::from_static(b"x"));
        assert!(matches!(err, Err(StoreError::InjectedFault(_))));
        assert_eq!(store.blob_count(), 0);
    }

    #[test]
    fn latency_is_metered() {
        let store = MemoryBlobStore::new().with_latency(LatencyModel {
            per_request: std::time::Duration::from_millis(10),
            per_byte_ns: 0.0,
            real_sleep: false,
        });
        let meter = store.meter();
        let info = store.put(Bytes::from_static(b"x")).unwrap();
        let _ = store.get(&info.location).unwrap();
        assert_eq!(meter.requests(), 2);
        assert_eq!(meter.total(), std::time::Duration::from_millis(20));
    }

    #[test]
    fn delete_removes_and_reports_missing() {
        let store = MemoryBlobStore::new();
        let info = store.put(Bytes::from_static(b"orphan")).unwrap();
        store.delete(&info.location).unwrap();
        assert_eq!(store.blob_count(), 0);
        let err = store.delete(&info.location);
        assert!(matches!(err, Err(StoreError::NoSuchBlob(_))));
    }

    #[test]
    fn injected_delete_fault_leaves_blob() {
        let plan = FaultPlan::none();
        plan.fail_always(sites::BLOB_DELETE);
        let store = MemoryBlobStore::new().with_faults(plan);
        let info = store.put(Bytes::from_static(b"sticky")).unwrap();
        assert!(matches!(
            store.delete(&info.location),
            Err(StoreError::InjectedFault(_))
        ));
        assert_eq!(store.blob_count(), 1);
    }

    #[test]
    fn accounting() {
        let store = MemoryBlobStore::new();
        store.put(Bytes::from(vec![0u8; 100])).unwrap();
        store.put(Bytes::from(vec![0u8; 50])).unwrap();
        assert_eq!(store.total_bytes(), 150);
        assert_eq!(store.list().len(), 2);
    }
}

#[cfg(test)]
mod put_at_tests {
    use super::*;

    #[test]
    fn put_at_roundtrip_and_conflict() {
        let store = MemoryBlobStore::new();
        let loc = BlobLocation::new("mem://chosen-1");
        let info = store.put_at(&loc, Bytes::from_static(b"x")).unwrap();
        assert_eq!(info.location, loc);
        assert_eq!(store.get(&loc).unwrap(), Bytes::from_static(b"x"));
        // overwriting an existing location is rejected (immutability)
        assert!(store.put_at(&loc, Bytes::from_static(b"y")).is_err());
    }

    #[test]
    fn localfs_does_not_support_put_at() {
        let dir = std::env::temp_dir().join(format!("gallery-putat-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = crate::blob::localfs::LocalFsBlobStore::open(&dir).unwrap();
        assert!(store
            .put_at(&BlobLocation::new("fs://custom"), Bytes::from_static(b"x"))
            .is_err());
    }
}
