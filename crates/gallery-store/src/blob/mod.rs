//! Blob storage: Gallery's stand-in for Uber's S3/HDFS-backed large data
//! storage service (§3.5).
//!
//! Model instance blobs are opaque binaries (model-neutral, §3.1). The
//! store hands back an opaque [`BlobLocation`] which the metadata layer
//! records next to the instance; at serving time the location is resolved
//! back to bytes, optionally through an LRU cache.

pub mod cache;
pub mod checksum;
pub mod localfs;
pub mod memory;

use crate::error::Result;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque blob address, e.g. `mem://a1b2c3...` or `fs://shard/af/af12...`.
/// Analogous to the HDFS/S3 path stored in instance metadata in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlobLocation(pub String);

impl BlobLocation {
    pub fn new(s: impl Into<String>) -> Self {
        BlobLocation(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlobLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Metadata about one stored blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobInfo {
    pub location: BlobLocation,
    pub size: usize,
    pub crc32: u32,
}

/// Abstract object store. Implementations: [`memory::MemoryBlobStore`]
/// (default, fast, supports fault injection) and
/// [`localfs::LocalFsBlobStore`] (durable, content-sharded directories).
///
/// Blobs are immutable: `put` always creates a new location; there is no
/// overwrite or delete in the public API (deprecation is a metadata flag,
/// §3.7). Implementations must verify checksums on `get`.
pub trait ObjectStore: Send + Sync {
    /// Store a blob, returning its new, unique location.
    fn put(&self, data: Bytes) -> Result<BlobInfo>;

    /// Mint a fresh location without storing anything (needed by the
    /// unsafe metadata-first ordering ablation, where the location must be
    /// known before the blob exists). Backends may not support this.
    fn reserve(&self) -> Result<BlobLocation> {
        Err(crate::error::StoreError::Io(
            "backend does not support location reservation".to_string(),
        ))
    }

    /// Store a blob at a caller-chosen location (the counterpart of
    /// [`ObjectStore::reserve`]). Backends may not support this.
    fn put_at(&self, location: &BlobLocation, _data: Bytes) -> Result<BlobInfo> {
        Err(crate::error::StoreError::Io(format!(
            "backend does not support caller-chosen locations ({location})"
        )))
    }

    /// Fetch a blob by location, verifying integrity.
    fn get(&self, location: &BlobLocation) -> Result<Bytes>;

    /// Delete the blob at `location`. Blobs referenced by metadata are
    /// immutable and never deleted (deprecation is a metadata flag, §3.7);
    /// this exists solely so the repair pass can garbage-collect *orphan*
    /// blobs left behind by interrupted blob-first writes. Backends may
    /// not support it.
    fn delete(&self, location: &BlobLocation) -> Result<()> {
        Err(crate::error::StoreError::Io(format!(
            "backend does not support delete ({location})"
        )))
    }

    /// Best-effort cache peek: return the blob only if it can be served
    /// without touching the (possibly failing) backend. The default store
    /// has no cache and returns `None`; [`cache::CachedBlobStore`]
    /// overrides this to serve from its LRU. Used for graceful degradation
    /// — callers must treat the result as potentially stale.
    fn get_cached_only(&self, _location: &BlobLocation) -> Option<Bytes> {
        None
    }

    /// Whether a blob exists at the location.
    fn contains(&self, location: &BlobLocation) -> bool;

    /// Number of blobs stored.
    fn blob_count(&self) -> usize;

    /// Total payload bytes stored.
    fn total_bytes(&self) -> u64;

    /// Locations of every stored blob (used by the consistency checker to
    /// find orphans). Order unspecified.
    fn list(&self) -> Vec<BlobLocation>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_display_roundtrip() {
        let loc = BlobLocation::new("mem://abc");
        assert_eq!(loc.to_string(), "mem://abc");
        assert_eq!(loc.as_str(), "mem://abc");
    }
}
