//! LRU read-through cache in front of an [`ObjectStore`].
//!
//! §3.5: "The cache is updated with the requested blob and then is
//! subsequently returned to the user." The budget is in bytes because model
//! blobs range "from a few KBs to 10s GBs" (§3.3.2) — counting entries
//! would let one huge deep-learning blob evict nothing.

use super::{BlobInfo, BlobLocation, ObjectStore};
use crate::error::Result;
use bytes::Bytes;
use gallery_sync::locks::OrderedMutex;
use gallery_sync::rank;
use gallery_telemetry::{kinds, Counter, Gauge, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Doubly-linked LRU implemented over a slab of entries.
struct LruList {
    entries: Vec<LruEntry>,
    head: Option<usize>, // most recently used
    tail: Option<usize>, // least recently used
    free: Vec<usize>,
}

struct LruEntry {
    location: BlobLocation,
    data: Bytes,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruList {
    fn new() -> Self {
        LruList {
            entries: Vec::new(),
            head: None,
            tail: None,
            free: Vec::new(),
        }
    }

    fn push_front(&mut self, location: BlobLocation, data: Bytes) -> usize {
        let entry = LruEntry {
            location,
            data,
            prev: None,
            next: self.head,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx] = entry;
                idx
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        if let Some(h) = self.head {
            self.entries[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
        idx
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        match prev {
            Some(p) => self.entries[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.entries[n].prev = prev,
            None => self.tail = prev,
        }
        self.entries[idx].prev = None;
        self.entries[idx].next = None;
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == Some(idx) {
            return;
        }
        self.unlink(idx);
        let old_head = self.head;
        self.entries[idx].next = old_head;
        if let Some(h) = old_head {
            self.entries[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    fn pop_back(&mut self) -> Option<(BlobLocation, usize)> {
        let idx = self.tail?;
        self.unlink(idx);
        self.free.push(idx);
        let size = self.entries[idx].data.len();
        let loc = self.entries[idx].location.clone();
        self.entries[idx].data = Bytes::new();
        Some((loc, size))
    }
}

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes_cached: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheInner {
    lru: LruList,
    by_location: HashMap<BlobLocation, usize>,
    bytes: usize,
}

/// Telemetry handles behind [`CacheStats`]. These are the *only* tallies —
/// the ad-hoc counters that used to live inside the cache lock are gone,
/// so the exposition and `stats()` can never disagree. Handles are
/// standalone (per-instance) by default and registry-minted after
/// [`CachedBlobStore::with_telemetry`].
struct CacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    bytes_cached: Arc<Gauge>,
    telemetry: Arc<Telemetry>,
}

impl CacheMetrics {
    fn standalone() -> Self {
        CacheMetrics {
            hits: Counter::standalone(),
            misses: Counter::standalone(),
            evictions: Counter::standalone(),
            bytes_cached: Gauge::standalone(),
            telemetry: Arc::clone(gallery_telemetry::global()),
        }
    }

    fn registered(telemetry: Arc<Telemetry>) -> Self {
        let r = telemetry.registry();
        CacheMetrics {
            hits: r.counter("gallery_cache_hits_total", &[]),
            misses: r.counter("gallery_cache_misses_total", &[]),
            evictions: r.counter("gallery_cache_evictions_total", &[]),
            bytes_cached: r.gauge("gallery_cache_bytes", &[]),
            telemetry,
        }
    }
}

/// Read-through LRU blob cache wrapping any [`ObjectStore`].
pub struct CachedBlobStore {
    backend: Arc<dyn ObjectStore>,
    capacity_bytes: usize,
    inner: OrderedMutex<CacheInner>,
    metrics: CacheMetrics,
}

impl CachedBlobStore {
    pub fn new(backend: Arc<dyn ObjectStore>, capacity_bytes: usize) -> Self {
        CachedBlobStore {
            backend,
            capacity_bytes,
            inner: OrderedMutex::new(
                rank::BLOB_CACHE,
                CacheInner {
                    lru: LruList::new(),
                    by_location: HashMap::new(),
                    bytes: 0,
                },
            ),
            metrics: CacheMetrics::standalone(),
        }
    }

    /// Record hit/miss/eviction tallies into `telemetry`'s registry (as
    /// `gallery_cache_*`) and emit eviction events to its sink, instead of
    /// per-instance standalone handles. Call before first use.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.metrics = CacheMetrics::registered(telemetry);
        self
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            evictions: self.metrics.evictions.get(),
            bytes_cached: self.metrics.bytes_cached.get() as u64,
        }
    }

    pub fn backend(&self) -> &Arc<dyn ObjectStore> {
        &self.backend
    }

    fn admit(&self, inner: &mut CacheInner, location: BlobLocation, data: Bytes) {
        if data.len() > self.capacity_bytes {
            return; // larger than the whole cache: don't thrash
        }
        while inner.bytes + data.len() > self.capacity_bytes {
            match inner.lru.pop_back() {
                Some((loc, size)) => {
                    inner.by_location.remove(&loc);
                    inner.bytes -= size;
                    self.metrics.evictions.inc();
                    self.metrics.telemetry.events().emit(
                        kinds::CACHE_EVICT,
                        vec![("location", loc.to_string()), ("bytes", size.to_string())],
                    );
                }
                None => break,
            }
        }
        inner.bytes += data.len();
        self.metrics.bytes_cached.set(inner.bytes as i64);
        let idx = inner.lru.push_front(location.clone(), data);
        inner.by_location.insert(location, idx);
    }
}

impl ObjectStore for CachedBlobStore {
    fn put(&self, data: Bytes) -> Result<BlobInfo> {
        let info = self.backend.put(data.clone())?;
        // Write-through admit: freshly trained models are usually served
        // immediately (champion selection), so warm the cache on put.
        let mut inner = self.inner.lock();
        self.admit(&mut inner, info.location.clone(), data);
        Ok(info)
    }

    fn reserve(&self) -> Result<BlobLocation> {
        self.backend.reserve()
    }

    fn put_at(&self, location: &BlobLocation, data: Bytes) -> Result<BlobInfo> {
        let info = self.backend.put_at(location, data.clone())?;
        let mut inner = self.inner.lock();
        self.admit(&mut inner, info.location.clone(), data);
        Ok(info)
    }

    fn get(&self, location: &BlobLocation) -> Result<Bytes> {
        {
            let mut inner = self.inner.lock();
            if let Some(&idx) = inner.by_location.get(location) {
                inner.lru.move_to_front(idx);
                self.metrics.hits.inc();
                return Ok(inner.lru.entries[idx].data.clone());
            }
            self.metrics.misses.inc();
        }
        let data = self.backend.get(location)?;
        let mut inner = self.inner.lock();
        if !inner.by_location.contains_key(location) {
            self.admit(&mut inner, location.clone(), data.clone());
        }
        Ok(data)
    }

    fn delete(&self, location: &BlobLocation) -> Result<()> {
        // Invalidate the cache entry first so a failed backend delete never
        // leaves us serving bytes the caller believes are gone.
        {
            let mut inner = self.inner.lock();
            if let Some(idx) = inner.by_location.remove(location) {
                inner.lru.unlink(idx);
                inner.lru.free.push(idx);
                let size = inner.lru.entries[idx].data.len();
                inner.lru.entries[idx].data = Bytes::new();
                inner.bytes -= size;
                self.metrics.bytes_cached.set(inner.bytes as i64);
            }
        }
        self.backend.delete(location)
    }

    fn get_cached_only(&self, location: &BlobLocation) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        let &idx = inner.by_location.get(location)?;
        inner.lru.move_to_front(idx);
        Some(inner.lru.entries[idx].data.clone())
    }

    fn contains(&self, location: &BlobLocation) -> bool {
        self.inner.lock().by_location.contains_key(location) || self.backend.contains(location)
    }

    fn blob_count(&self) -> usize {
        self.backend.blob_count()
    }

    fn total_bytes(&self) -> u64 {
        self.backend.total_bytes()
    }

    fn list(&self) -> Vec<BlobLocation> {
        self.backend.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blob::memory::MemoryBlobStore;

    fn cached(capacity: usize) -> CachedBlobStore {
        CachedBlobStore::new(Arc::new(MemoryBlobStore::new()), capacity)
    }

    #[test]
    fn read_through_and_hit() {
        let store = cached(1024);
        let info = store.backend.put(Bytes::from_static(b"blob")).unwrap();
        assert_eq!(
            store.get(&info.location).unwrap(),
            Bytes::from_static(b"blob")
        );
        assert_eq!(store.stats().misses, 1);
        let _ = store.get(&info.location).unwrap();
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn put_warms_cache() {
        let store = cached(1024);
        let info = store.put(Bytes::from_static(b"warm")).unwrap();
        let _ = store.get(&info.location).unwrap();
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 0);
    }

    #[test]
    fn eviction_by_byte_budget() {
        let store = cached(100);
        let a = store.put(Bytes::from(vec![1u8; 60])).unwrap();
        let _b = store.put(Bytes::from(vec![2u8; 60])).unwrap(); // evicts a
        assert_eq!(store.stats().evictions, 1);
        let _ = store.get(&a.location).unwrap(); // miss, refetch
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn lru_order_respected() {
        let store = cached(100);
        let a = store.put(Bytes::from(vec![1u8; 40])).unwrap();
        let b = store.put(Bytes::from(vec![2u8; 40])).unwrap();
        let _ = store.get(&a.location).unwrap(); // a is now MRU
        let _c = store.put(Bytes::from(vec![3u8; 40])).unwrap(); // evicts b
        {
            let inner = store.inner.lock();
            assert!(inner.by_location.contains_key(&a.location));
            assert!(!inner.by_location.contains_key(&b.location));
        }
    }

    #[test]
    fn oversized_blob_not_admitted() {
        let store = cached(10);
        let info = store.put(Bytes::from(vec![0u8; 100])).unwrap();
        assert_eq!(store.stats().bytes_cached, 0);
        // still retrievable from backend
        assert_eq!(store.get(&info.location).unwrap().len(), 100);
    }

    #[test]
    fn cached_only_peek_serves_without_backend() {
        use crate::fault::{sites, FaultPlan};
        let plan = FaultPlan::none();
        let backend = Arc::new(MemoryBlobStore::new().with_faults(plan.clone()));
        let store = CachedBlobStore::new(backend, 1024);
        let info = store.put(Bytes::from_static(b"degraded")).unwrap();
        // Take the backend down entirely: normal reads fail, peek survives.
        plan.fail_always(sites::BLOB_GET);
        assert_eq!(
            store.get_cached_only(&info.location),
            Some(Bytes::from_static(b"degraded"))
        );
        assert_eq!(
            store.get_cached_only(&BlobLocation::new("mem://cold")),
            None
        );
    }

    #[test]
    fn delete_invalidates_cache_entry() {
        let store = cached(1024);
        let info = store.put(Bytes::from_static(b"orphan")).unwrap();
        store.delete(&info.location).unwrap();
        assert_eq!(store.get_cached_only(&info.location), None);
        assert!(!store.contains(&info.location));
        assert_eq!(store.stats().bytes_cached, 0);
    }

    #[test]
    fn hit_rate() {
        let store = cached(1024);
        let info = store.backend.put(Bytes::from_static(b"x")).unwrap();
        let _ = store.get(&info.location);
        let _ = store.get(&info.location);
        let _ = store.get(&info.location);
        let s = store.stats();
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod put_at_tests {
    use super::*;
    use crate::blob::memory::MemoryBlobStore;

    #[test]
    fn put_at_delegates_and_warms_cache() {
        let cache = CachedBlobStore::new(Arc::new(MemoryBlobStore::new()), 1024);
        let loc = BlobLocation::new("mem://fixed");
        cache.put_at(&loc, Bytes::from_static(b"pinned")).unwrap();
        let _ = cache.get(&loc).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0);
    }
}
