//! # gallery-store
//!
//! Storage substrate for the Gallery model-management system (reproduction
//! of *Gallery: A Machine Learning Model Management System at Uber*,
//! EDBT 2020, §3.5).
//!
//! Gallery stores structured metadata in a relational database (MySQL at
//! Uber) and opaque model blobs in a large object store (S3/HDFS at Uber),
//! joined by a unified data access layer (DAL). This crate provides
//! embedded, from-scratch equivalents:
//!
//! - [`meta::MetadataStore`] — typed tables with hash/btree secondary
//!   indexes, constraint queries with a small planner, and WAL-based
//!   durability;
//! - [`blob`] — an [`blob::ObjectStore`] trait with in-memory and local-FS
//!   backends, CRC-32 integrity, an LRU byte-budget cache, simulated
//!   backend latency, and fault injection;
//! - [`dal::Dal`] — the unified access layer enforcing the paper's
//!   blob-first write ordering and auditing referential integrity.
//!
//! Every layer is instrumented through [`gallery_telemetry`] (re-exported
//! as [`telemetry`]): DAL and blob operations count into
//! `gallery_dal_*`/`gallery_blob_*`, the WAL into `gallery_wal_*`, and the
//! LRU cache into `gallery_cache_*`. Constructors default to the
//! process-global bundle; `with_telemetry` builders swap in an isolated
//! one.

pub mod blob;
pub mod dal;
pub mod error;
pub mod fault;
pub mod index;
pub mod latency;
pub mod meta;
pub mod query;
pub mod record;
pub mod schema;
pub mod ship;
pub mod simfs;
pub mod table;
pub mod testkit;
pub mod value;
pub mod wal;

pub use gallery_telemetry as telemetry;

pub use blob::{BlobInfo, BlobLocation, ObjectStore};
pub use dal::{ConsistencyReport, Dal, DegradedRead, RepairReport, StoredEntity, WriteOrdering};
pub use error::{Result, StoreError};
pub use fault::FaultPlan;
pub use latency::{LatencyMeter, LatencyModel};
pub use meta::{MetadataStore, ShipApply, SlowQueryEntry, SlowQueryLog, StoreConfig};
pub use query::{AccessPath, Constraint, Explain, Op, OrderBy, Query};
pub use record::Record;
pub use schema::{ColumnDef, IndexKind, TableSchema};
pub use ship::{ShipFrame, ShipReport};
pub use simfs::{real_fs, FileSystem, FsFile, RealFs, SimFaultPlan, SimFs};
pub use value::{Value, ValueType};
pub use wal::{GroupCommitConfig, SyncPolicy, WalOp};
