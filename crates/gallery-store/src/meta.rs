//! The metadata store: named tables, sharded internal locking, group
//! commit, optionally durable through a [`Wal`]. This is Gallery's
//! stand-in for the HA MySQL service of §3.5 — it provides typed rows,
//! secondary indexes, flexible constraint queries, and durability;
//! replication/HA is out of scope (see DESIGN.md substitutions).
//!
//! ## Write path
//!
//! A local mutation (a) takes the *commit gate* read lock (compaction
//! quiesces writers by taking it in write mode), (b) validates against the
//! schema and checks duplicates under the row's *stripe* write lock (see
//! [`Table`] for the striping), (c) commits the op through the group
//! [`Committer`] — which coalesces concurrent commits into one WAL write +
//! one fsync and assigns the op its global sequence number — and (d)
//! applies the op to the stripe, still under the stripe lock. Because the
//! stripe lock spans steps (b)–(d), per-stripe apply order equals WAL
//! order and the WAL never contains an op that fails on replay.
//!
//! Lock order (outer to inner): gate → catalog → stripe → oplog/commit
//! queue. The committer itself never takes catalog or stripe locks.

use crate::error::{Result, StoreError};
use crate::fault::{sites, FaultPlan};
use crate::query::{AccessPath, Explain, Query};
use crate::record::Record;
use crate::schema::TableSchema;
use crate::simfs::{real_fs, FileSystem};
use crate::table::{IndexDeltaCounters, StripeLockMetrics, Table, TableStats};
use crate::wal::{
    new_shared_oplog, Committer, GroupCommitConfig, SharedOplog, SyncPolicy, Wal, WalOp,
};
use gallery_sync::locks::{OrderedMutex, OrderedRwLock};
use gallery_sync::rank;
use gallery_telemetry::{kinds, Counter, Histogram, Telemetry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Tuning knobs for the store's write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Lock stripes per table (clamped to
    /// [`crate::table::MAX_LOCK_STRIPES`]). 1 reproduces the old
    /// store-wide single lock.
    pub lock_stripes: usize,
    /// Rows a stripe accumulates before applying its pending secondary
    /// index delta. 1 reproduces eager (per-insert) index maintenance.
    pub index_batch: usize,
    /// Group-commit batching for the WAL.
    pub group_commit: GroupCommitConfig,
    /// Queries at least this slow (total executor milliseconds) are
    /// captured into the slow-query ring. 0 captures *every* query,
    /// turning the ring into a recent-query log — the default, so
    /// `gallery slowlog` has something to show on an idle dev store.
    pub slow_query_ms: u64,
    /// Bounded capacity of the slow-query ring.
    pub slow_query_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            lock_stripes: 16,
            index_batch: 1024,
            group_commit: GroupCommitConfig::default(),
            slow_query_ms: 0,
            slow_query_capacity: SlowQueryLog::DEFAULT_CAPACITY,
        }
    }
}

/// Outcome of [`MetadataStore::apply_shipped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipApply {
    /// The op was committed at the given sequence.
    Applied,
    /// The local log already contains this sequence; nothing was done.
    AlreadyApplied,
    /// The op is ahead of the local log; the shipper must resend from
    /// `expected`.
    Gap { expected: u64 },
}

/// The four values [`AccessPath::shape`] can take. Per-shape metric
/// cardinality is bounded by this list — shapes are plan classes, never
/// user data.
const QUERY_SHAPES: [&str; 4] = ["pk", "index_eq", "index_range", "full_scan"];

/// Wait-time bucket bounds for stripe lock acquisition, in ms. Coarser
/// than the default duration buckets: there are up to
/// [`crate::table::MAX_LOCK_STRIPES`] stripes, and lock contention is an
/// order-of-magnitude question.
fn stripe_wait_buckets_ms() -> Vec<f64> {
    vec![0.001, 0.01, 0.1, 1.0, 10.0, 100.0]
}

/// Store-level metric handles (`gallery_meta_*`, `gallery_store_*`),
/// re-minted whenever the telemetry sink changes.
struct MetaMetrics {
    delta: IndexDeltaCounters,
    /// Per-stripe lock contention handles; the `stripe` label is the
    /// stripe index, so cardinality is capped at the configured (clamped)
    /// stripe count.
    stripe_locks: StripeLockMetrics,
    /// Per-plan-shape query counter + latency histogram, pre-minted for
    /// every possible shape so the query hot path never touches the
    /// registry's mint lock.
    query_shapes: Vec<(&'static str, Arc<Counter>, Arc<Histogram>)>,
    /// Queries captured into the slow-query ring.
    slow_queries: Arc<Counter>,
}

impl MetaMetrics {
    fn query_shape(&self, shape: &str) -> Option<(&Arc<Counter>, &Arc<Histogram>)> {
        self.query_shapes
            .iter()
            .find(|(s, _, _)| *s == shape)
            .map(|(_, c, h)| (c, h))
    }
}

fn mint_metrics(telemetry: &Telemetry, cfg: &StoreConfig) -> MetaMetrics {
    let r = telemetry.registry();
    let stripes = cfg.lock_stripes.clamp(1, crate::table::MAX_LOCK_STRIPES);
    r.gauge("gallery_meta_lock_stripes", &[])
        .set(stripes as i64);
    let stripe_locks = StripeLockMetrics {
        wait_ms: (0..stripes)
            .map(|i| {
                r.histogram(
                    "gallery_store_stripe_lock_wait_ms",
                    &[("stripe", &i.to_string())],
                    stripe_wait_buckets_ms(),
                )
            })
            .collect(),
        hold_us_total: (0..stripes)
            .map(|i| {
                r.counter(
                    "gallery_store_stripe_lock_hold_us_total",
                    &[("stripe", &i.to_string())],
                )
            })
            .collect(),
    };
    MetaMetrics {
        delta: IndexDeltaCounters {
            flushes: r.counter("gallery_meta_index_delta_flushes_total", &[]),
            applied: r.counter("gallery_meta_index_delta_applied_total", &[]),
        },
        stripe_locks,
        query_shapes: QUERY_SHAPES
            .iter()
            .map(|s| {
                (
                    *s,
                    r.counter("gallery_store_query_total", &[("shape", s)]),
                    r.duration_histogram("gallery_store_query_duration_ms", &[("shape", s)]),
                )
            })
            .collect(),
        slow_queries: r.counter("gallery_store_slow_queries_total", &[]),
    }
}

/// One capture in the slow-query ring: where the query ran, its full
/// [`Explain`] artifact, and the trace active on the calling thread when
/// it executed (0 when none).
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    pub table: String,
    pub explain: Explain,
    pub total_ms: f64,
    pub trace_id: u64,
}

struct SlowLogInner {
    ring: VecDeque<SlowQueryEntry>,
    total: u64,
    dropped: u64,
}

/// Bounded ring of recent slow queries — FlightRecorder-style: always on,
/// cheap to keep, inspected after the fact via `Probe{"slowlog"}` or
/// `gallery slowlog`. Threshold and capacity come from [`StoreConfig`].
pub struct SlowQueryLog {
    threshold_ms: u64,
    capacity: usize,
    inner: OrderedMutex<SlowLogInner>,
}

impl SlowQueryLog {
    pub const DEFAULT_CAPACITY: usize = 64;

    fn new(threshold_ms: u64, capacity: usize) -> Self {
        SlowQueryLog {
            threshold_ms,
            capacity: capacity.max(1),
            inner: OrderedMutex::new(
                rank::SLOW_LOG,
                SlowLogInner {
                    ring: VecDeque::new(),
                    total: 0,
                    dropped: 0,
                },
            ),
        }
    }

    /// Queries at or above this total latency are captured; 0 captures
    /// every query.
    pub fn threshold_ms(&self) -> u64 {
        self.threshold_ms
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn record(&self, entry: SlowQueryEntry) {
        let mut inner = self.inner.lock();
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(entry);
        inner.total += 1;
    }

    /// Retained captures, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Captures ever recorded, including evicted ones.
    pub fn total(&self) -> u64 {
        self.inner.lock().total
    }

    /// Captures evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.ring.clear();
        inner.total = 0;
        inner.dropped = 0;
    }

    /// Human-readable dump, newest first — the payload behind
    /// `Probe{"slowlog"}` and `gallery slowlog`.
    pub fn render_text(&self) -> String {
        // Snapshot under the lock, format outside it: rendering a full
        // dump (explain artifacts included) is milliseconds of string
        // work, and the ring lock sits on the query hot path.
        let (entries, total, dropped) = {
            let inner = self.inner.lock();
            (
                inner.ring.iter().cloned().collect::<Vec<_>>(),
                inner.total,
                inner.dropped,
            )
        };
        let mut out = format!(
            "# slow-query log: {} retained, {} captured, {} evicted, threshold {} ms\n",
            entries.len(),
            total,
            dropped,
            self.threshold_ms
        );
        for (i, e) in entries.iter().rev().enumerate() {
            let _ = writeln!(
                out,
                "[{}] table={} shape={} total_ms={:.3} trace_id={}",
                i + 1,
                e.table,
                e.explain.shape(),
                e.total_ms,
                e.trace_id
            );
            for line in e.explain.render().lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

/// Thread-safe, optionally durable metadata store.
pub struct MetadataStore {
    /// Table name -> table. Tables are internally striped, so the catalog
    /// lock is only held to look up or create tables, never across a
    /// commit (except by `create_table`, which must be atomic with its
    /// duplicate check).
    catalog: OrderedRwLock<HashMap<String, Arc<Table>>>,
    /// The logical operation log, in commit order. Sequence numbers are
    /// 1-based positions into this vector. This is what WAL shipping
    /// replicates: a leader serves `ops_since`, a follower applies through
    /// `apply_shipped`. Recovery seeds it from the physical WAL, so a
    /// restarted follower resumes at exactly the sequence its disk holds.
    oplog: SharedOplog,
    /// Group-commit front end over the WAL; `None` for in-memory stores
    /// (they push straight to the oplog).
    committer: Option<Committer>,
    /// Commit gate: every mutation holds it in read mode for its full
    /// duration; compaction takes write mode to quiesce the write path.
    gate: OrderedRwLock<()>,
    /// Serializes `apply_shipped` callers so the seq check and commit are
    /// atomic. A store is a shipping leader XOR a follower: local writes
    /// and `apply_shipped` must not interleave (see docs/replication.md).
    ship_lock: OrderedMutex<()>,
    cfg: StoreConfig,
    faults: FaultPlan,
    telemetry: Arc<Telemetry>,
    fs: Arc<dyn FileSystem>,
    metrics: OrderedRwLock<MetaMetrics>,
    slow_log: SlowQueryLog,
}

impl MetadataStore {
    /// Purely in-memory store.
    pub fn in_memory() -> Self {
        Self::in_memory_with_config(StoreConfig::default())
    }

    /// [`MetadataStore::in_memory`] with explicit write-path tuning.
    pub fn in_memory_with_config(cfg: StoreConfig) -> Self {
        let telemetry = Arc::clone(gallery_telemetry::global());
        let metrics = mint_metrics(&telemetry, &cfg);
        MetadataStore {
            catalog: OrderedRwLock::new(rank::CATALOG, HashMap::new()),
            oplog: new_shared_oplog(),
            committer: None,
            gate: OrderedRwLock::new(rank::GATE, ()),
            ship_lock: OrderedMutex::new(rank::SHIP_LOCK, ()),
            cfg,
            faults: FaultPlan::none(),
            telemetry,
            fs: real_fs(),
            metrics: OrderedRwLock::new(rank::META_METRICS, metrics),
            slow_log: SlowQueryLog::new(cfg.slow_query_ms, cfg.slow_query_capacity),
        }
    }

    /// Store durable through a WAL at `path`. Replays any existing log;
    /// a torn final record (the expected crash artifact) is truncated away
    /// and surfaced through telemetry (see [`Wal::recover`]).
    pub fn durable(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self> {
        Self::durable_with(
            real_fs(),
            path,
            sync,
            Arc::clone(gallery_telemetry::global()),
        )
    }

    /// [`MetadataStore::durable`] over an explicit file system (the
    /// crash-consistency harness passes a [`crate::simfs::SimFs`]).
    pub fn durable_with_fs(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
    ) -> Result<Self> {
        Self::durable_with(fs, path, sync, Arc::clone(gallery_telemetry::global()))
    }

    /// Fully explicit durable constructor: file system *and* telemetry.
    /// Recovery-time events (torn-tail truncation) land in `telemetry`,
    /// which `with_telemetry` — running after the fact — could not capture.
    pub fn durable_with(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self> {
        Self::durable_with_config(fs, path, sync, telemetry, StoreConfig::default())
    }

    /// [`MetadataStore::durable_with`] with explicit write-path tuning.
    /// The config must be supplied at construction because recovery
    /// replay already builds (striped) tables.
    pub fn durable_with_config(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
        telemetry: Arc<Telemetry>,
        cfg: StoreConfig,
    ) -> Result<Self> {
        let path = path.as_ref();
        let ops = Wal::recover(&*fs, path, &telemetry)?;
        let metrics = mint_metrics(&telemetry, &cfg);
        let mut store = MetadataStore {
            catalog: OrderedRwLock::new(rank::CATALOG, HashMap::new()),
            oplog: new_shared_oplog(),
            committer: None,
            gate: OrderedRwLock::new(rank::GATE, ()),
            ship_lock: OrderedMutex::new(rank::SHIP_LOCK, ()),
            cfg,
            faults: FaultPlan::none(),
            telemetry,
            fs,
            metrics: OrderedRwLock::new(rank::META_METRICS, metrics),
            slow_log: SlowQueryLog::new(cfg.slow_query_ms, cfg.slow_query_capacity),
        };
        {
            // The oplog ranks after the stripes, so it is locked briefly
            // per op rather than held across `apply_to_tables` (which
            // takes stripe locks). Recovery is single-threaded; this is
            // purely lock-order hygiene.
            let mut catalog = store.catalog.write();
            for (i, op) in ops.into_iter().enumerate() {
                store.apply_to_tables(&mut catalog, &op, i as u64 + 1)?;
                store.oplog.lock().push(Arc::new(op));
            }
        }
        let wal =
            Wal::open_with_fs(Arc::clone(&store.fs), path, sync)?.with_telemetry(&store.telemetry);
        let committer = Committer::new(
            wal,
            store.cfg.group_commit,
            Arc::clone(store.telemetry.time_source()),
            Arc::clone(&store.oplog),
        );
        committer.set_telemetry(&store.telemetry);
        store.committer = Some(committer);
        Ok(store)
    }

    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Route WAL metrics/events to `telemetry` instead of the process
    /// global (isolated tests, E15 overhead baselines).
    pub fn with_telemetry(self, telemetry: Arc<Telemetry>) -> Self {
        if let Some(c) = &self.committer {
            c.wal().lock().set_telemetry(&telemetry);
            c.set_telemetry(&telemetry);
        }
        let metrics = mint_metrics(&telemetry, &self.cfg);
        for table in self.catalog.read().values() {
            table.set_delta_counters(metrics.delta.clone());
            table.set_lock_metrics(metrics.stripe_locks.clone());
        }
        *self.metrics.write() = metrics;
        MetadataStore { telemetry, ..self }
    }

    /// The store's write-path configuration.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    fn new_table(&self, schema: TableSchema) -> Arc<Table> {
        let table = Table::with_config(schema, self.cfg.lock_stripes, self.cfg.index_batch);
        let metrics = self.metrics.read();
        table.set_delta_counters(metrics.delta.clone());
        table.set_lock_metrics(metrics.stripe_locks.clone());
        Arc::new(table)
    }

    fn table_arc(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))
    }

    /// Commit one op: WAL (group commit) first for durability, then the
    /// oplog, which assigns the sequence. In-memory stores skip the WAL.
    fn commit(&self, op: WalOp) -> Result<u64> {
        match &self.committer {
            Some(c) => c.commit(op),
            None => {
                let mut oplog = self.oplog.lock();
                oplog.push(Arc::new(op));
                Ok(oplog.len() as u64)
            }
        }
    }

    fn commit_many(&self, ops: Vec<WalOp>) -> Result<Vec<u64>> {
        match &self.committer {
            Some(c) => c.commit_many(ops),
            None => {
                let mut oplog = self.oplog.lock();
                Ok(ops
                    .into_iter()
                    .map(|op| {
                        oplog.push(Arc::new(op));
                        oplog.len() as u64
                    })
                    .collect())
            }
        }
    }

    /// Apply an op directly to the tables (recovery replay: the op is
    /// already durable, so there is nothing to commit).
    fn apply_to_tables(
        &self,
        catalog: &mut HashMap<String, Arc<Table>>,
        op: &WalOp,
        seq: u64,
    ) -> Result<()> {
        match op {
            WalOp::CreateTable { schema } => {
                if catalog.contains_key(&schema.name) {
                    return Err(StoreError::TableExists(schema.name.clone()));
                }
                catalog.insert(schema.name.clone(), self.new_table(schema.clone()));
                Ok(())
            }
            WalOp::Insert { table, record } => {
                let t = catalog
                    .get(table)
                    .ok_or_else(|| StoreError::NoSuchTable(table.clone()))?;
                t.schema().validate_row(record.fields())?;
                let pk = t.pk_of(record.as_ref())?;
                let mut token = t.lock_stripe(&pk);
                if token.contains(&pk) {
                    return Err(StoreError::DuplicateKey(pk));
                }
                token.apply_insert(Arc::clone(record), seq);
                Ok(())
            }
            WalOp::SetFlag {
                table,
                pk,
                column,
                value,
            } => {
                let t = catalog
                    .get(table)
                    .ok_or_else(|| StoreError::NoSuchTable(table.clone()))?;
                t.set_flag(pk, column, *value)
            }
        }
    }

    /// Number of operations committed to this store, ever (1-based
    /// sequence of the newest op). Followers report this as their applied
    /// sequence; `leader.applied_seq() - follower.applied_seq()` is the
    /// replication lag in ops.
    pub fn applied_seq(&self) -> u64 {
        self.oplog.lock().len() as u64
    }

    /// Ops with sequence numbers in `(from_seq, from_seq + max]` — what a
    /// leader ships to a follower that has applied `from_seq`.
    pub fn ops_since(&self, from_seq: u64, max: usize) -> Vec<(u64, WalOp)> {
        let oplog = self.oplog.lock();
        let start = (from_seq as usize).min(oplog.len());
        oplog[start..]
            .iter()
            .take(max)
            .enumerate()
            .map(|(i, op)| ((start + i + 1) as u64, (**op).clone()))
            .collect()
    }

    /// Apply one shipped op at sequence `seq`. Replay-idempotent: a seq at
    /// or below the local applied sequence is skipped (the follower
    /// already has it — e.g. both sides bootstrapped the same schema ops,
    /// or a re-ship overlapped), a seq exactly one past it is committed
    /// through the same WAL-first path as local writes, and a seq further
    /// ahead reports the gap so the shipper can rewind.
    pub fn apply_shipped(&self, seq: u64, op: WalOp) -> Result<ShipApply> {
        let _gate = self.gate.read();
        let _ship = self.ship_lock.lock();
        let applied = self.applied_seq();
        if seq <= applied {
            return Ok(ShipApply::AlreadyApplied);
        }
        if seq > applied + 1 {
            return Ok(ShipApply::Gap {
                expected: applied + 1,
            });
        }
        let committed = match op {
            WalOp::CreateTable { schema } => self.create_table_inner(schema)?,
            WalOp::Insert { table, record } => self.insert_inner(&table, record)?,
            WalOp::SetFlag {
                table,
                pk,
                column,
                value,
            } => self.set_flag_inner(&table, &pk, &column, value)?,
        };
        debug_assert_eq!(
            committed, seq,
            "shipped seq must match committed seq (leader-XOR-follower violated?)"
        );
        Ok(ShipApply::Applied)
    }

    /// Create a table.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let _gate = self.gate.read();
        self.create_table_inner(schema)?;
        Ok(())
    }

    fn create_table_inner(&self, schema: TableSchema) -> Result<u64> {
        // Hold the catalog write lock across the commit so the duplicate
        // check and the insert are atomic.
        let mut catalog = self.catalog.write();
        if catalog.contains_key(&schema.name) {
            return Err(StoreError::TableExists(schema.name));
        }
        let seq = self.commit(WalOp::CreateTable {
            schema: schema.clone(),
        })?;
        catalog.insert(schema.name.clone(), self.new_table(schema));
        Ok(seq)
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.read().contains_key(name)
    }

    pub fn table_names(&self) -> Vec<String> {
        self.catalog.read().keys().cloned().collect()
    }

    /// Insert an immutable record. WAL-first so that an acknowledged insert
    /// survives restart. The row's stripe stays locked from the duplicate
    /// check through the commit and apply, so concurrent inserts to other
    /// stripes proceed in parallel while same-key races are impossible.
    pub fn insert(&self, table: &str, record: Record) -> Result<()> {
        if self.faults.should_fail(sites::META_INSERT) {
            return Err(StoreError::InjectedFault(sites::META_INSERT));
        }
        let _gate = self.gate.read();
        self.insert_inner(table, Arc::new(record))?;
        Ok(())
    }

    fn insert_inner(&self, table: &str, record: Arc<Record>) -> Result<u64> {
        let t = self.table_arc(table)?;
        // Validate against schema before logging so the WAL never contains
        // an op that fails on replay.
        t.schema().validate_row(record.fields())?;
        let pk = t.pk_of(record.as_ref())?;
        let mut token = t.lock_stripe(&pk);
        if token.contains(&pk) {
            return Err(StoreError::DuplicateKey(pk));
        }
        // The oplog entry and the table row share one allocation.
        let seq = self.commit(WalOp::Insert {
            table: table.to_owned(),
            record: Arc::clone(&record),
        })?;
        token.apply_insert(record, seq);
        Ok(seq)
    }

    /// Insert a batch of records. All rows are validated (schema,
    /// duplicate keys — within the batch and against the table) before
    /// anything commits; the involved stripes are locked in index order;
    /// the whole batch is enqueued to the group committer at once, so it
    /// normally lands in a single WAL write + fsync.
    ///
    /// Not a transaction: on a mid-batch crash a *prefix* of the batch may
    /// survive recovery — but the call only returns `Ok` after every row
    /// is durable, so no acknowledged row can be lost.
    pub fn insert_many(&self, table: &str, records: Vec<Record>) -> Result<usize> {
        if records.is_empty() {
            return Ok(0);
        }
        if self.faults.should_fail(sites::META_INSERT) {
            return Err(StoreError::InjectedFault(sites::META_INSERT));
        }
        let _gate = self.gate.read();
        let t = self.table_arc(table)?;
        let mut pks = Vec::with_capacity(records.len());
        for record in &records {
            t.schema().validate_row(record.fields())?;
            pks.push(t.pk_of(record)?);
        }
        let mut seen = HashSet::with_capacity(pks.len());
        for pk in &pks {
            if !seen.insert(pk.as_str()) {
                return Err(StoreError::DuplicateKey(pk.clone()));
            }
        }
        let mut token = t.lock_stripe_set(&pks);
        for pk in &pks {
            if token.contains(pk) {
                return Err(StoreError::DuplicateKey(pk.clone()));
            }
        }
        let records: Vec<Arc<Record>> = records.into_iter().map(Arc::new).collect();
        let ops: Vec<WalOp> = records
            .iter()
            .map(|r| WalOp::Insert {
                table: table.to_owned(),
                record: Arc::clone(r),
            })
            .collect();
        let seqs = self.commit_many(ops)?;
        let n = records.len();
        for (record, seq) in records.into_iter().zip(seqs) {
            token.apply_insert(record, seq);
        }
        Ok(n)
    }

    /// Point lookup by primary key.
    pub fn get(&self, table: &str, pk: &str) -> Result<Option<Record>> {
        let t = self.table_arc(table)?;
        Ok(t.peek(pk))
    }

    /// Set a mutable flag column (e.g. `deprecated`).
    pub fn set_flag(&self, table: &str, pk: &str, column: &str, value: bool) -> Result<()> {
        let _gate = self.gate.read();
        self.set_flag_inner(table, pk, column, value)?;
        Ok(())
    }

    fn set_flag_inner(&self, table: &str, pk: &str, column: &str, value: bool) -> Result<u64> {
        let t = self.table_arc(table)?;
        // Validate everything before logging.
        t.check_flag_column(column)?;
        let mut token = t.lock_stripe(pk);
        if !token.contains(pk) {
            return Err(StoreError::NoSuchKey(pk.to_owned()));
        }
        let seq = self.commit(WalOp::SetFlag {
            table: table.to_owned(),
            pk: pk.to_owned(),
            column: column.to_owned(),
            value,
        })?;
        token.apply_set_flag(pk, column, value);
        Ok(seq)
    }

    /// Execute a constraint query.
    pub fn query(&self, table: &str, query: &Query) -> Result<Vec<Record>> {
        Ok(self.query_explain(table, query)?.0)
    }

    /// Execute a query and also report the access path chosen.
    pub fn query_explain(&self, table: &str, query: &Query) -> Result<(Vec<Record>, AccessPath)> {
        let (rows, explain) = self.query_explain_full(table, query)?;
        Ok((rows, explain.path))
    }

    /// Execute a query and return the full [`Explain`] artifact: chosen
    /// path, estimated vs. actual rows scanned, deferred-index tail-merge
    /// size, and per-stage timings. Every query — whichever entry point it
    /// arrived through — funnels here, so the per-shape metrics and the
    /// slow-query ring see all of them.
    pub fn query_explain_full(&self, table: &str, query: &Query) -> Result<(Vec<Record>, Explain)> {
        if self.faults.should_fail(sites::META_QUERY) {
            return Err(StoreError::InjectedFault(sites::META_QUERY));
        }
        let t = self.table_arc(table)?;
        let started = Instant::now();
        let (rows, explain) = t.execute_explain(query)?;
        let total_ms = started.elapsed().as_secs_f64() * 1e3;
        self.record_query(table, &explain, total_ms);
        Ok((rows, explain))
    }

    /// Feed one finished query into the per-shape metrics and (if it
    /// clears the threshold) the slow-query ring. A disabled telemetry
    /// bundle skips everything — the introspection layer must cost nothing
    /// when it is off (E21's overhead gate).
    fn record_query(&self, table: &str, explain: &Explain, total_ms: f64) {
        if !self.telemetry.registry().is_enabled() {
            return;
        }
        let trace_id = self.telemetry.tracer().current_trace_id();
        let capture = {
            let metrics = self.metrics.read();
            if let Some((counter, histogram)) = metrics.query_shape(explain.shape()) {
                counter.inc();
                histogram.observe_with_exemplar(total_ms, trace_id);
            }
            let capture = total_ms >= self.slow_log.threshold_ms() as f64;
            if capture {
                metrics.slow_queries.inc();
            }
            capture
        };
        if capture {
            self.slow_log.record(SlowQueryEntry {
                table: table.to_owned(),
                explain: explain.clone(),
                total_ms,
                trace_id,
            });
        }
    }

    /// The slow-query ring: plan, timings, and trace id per capture.
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow_log
    }

    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.table_arc(table)?.len())
    }

    pub fn table_stats(&self, table: &str) -> Result<TableStats> {
        Ok(self.table_arc(table)?.stats())
    }

    /// Force-apply every table's pending secondary-index delta; returns
    /// rows applied. Queries never need this (read-side merge keeps them
    /// exact); tests and benchmarks use it to compare deferred vs flushed
    /// index states.
    pub fn flush_index_deltas(&self) -> usize {
        let tables: Vec<Arc<Table>> = self.catalog.read().values().cloned().collect();
        tables.iter().map(|t| t.flush_index_deltas()).sum()
    }

    /// Approximate resident bytes across all tables.
    pub fn approx_size(&self) -> usize {
        let catalog = self.catalog.read();
        catalog.values().map(|t| t.approx_size()).sum()
    }

    /// Total live records across all tables (the `gallery_meta_records`
    /// gauge behind `gallery stats`).
    pub fn total_rows(&self) -> usize {
        let catalog = self.catalog.read();
        catalog.values().map(|t| t.len()).sum()
    }

    /// Entries appended to the WAL by this store instance (0 for
    /// in-memory stores).
    pub fn wal_entries(&self) -> u64 {
        self.committer
            .as_ref()
            .map(|c| c.wal().lock().entries_written())
            .unwrap_or(0)
    }

    /// On-disk WAL size in bytes, if durable.
    pub fn wal_size_bytes(&self) -> Option<u64> {
        let c = self.committer.as_ref()?;
        let path = c.wal().lock().path().to_path_buf();
        self.fs.len(&path).ok()
    }

    /// Compact the WAL: rewrite it as the minimal operation sequence that
    /// reproduces the current state (one `CreateTable` per table and one
    /// `Insert` per live row — flag mutations are already materialized in
    /// the rows). The compacted log is written to a temporary file, fsynced,
    /// and atomically renamed over the old log, so a crash at any point
    /// leaves a replayable log. No-op for in-memory stores.
    ///
    /// Takes the commit gate in write mode, which quiesces every writer
    /// (all mutations hold the gate in read mode across their commit), so
    /// the snapshot is consistent and no commit can race the WAL swap.
    ///
    /// Compaction rewrites the *physical* log only; the in-memory oplog
    /// (replication sequence) is untouched. A restart after compaction
    /// reseeds the oplog from the compacted WAL, which renumbers the
    /// sequence — so compact a replicated shard store only when its
    /// followers will be re-seeded from scratch (see docs/replication.md).
    pub fn compact(&self) -> Result<u64> {
        let Some(committer) = &self.committer else {
            return Ok(0);
        };
        let _quiesce = self.gate.write();
        // Catalog before WAL, per the declared rank order: create_table
        // holds the catalog across its commit (catalog → wal), so taking
        // the WAL lock first here would close an acquired-before cycle.
        let catalog = self.catalog.read();
        let mut wal = committer.wal().lock();
        let path = wal.path().to_path_buf();
        let sync = wal.sync_policy();
        let tmp = path.with_extension("compacting");
        let mut compacted = Wal::create_with_fs(Arc::clone(&self.fs), &tmp, SyncPolicy::Never)?;
        let mut table_names: Vec<&String> = catalog.keys().collect();
        table_names.sort();
        let mut entries = 0u64;
        for name in table_names {
            let table = &catalog[name];
            compacted.append(&WalOp::CreateTable {
                schema: table.schema().clone(),
            })?;
            entries += 1;
            for record in table.snapshot_seq_order() {
                compacted.append(&WalOp::Insert {
                    table: name.clone(),
                    record,
                })?;
                entries += 1;
            }
        }
        compacted.sync_all()?;
        drop(compacted);
        self.fs.rename(&tmp, &path)?;
        *wal =
            Wal::open_with_fs(Arc::clone(&self.fs), &path, sync)?.with_telemetry(&self.telemetry);
        self.telemetry.events().emit(
            kinds::WAL_FLUSH,
            vec![
                ("entries", entries.to_string()),
                ("reason", "compact".to_string()),
            ],
        );
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Constraint;
    use crate::schema::ColumnDef;
    use crate::value::{Value, ValueType};
    use std::path::PathBuf;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("name", ValueType::Str).hash_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gallery-meta-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn create_insert_query() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        store
            .insert("models", Record::new().set("id", "m1").set("name", "rf"))
            .unwrap();
        let rows = store
            .query("models", &Query::all().and(Constraint::eq("name", "rf")))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(store.row_count("models").unwrap(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        assert!(matches!(
            store.create_table(schema()),
            Err(StoreError::TableExists(_))
        ));
    }

    #[test]
    fn missing_table_errors() {
        let store = MetadataStore::in_memory();
        assert!(matches!(
            store.insert("nope", Record::new().set("id", "x")),
            Err(StoreError::NoSuchTable(_))
        ));
        assert!(store.get("nope", "x").is_err());
        assert!(store.query("nope", &Query::all()).is_err());
    }

    #[test]
    fn durability_roundtrip() {
        let path = tmp("durable");
        {
            let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
            store.create_table(schema()).unwrap();
            store
                .insert("models", Record::new().set("id", "m1").set("name", "rf"))
                .unwrap();
            store.set_flag("models", "m1", "deprecated", true).unwrap();
        }
        let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.row_count("models").unwrap(), 1);
        let rec = store.get("models", "m1").unwrap().unwrap();
        assert_eq!(rec.get("deprecated"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejected_writes_not_logged() {
        let path = tmp("rejects");
        {
            let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
            store.create_table(schema()).unwrap();
            store
                .insert("models", Record::new().set("id", "m1").set("name", "rf"))
                .unwrap();
            // Duplicate key: must not reach the WAL.
            assert!(store
                .insert("models", Record::new().set("id", "m1").set("name", "x"))
                .is_err());
            // Type error: must not reach the WAL.
            assert!(store
                .insert("models", Record::new().set("id", "m2").set("name", 5i64))
                .is_err());
        }
        // Replay must succeed (a bad op in the log would fail).
        let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.row_count("models").unwrap(), 1);
    }

    #[test]
    fn injected_insert_fault() {
        let plan = FaultPlan::none();
        plan.fail_always(sites::META_INSERT);
        let store = MetadataStore::in_memory().with_faults(plan);
        store.create_table(schema()).unwrap();
        assert!(matches!(
            store.insert("models", Record::new().set("id", "m1").set("name", "rf")),
            Err(StoreError::InjectedFault(_))
        ));
        assert_eq!(store.row_count("models").unwrap(), 0);
    }

    #[test]
    fn concurrent_inserts() {
        let store = Arc::new(MetadataStore::in_memory());
        store.create_table(schema()).unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    store
                        .insert(
                            "models",
                            Record::new()
                                .set("id", format!("m{t}-{i}"))
                                .set("name", "rf"),
                        )
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.row_count("models").unwrap(), 1000);
        assert_eq!(store.applied_seq(), 1001);
    }

    #[test]
    fn concurrent_durable_inserts_group_commit() {
        let path = tmp("group-commit");
        let store = Arc::new(MetadataStore::durable(&path, SyncPolicy::Always).unwrap());
        store.create_table(schema()).unwrap();
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    store
                        .insert(
                            "models",
                            Record::new()
                                .set("id", format!("g{t}-{i}"))
                                .set("name", "rf"),
                        )
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.row_count("models").unwrap(), 400);
        assert_eq!(store.wal_entries(), 401);
        drop(store);
        // Everything durable and replayable.
        let restored = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(restored.row_count("models").unwrap(), 400);
        assert_eq!(restored.applied_seq(), 401);
    }

    #[test]
    fn insert_many_batch() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        let records: Vec<Record> = (0..10)
            .map(|i| Record::new().set("id", format!("b{i}")).set("name", "rf"))
            .collect();
        assert_eq!(store.insert_many("models", records).unwrap(), 10);
        assert_eq!(store.row_count("models").unwrap(), 10);
        assert_eq!(store.applied_seq(), 11);
        // Query sees all batch rows.
        let rows = store
            .query("models", &Query::all().and(Constraint::eq("name", "rf")))
            .unwrap();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn insert_many_rejects_dups_atomically() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        store
            .insert("models", Record::new().set("id", "x").set("name", "rf"))
            .unwrap();
        // Duplicate against the table.
        let batch = vec![
            Record::new().set("id", "a").set("name", "rf"),
            Record::new().set("id", "x").set("name", "rf"),
        ];
        assert!(matches!(
            store.insert_many("models", batch),
            Err(StoreError::DuplicateKey(_))
        ));
        // Duplicate within the batch.
        let batch = vec![
            Record::new().set("id", "b").set("name", "rf"),
            Record::new().set("id", "b").set("name", "rf"),
        ];
        assert!(matches!(
            store.insert_many("models", batch),
            Err(StoreError::DuplicateKey(_))
        ));
        // Nothing from either rejected batch landed.
        assert_eq!(store.row_count("models").unwrap(), 1);
        assert_eq!(store.applied_seq(), 2);
    }

    #[test]
    fn insert_many_durable_roundtrip() {
        let path = tmp("many-durable");
        {
            let store = MetadataStore::durable(&path, SyncPolicy::Always).unwrap();
            store.create_table(schema()).unwrap();
            let records: Vec<Record> = (0..20)
                .map(|i| Record::new().set("id", format!("d{i}")).set("name", "rf"))
                .collect();
            store.insert_many("models", records).unwrap();
        }
        let restored = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(restored.row_count("models").unwrap(), 20);
    }
}

#[cfg(test)]
mod oplog_tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::{Value, ValueType};
    use std::path::PathBuf;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("name", ValueType::Str).hash_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gallery-oplog-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn leader_with_ops() -> MetadataStore {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        for i in 0..5 {
            store
                .insert(
                    "models",
                    Record::new().set("id", format!("m{i}")).set("name", "rf"),
                )
                .unwrap();
        }
        store.set_flag("models", "m2", "deprecated", true).unwrap();
        store
    }

    #[test]
    fn every_commit_advances_the_sequence() {
        let leader = leader_with_ops();
        // 1 create-table + 5 inserts + 1 set-flag.
        assert_eq!(leader.applied_seq(), 7);
        let all = leader.ops_since(0, 100);
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].0, 1);
        assert_eq!(all[6].0, 7);
        // Windowing.
        let tail = leader.ops_since(5, 100);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].0, 6);
        assert_eq!(leader.ops_since(7, 100).len(), 0);
        assert_eq!(leader.ops_since(999, 100).len(), 0);
        assert_eq!(leader.ops_since(0, 3).len(), 3);
    }

    #[test]
    fn rejected_writes_do_not_advance_the_sequence() {
        let leader = leader_with_ops();
        let seq = leader.applied_seq();
        assert!(leader
            .insert("models", Record::new().set("id", "m0").set("name", "x"))
            .is_err());
        assert!(leader.insert("nope", Record::new().set("id", "z")).is_err());
        assert_eq!(leader.applied_seq(), seq);
    }

    #[test]
    fn shipped_ops_replicate_a_leader() {
        let leader = leader_with_ops();
        let follower = MetadataStore::in_memory();
        for (seq, op) in leader.ops_since(0, 1000) {
            assert_eq!(follower.apply_shipped(seq, op).unwrap(), ShipApply::Applied);
        }
        assert_eq!(follower.applied_seq(), leader.applied_seq());
        assert_eq!(follower.row_count("models").unwrap(), 5);
        let rec = follower.get("models", "m2").unwrap().unwrap();
        assert_eq!(rec.get("deprecated"), Some(&Value::Bool(true)));
    }

    #[test]
    fn apply_shipped_is_replay_idempotent_and_detects_gaps() {
        let leader = leader_with_ops();
        let follower = MetadataStore::in_memory();
        let ops = leader.ops_since(0, 1000);
        // A gap is reported, not applied.
        assert_eq!(
            follower.apply_shipped(3, ops[2].1.clone()).unwrap(),
            ShipApply::Gap { expected: 1 }
        );
        assert_eq!(follower.applied_seq(), 0);
        // Normal apply, then replay the same frames: all skipped.
        for (seq, op) in &ops {
            follower.apply_shipped(*seq, op.clone()).unwrap();
        }
        for (seq, op) in &ops {
            assert_eq!(
                follower.apply_shipped(*seq, op.clone()).unwrap(),
                ShipApply::AlreadyApplied
            );
        }
        assert_eq!(follower.applied_seq(), leader.applied_seq());
        assert_eq!(follower.row_count("models").unwrap(), 5);
    }

    #[test]
    fn durable_follower_resumes_sequence_after_restart() {
        let path = tmp("resume");
        let leader = leader_with_ops();
        let ops = leader.ops_since(0, 1000);
        {
            let follower = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
            for (seq, op) in ops.iter().take(4) {
                follower.apply_shipped(*seq, op.clone()).unwrap();
            }
            assert_eq!(follower.applied_seq(), 4);
        }
        // Restart: the WAL holds exactly the shipped prefix, so the oplog
        // reseeds to sequence 4 and shipping resumes from there.
        let follower = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(follower.applied_seq(), 4);
        for (seq, op) in ops.iter().skip(4) {
            assert_eq!(
                follower.apply_shipped(*seq, op.clone()).unwrap(),
                ShipApply::Applied
            );
        }
        assert_eq!(follower.applied_seq(), leader.applied_seq());
        assert_eq!(follower.row_count("models").unwrap(), 5);
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;
    use crate::query::Constraint;
    use crate::schema::ColumnDef;
    use crate::value::{Value, ValueType};
    use std::path::PathBuf;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("name", ValueType::Str).hash_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gallery-compact-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_state() {
        let path = tmp("shrink");
        let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        store.create_table(schema()).unwrap();
        // Many flag flips blow up the raw log relative to the live state.
        for i in 0..50 {
            store
                .insert(
                    "models",
                    Record::new().set("id", format!("m{i}")).set("name", "rf"),
                )
                .unwrap();
        }
        for _ in 0..10 {
            for i in 0..50 {
                store
                    .set_flag("models", &format!("m{i}"), "deprecated", true)
                    .unwrap();
                store
                    .set_flag("models", &format!("m{i}"), "deprecated", false)
                    .unwrap();
            }
        }
        store.set_flag("models", "m7", "deprecated", true).unwrap();
        let before = store.wal_size_bytes().unwrap();
        let entries = store.compact().unwrap();
        let after = store.wal_size_bytes().unwrap();
        assert_eq!(entries, 1 + 50);
        assert!(after < before / 5, "log must shrink: {before} -> {after}");

        // State survives compaction + restart, including the final flags.
        drop(store);
        let restored = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(restored.row_count("models").unwrap(), 50);
        let rec = restored.get("models", "m7").unwrap().unwrap();
        assert_eq!(rec.get("deprecated"), Some(&Value::Bool(true)));
        let rec = restored.get("models", "m8").unwrap().unwrap();
        assert_eq!(rec.get("deprecated"), Some(&Value::Bool(false)));
        // Indexes rebuilt correctly.
        let rows = restored
            .query(
                "models",
                &Query::all()
                    .and(Constraint::eq("name", "rf"))
                    .with_deprecated(),
            )
            .unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn writes_continue_after_compaction() {
        let path = tmp("continue");
        let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        store.create_table(schema()).unwrap();
        store
            .insert("models", Record::new().set("id", "a").set("name", "x"))
            .unwrap();
        store.compact().unwrap();
        store
            .insert("models", Record::new().set("id", "b").set("name", "y"))
            .unwrap();
        drop(store);
        let restored = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(restored.row_count("models").unwrap(), 2);
    }

    #[test]
    fn in_memory_compaction_is_noop() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        assert_eq!(store.compact().unwrap(), 0);
        assert_eq!(store.wal_entries(), 0);
        assert!(store.wal_size_bytes().is_none());
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use crate::query::Constraint;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("name", ValueType::Str).hash_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn eager_config_reproduces_old_write_path() {
        // lock_stripes=1 + index_batch=1 = the pre-overhaul store: one
        // lock, eager indexes. Behaviour must be identical.
        let eager = MetadataStore::in_memory_with_config(StoreConfig {
            lock_stripes: 1,
            index_batch: 1,
            ..StoreConfig::default()
        });
        let tuned = MetadataStore::in_memory();
        for store in [&eager, &tuned] {
            store.create_table(schema()).unwrap();
            for i in 0..100 {
                store
                    .insert(
                        "models",
                        Record::new()
                            .set("id", format!("m{i}"))
                            .set("name", if i % 3 == 0 { "rf" } else { "lr" }),
                    )
                    .unwrap();
            }
        }
        let q = Query::all().and(Constraint::eq("name", "rf"));
        assert_eq!(
            eager.query("models", &q).unwrap(),
            tuned.query("models", &q).unwrap()
        );
        // Eager config has no pending deltas; tuned config may.
        assert_eq!(eager.flush_index_deltas(), 0);
    }

    #[test]
    fn query_explain_full_records_shapes_and_slowlog() {
        let telemetry = Telemetry::new();
        let store = MetadataStore::in_memory().with_telemetry(Arc::clone(&telemetry));
        store.create_table(schema()).unwrap();
        for i in 0..10 {
            store
                .insert(
                    "models",
                    Record::new()
                        .set("id", format!("m{i}"))
                        .set("name", if i % 2 == 0 { "rf" } else { "lr" }),
                )
                .unwrap();
        }
        let q = Query::all().and(Constraint::eq("name", "rf"));
        let (rows, explain) = store.query_explain_full("models", &q).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(explain.shape(), "index_eq");
        assert!(explain.rows_scanned >= rows.len());
        // Default index_batch (1024) > 10: every row is still an unindexed
        // tail entry, and the executor must report merging it.
        assert_eq!(explain.tail_merge_rows, 10);

        let r = telemetry.registry();
        assert_eq!(
            r.sample_value("gallery_store_query_total", &[("shape", "index_eq")]),
            Some(1.0)
        );
        assert_eq!(
            r.sample_value("gallery_store_query_total", &[("shape", "full_scan")]),
            Some(0.0)
        );

        // Threshold 0 (default): the query is also in the slow-query ring.
        assert_eq!(store.slow_log().total(), 1);
        let entries = store.slow_log().entries();
        assert_eq!(entries[0].table, "models");
        assert_eq!(entries[0].explain.shape(), "index_eq");
        assert!(entries[0].total_ms >= 0.0);
        let text = store.slow_log().render_text();
        assert!(text.contains("table=models shape=index_eq"), "{text}");
        assert!(text.contains("tail_merge=10"), "{text}");
        assert_eq!(
            r.sample_value("gallery_store_slow_queries_total", &[]),
            Some(1.0)
        );
    }

    #[test]
    fn slow_query_ring_is_bounded_and_threshold_filters() {
        let telemetry = Telemetry::new();
        let store = MetadataStore::in_memory_with_config(StoreConfig {
            slow_query_capacity: 4,
            ..StoreConfig::default()
        })
        .with_telemetry(Arc::clone(&telemetry));
        store.create_table(schema()).unwrap();
        for _ in 0..10 {
            store.query("models", &Query::all()).unwrap();
        }
        assert_eq!(store.slow_log().total(), 10);
        assert_eq!(store.slow_log().entries().len(), 4);
        assert_eq!(store.slow_log().dropped(), 6);

        // An unreachable threshold captures nothing, but per-shape metrics
        // still see every query.
        let telemetry = Telemetry::new();
        let quiet = MetadataStore::in_memory_with_config(StoreConfig {
            slow_query_ms: u64::MAX,
            ..StoreConfig::default()
        })
        .with_telemetry(Arc::clone(&telemetry));
        quiet.create_table(schema()).unwrap();
        quiet.query("models", &Query::all()).unwrap();
        assert_eq!(quiet.slow_log().total(), 0);
        assert_eq!(
            telemetry
                .registry()
                .sample_value("gallery_store_query_total", &[("shape", "full_scan")]),
            Some(1.0)
        );
    }

    #[test]
    fn stripe_lock_metrics_surface_contention_per_stripe() {
        let telemetry = Telemetry::new();
        let store = MetadataStore::in_memory_with_config(StoreConfig {
            lock_stripes: 4,
            ..StoreConfig::default()
        })
        .with_telemetry(Arc::clone(&telemetry));
        store.create_table(schema()).unwrap();
        for i in 0..20 {
            store
                .insert(
                    "models",
                    Record::new().set("id", format!("m{i}")).set("name", "rf"),
                )
                .unwrap();
        }
        let r = telemetry.registry();
        // Every insert acquires exactly one stripe write lock; the waits
        // land somewhere across the four per-stripe histograms.
        let total_waits: f64 = (0..4)
            .filter_map(|i| {
                r.find_histogram(
                    "gallery_store_stripe_lock_wait_ms",
                    &[("stripe", &i.to_string())],
                )
                .map(|h| h.count() as f64)
            })
            .sum();
        assert_eq!(total_waits, 20.0);
        // Hold time is credited on release (µs granularity, may be 0 for
        // very fast holds — only the label set is asserted here).
        assert!(r
            .sample_value(
                "gallery_store_stripe_lock_hold_us_total",
                &[("stripe", "0")]
            )
            .is_some());
        // No stripe label beyond the configured count was ever minted.
        assert!(r
            .find_histogram("gallery_store_stripe_lock_wait_ms", &[("stripe", "4")])
            .is_none());
    }

    #[test]
    fn deferred_deltas_flush_on_demand() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        for i in 0..10 {
            store
                .insert(
                    "models",
                    Record::new().set("id", format!("m{i}")).set("name", "rf"),
                )
                .unwrap();
        }
        // Default index_batch (1024) > 10: everything is still pending.
        let q = Query::all().and(Constraint::eq("name", "rf"));
        let before = store.query("models", &q).unwrap();
        assert_eq!(store.flush_index_deltas(), 10);
        let after = store.query("models", &q).unwrap();
        assert_eq!(before, after);
        assert_eq!(after.len(), 10);
        let stats = store.table_stats("models").unwrap();
        assert_eq!(stats.index_delta_applied, 10);
    }
}
