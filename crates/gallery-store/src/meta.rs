//! The metadata store: named tables behind one lock, optionally durable
//! through a [`Wal`]. This is Gallery's stand-in for the HA MySQL service
//! of §3.5 — it provides typed rows, secondary indexes, flexible
//! constraint queries, and durability; replication/HA is out of scope (see
//! DESIGN.md substitutions).

use crate::error::{Result, StoreError};
use crate::fault::{sites, FaultPlan};
use crate::query::{AccessPath, Query};
use crate::record::Record;
use crate::schema::TableSchema;
use crate::simfs::{real_fs, FileSystem};
use crate::table::{Table, TableStats};
use crate::wal::{SyncPolicy, Wal, WalOp};
use gallery_telemetry::{kinds, Telemetry};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

struct MetaInner {
    tables: HashMap<String, Table>,
    wal: Option<Wal>,
    /// The logical operation log, in commit order. Sequence numbers are
    /// 1-based positions into this vector. This is what WAL shipping
    /// replicates: a leader serves `ops_since`, a follower applies through
    /// `apply_shipped`. Recovery seeds it from the physical WAL, so a
    /// restarted follower resumes at exactly the sequence its disk holds.
    ops: Vec<WalOp>,
}

/// Outcome of [`MetadataStore::apply_shipped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipApply {
    /// The op was committed at the given sequence.
    Applied,
    /// The local log already contains this sequence; nothing was done.
    AlreadyApplied,
    /// The op is ahead of the local log; the shipper must resend from
    /// `expected`.
    Gap { expected: u64 },
}

/// Thread-safe, optionally durable metadata store.
pub struct MetadataStore {
    inner: RwLock<MetaInner>,
    faults: FaultPlan,
    telemetry: Arc<Telemetry>,
    fs: Arc<dyn FileSystem>,
}

impl MetadataStore {
    /// Purely in-memory store.
    pub fn in_memory() -> Self {
        MetadataStore {
            inner: RwLock::new(MetaInner {
                tables: HashMap::new(),
                wal: None,
                ops: Vec::new(),
            }),
            faults: FaultPlan::none(),
            telemetry: Arc::clone(gallery_telemetry::global()),
            fs: real_fs(),
        }
    }

    /// Store durable through a WAL at `path`. Replays any existing log;
    /// a torn final record (the expected crash artifact) is truncated away
    /// and surfaced through telemetry (see [`Wal::recover`]).
    pub fn durable(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self> {
        Self::durable_with(
            real_fs(),
            path,
            sync,
            Arc::clone(gallery_telemetry::global()),
        )
    }

    /// [`MetadataStore::durable`] over an explicit file system (the
    /// crash-consistency harness passes a [`crate::simfs::SimFs`]).
    pub fn durable_with_fs(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
    ) -> Result<Self> {
        Self::durable_with(fs, path, sync, Arc::clone(gallery_telemetry::global()))
    }

    /// Fully explicit durable constructor: file system *and* telemetry.
    /// Recovery-time events (torn-tail truncation) land in `telemetry`,
    /// which `with_telemetry` — running after the fact — could not capture.
    pub fn durable_with(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self> {
        let path = path.as_ref();
        let ops = Wal::recover(&*fs, path, &telemetry)?;
        let store = MetadataStore {
            inner: RwLock::new(MetaInner {
                tables: HashMap::new(),
                wal: None,
                ops: Vec::new(),
            }),
            faults: FaultPlan::none(),
            telemetry,
            fs,
        };
        {
            let mut inner = store.inner.write();
            for op in ops {
                Self::apply(&mut inner.tables, op.clone())?;
                inner.ops.push(op);
            }
            inner.wal = Some(
                Wal::open_with_fs(Arc::clone(&store.fs), path, sync)?
                    .with_telemetry(&store.telemetry),
            );
        }
        Ok(store)
    }

    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Route WAL metrics/events to `telemetry` instead of the process
    /// global (isolated tests, E15 overhead baselines).
    pub fn with_telemetry(self, telemetry: Arc<Telemetry>) -> Self {
        {
            let mut inner = self.inner.write();
            if let Some(wal) = inner.wal.take() {
                inner.wal = Some(wal.with_telemetry(&telemetry));
            }
        }
        MetadataStore { telemetry, ..self }
    }

    fn apply(tables: &mut HashMap<String, Table>, op: WalOp) -> Result<()> {
        match op {
            WalOp::CreateTable { schema } => {
                if tables.contains_key(&schema.name) {
                    return Err(StoreError::TableExists(schema.name));
                }
                tables.insert(schema.name.clone(), Table::new(schema));
                Ok(())
            }
            WalOp::Insert { table, record } => {
                let t = tables
                    .get_mut(&table)
                    .ok_or(StoreError::NoSuchTable(table))?;
                t.insert(record)?;
                Ok(())
            }
            WalOp::SetFlag {
                table,
                pk,
                column,
                value,
            } => {
                let t = tables
                    .get_mut(&table)
                    .ok_or(StoreError::NoSuchTable(table))?;
                t.set_flag(&pk, &column, value)
            }
        }
    }

    /// Commit an op to the logs: physical WAL first (durability), then the
    /// in-memory oplog (replication). A crash between WAL append and the
    /// caller's in-memory apply heals on recovery, which replays the WAL
    /// and reseeds the oplog from it.
    fn log(inner: &mut MetaInner, op: &WalOp) -> Result<()> {
        if let Some(wal) = inner.wal.as_mut() {
            wal.append(op)?;
        }
        inner.ops.push(op.clone());
        Ok(())
    }

    /// Number of operations committed to this store, ever (1-based
    /// sequence of the newest op). Followers report this as their applied
    /// sequence; `leader.applied_seq() - follower.applied_seq()` is the
    /// replication lag in ops.
    pub fn applied_seq(&self) -> u64 {
        self.inner.read().ops.len() as u64
    }

    /// Ops with sequence numbers in `(from_seq, from_seq + max]` — what a
    /// leader ships to a follower that has applied `from_seq`.
    pub fn ops_since(&self, from_seq: u64, max: usize) -> Vec<(u64, WalOp)> {
        let inner = self.inner.read();
        let start = (from_seq as usize).min(inner.ops.len());
        inner.ops[start..]
            .iter()
            .take(max)
            .enumerate()
            .map(|(i, op)| ((start + i + 1) as u64, op.clone()))
            .collect()
    }

    /// Apply one shipped op at sequence `seq`. Replay-idempotent: a seq at
    /// or below the local applied sequence is skipped (the follower
    /// already has it — e.g. both sides bootstrapped the same schema ops,
    /// or a re-ship overlapped), a seq exactly one past it is committed
    /// through the same WAL-first path as local writes, and a seq further
    /// ahead reports the gap so the shipper can rewind.
    pub fn apply_shipped(&self, seq: u64, op: WalOp) -> Result<ShipApply> {
        let mut inner = self.inner.write();
        let applied = inner.ops.len() as u64;
        if seq <= applied {
            return Ok(ShipApply::AlreadyApplied);
        }
        if seq > applied + 1 {
            return Ok(ShipApply::Gap {
                expected: applied + 1,
            });
        }
        Self::log(&mut inner, &op)?;
        Self::apply(&mut inner.tables, op)?;
        Ok(ShipApply::Applied)
    }

    /// Create a table.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.tables.contains_key(&schema.name) {
            return Err(StoreError::TableExists(schema.name));
        }
        let op = WalOp::CreateTable {
            schema: schema.clone(),
        };
        Self::log(&mut inner, &op)?;
        inner.tables.insert(schema.name.clone(), Table::new(schema));
        Ok(())
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.inner.read().tables.contains_key(name)
    }

    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().tables.keys().cloned().collect()
    }

    /// Insert an immutable record. WAL-first so that an acknowledged insert
    /// survives restart.
    pub fn insert(&self, table: &str, record: Record) -> Result<()> {
        if self.faults.should_fail(sites::META_INSERT) {
            return Err(StoreError::InjectedFault(sites::META_INSERT));
        }
        let mut inner = self.inner.write();
        // Validate against schema before logging so the WAL never contains
        // an op that fails on replay.
        {
            let t = inner
                .tables
                .get(table)
                .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
            t.schema().validate_row(record.fields())?;
            let pk_col = &t.schema().primary_key;
            if let Some(pk) = record.get(pk_col).and_then(|v| v.as_str()) {
                if t.contains(pk) {
                    return Err(StoreError::DuplicateKey(pk.to_owned()));
                }
            }
        }
        let op = WalOp::Insert {
            table: table.to_owned(),
            record: record.clone(),
        };
        Self::log(&mut inner, &op)?;
        let t = inner.tables.get_mut(table).expect("checked above");
        t.insert(record)?;
        Ok(())
    }

    /// Point lookup by primary key.
    pub fn get(&self, table: &str, pk: &str) -> Result<Option<Record>> {
        let inner = self.inner.read();
        let t = inner
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
        Ok(t.peek(pk).cloned())
    }

    /// Set a mutable flag column (e.g. `deprecated`).
    pub fn set_flag(&self, table: &str, pk: &str, column: &str, value: bool) -> Result<()> {
        let mut inner = self.inner.write();
        // Validate before logging.
        {
            let t = inner
                .tables
                .get(table)
                .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
            if !t.contains(pk) {
                return Err(StoreError::NoSuchKey(pk.to_owned()));
            }
        }
        let op = WalOp::SetFlag {
            table: table.to_owned(),
            pk: pk.to_owned(),
            column: column.to_owned(),
            value,
        };
        // set_flag still validates the column is a flag column; do that
        // first on a dry-run basis by checking the constant here.
        if !crate::table::MUTABLE_FLAG_COLUMNS.contains(&column) {
            return Err(StoreError::BadQuery(format!(
                "column {column} is immutable"
            )));
        }
        Self::log(&mut inner, &op)?;
        let t = inner.tables.get_mut(table).expect("checked above");
        t.set_flag(pk, column, value)
    }

    /// Execute a constraint query.
    pub fn query(&self, table: &str, query: &Query) -> Result<Vec<Record>> {
        Ok(self.query_explain(table, query)?.0)
    }

    /// Execute a query and also report the access path chosen.
    pub fn query_explain(&self, table: &str, query: &Query) -> Result<(Vec<Record>, AccessPath)> {
        if self.faults.should_fail(sites::META_QUERY) {
            return Err(StoreError::InjectedFault(sites::META_QUERY));
        }
        let mut inner = self.inner.write();
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
        t.execute(query)
    }

    pub fn row_count(&self, table: &str) -> Result<usize> {
        let inner = self.inner.read();
        let t = inner
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
        Ok(t.len())
    }

    pub fn table_stats(&self, table: &str) -> Result<TableStats> {
        let inner = self.inner.read();
        let t = inner
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_owned()))?;
        Ok(t.stats())
    }

    /// Approximate resident bytes across all tables.
    pub fn approx_size(&self) -> usize {
        let inner = self.inner.read();
        inner.tables.values().map(Table::approx_size).sum()
    }

    /// Total live records across all tables (the `gallery_meta_records`
    /// gauge behind `gallery stats`).
    pub fn total_rows(&self) -> usize {
        let inner = self.inner.read();
        inner.tables.values().map(|t| t.len()).sum()
    }

    /// Entries appended to the WAL by this store instance (0 for
    /// in-memory stores).
    pub fn wal_entries(&self) -> u64 {
        self.inner
            .read()
            .wal
            .as_ref()
            .map(|w| w.entries_written())
            .unwrap_or(0)
    }

    /// On-disk WAL size in bytes, if durable.
    pub fn wal_size_bytes(&self) -> Option<u64> {
        let inner = self.inner.read();
        let wal = inner.wal.as_ref()?;
        self.fs.len(wal.path()).ok()
    }

    /// Compact the WAL: rewrite it as the minimal operation sequence that
    /// reproduces the current state (one `CreateTable` per table and one
    /// `Insert` per live row — flag mutations are already materialized in
    /// the rows). The compacted log is written to a temporary file, fsynced,
    /// and atomically renamed over the old log, so a crash at any point
    /// leaves a replayable log. No-op for in-memory stores.
    ///
    /// Compaction rewrites the *physical* log only; the in-memory oplog
    /// (replication sequence) is untouched. A restart after compaction
    /// reseeds the oplog from the compacted WAL, which renumbers the
    /// sequence — so compact a replicated shard store only when its
    /// followers will be re-seeded from scratch (see docs/replication.md).
    pub fn compact(&self) -> Result<u64> {
        let mut inner = self.inner.write();
        let Some(wal) = inner.wal.as_ref() else {
            return Ok(0);
        };
        let path = wal.path().to_path_buf();
        let sync = wal.sync_policy();
        let tmp = path.with_extension("compacting");
        let mut compacted = Wal::create_with_fs(Arc::clone(&self.fs), &tmp, SyncPolicy::Never)?;
        let mut table_names: Vec<&String> = inner.tables.keys().collect();
        table_names.sort();
        let mut entries = 0u64;
        for name in table_names {
            let table = &inner.tables[name];
            compacted.append(&WalOp::CreateTable {
                schema: table.schema().clone(),
            })?;
            entries += 1;
            for record in table.iter() {
                compacted.append(&WalOp::Insert {
                    table: name.clone(),
                    record: record.clone(),
                })?;
                entries += 1;
            }
        }
        compacted.sync_all()?;
        drop(compacted);
        self.fs.rename(&tmp, &path)?;
        inner.wal = Some(
            Wal::open_with_fs(Arc::clone(&self.fs), &path, sync)?.with_telemetry(&self.telemetry),
        );
        self.telemetry.events().emit(
            kinds::WAL_FLUSH,
            vec![
                ("entries", entries.to_string()),
                ("reason", "compact".to_string()),
            ],
        );
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Constraint;
    use crate::schema::ColumnDef;
    use crate::value::{Value, ValueType};
    use std::path::PathBuf;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("name", ValueType::Str).hash_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gallery-meta-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn create_insert_query() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        store
            .insert("models", Record::new().set("id", "m1").set("name", "rf"))
            .unwrap();
        let rows = store
            .query("models", &Query::all().and(Constraint::eq("name", "rf")))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(store.row_count("models").unwrap(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        assert!(matches!(
            store.create_table(schema()),
            Err(StoreError::TableExists(_))
        ));
    }

    #[test]
    fn missing_table_errors() {
        let store = MetadataStore::in_memory();
        assert!(matches!(
            store.insert("nope", Record::new().set("id", "x")),
            Err(StoreError::NoSuchTable(_))
        ));
        assert!(store.get("nope", "x").is_err());
        assert!(store.query("nope", &Query::all()).is_err());
    }

    #[test]
    fn durability_roundtrip() {
        let path = tmp("durable");
        {
            let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
            store.create_table(schema()).unwrap();
            store
                .insert("models", Record::new().set("id", "m1").set("name", "rf"))
                .unwrap();
            store.set_flag("models", "m1", "deprecated", true).unwrap();
        }
        let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.row_count("models").unwrap(), 1);
        let rec = store.get("models", "m1").unwrap().unwrap();
        assert_eq!(rec.get("deprecated"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejected_writes_not_logged() {
        let path = tmp("rejects");
        {
            let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
            store.create_table(schema()).unwrap();
            store
                .insert("models", Record::new().set("id", "m1").set("name", "rf"))
                .unwrap();
            // Duplicate key: must not reach the WAL.
            assert!(store
                .insert("models", Record::new().set("id", "m1").set("name", "x"))
                .is_err());
            // Type error: must not reach the WAL.
            assert!(store
                .insert("models", Record::new().set("id", "m2").set("name", 5i64))
                .is_err());
        }
        // Replay must succeed (a bad op in the log would fail).
        let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.row_count("models").unwrap(), 1);
    }

    #[test]
    fn injected_insert_fault() {
        let plan = FaultPlan::none();
        plan.fail_always(sites::META_INSERT);
        let store = MetadataStore::in_memory().with_faults(plan);
        store.create_table(schema()).unwrap();
        assert!(matches!(
            store.insert("models", Record::new().set("id", "m1").set("name", "rf")),
            Err(StoreError::InjectedFault(_))
        ));
        assert_eq!(store.row_count("models").unwrap(), 0);
    }

    #[test]
    fn concurrent_inserts() {
        let store = Arc::new(MetadataStore::in_memory());
        store.create_table(schema()).unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    store
                        .insert(
                            "models",
                            Record::new()
                                .set("id", format!("m{t}-{i}"))
                                .set("name", "rf"),
                        )
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.row_count("models").unwrap(), 1000);
    }
}

#[cfg(test)]
mod oplog_tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::{Value, ValueType};
    use std::path::PathBuf;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("name", ValueType::Str).hash_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gallery-oplog-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn leader_with_ops() -> MetadataStore {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        for i in 0..5 {
            store
                .insert(
                    "models",
                    Record::new().set("id", format!("m{i}")).set("name", "rf"),
                )
                .unwrap();
        }
        store.set_flag("models", "m2", "deprecated", true).unwrap();
        store
    }

    #[test]
    fn every_commit_advances_the_sequence() {
        let leader = leader_with_ops();
        // 1 create-table + 5 inserts + 1 set-flag.
        assert_eq!(leader.applied_seq(), 7);
        let all = leader.ops_since(0, 100);
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].0, 1);
        assert_eq!(all[6].0, 7);
        // Windowing.
        let tail = leader.ops_since(5, 100);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].0, 6);
        assert_eq!(leader.ops_since(7, 100).len(), 0);
        assert_eq!(leader.ops_since(999, 100).len(), 0);
        assert_eq!(leader.ops_since(0, 3).len(), 3);
    }

    #[test]
    fn rejected_writes_do_not_advance_the_sequence() {
        let leader = leader_with_ops();
        let seq = leader.applied_seq();
        assert!(leader
            .insert("models", Record::new().set("id", "m0").set("name", "x"))
            .is_err());
        assert!(leader.insert("nope", Record::new().set("id", "z")).is_err());
        assert_eq!(leader.applied_seq(), seq);
    }

    #[test]
    fn shipped_ops_replicate_a_leader() {
        let leader = leader_with_ops();
        let follower = MetadataStore::in_memory();
        for (seq, op) in leader.ops_since(0, 1000) {
            assert_eq!(follower.apply_shipped(seq, op).unwrap(), ShipApply::Applied);
        }
        assert_eq!(follower.applied_seq(), leader.applied_seq());
        assert_eq!(follower.row_count("models").unwrap(), 5);
        let rec = follower.get("models", "m2").unwrap().unwrap();
        assert_eq!(rec.get("deprecated"), Some(&Value::Bool(true)));
    }

    #[test]
    fn apply_shipped_is_replay_idempotent_and_detects_gaps() {
        let leader = leader_with_ops();
        let follower = MetadataStore::in_memory();
        let ops = leader.ops_since(0, 1000);
        // A gap is reported, not applied.
        assert_eq!(
            follower.apply_shipped(3, ops[2].1.clone()).unwrap(),
            ShipApply::Gap { expected: 1 }
        );
        assert_eq!(follower.applied_seq(), 0);
        // Normal apply, then replay the same frames: all skipped.
        for (seq, op) in &ops {
            follower.apply_shipped(*seq, op.clone()).unwrap();
        }
        for (seq, op) in &ops {
            assert_eq!(
                follower.apply_shipped(*seq, op.clone()).unwrap(),
                ShipApply::AlreadyApplied
            );
        }
        assert_eq!(follower.applied_seq(), leader.applied_seq());
        assert_eq!(follower.row_count("models").unwrap(), 5);
    }

    #[test]
    fn durable_follower_resumes_sequence_after_restart() {
        let path = tmp("resume");
        let leader = leader_with_ops();
        let ops = leader.ops_since(0, 1000);
        {
            let follower = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
            for (seq, op) in ops.iter().take(4) {
                follower.apply_shipped(*seq, op.clone()).unwrap();
            }
            assert_eq!(follower.applied_seq(), 4);
        }
        // Restart: the WAL holds exactly the shipped prefix, so the oplog
        // reseeds to sequence 4 and shipping resumes from there.
        let follower = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(follower.applied_seq(), 4);
        for (seq, op) in ops.iter().skip(4) {
            assert_eq!(
                follower.apply_shipped(*seq, op.clone()).unwrap(),
                ShipApply::Applied
            );
        }
        assert_eq!(follower.applied_seq(), leader.applied_seq());
        assert_eq!(follower.row_count("models").unwrap(), 5);
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;
    use crate::query::Constraint;
    use crate::schema::ColumnDef;
    use crate::value::{Value, ValueType};
    use std::path::PathBuf;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("name", ValueType::Str).hash_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gallery-compact-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_state() {
        let path = tmp("shrink");
        let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        store.create_table(schema()).unwrap();
        // Many flag flips blow up the raw log relative to the live state.
        for i in 0..50 {
            store
                .insert(
                    "models",
                    Record::new().set("id", format!("m{i}")).set("name", "rf"),
                )
                .unwrap();
        }
        for _ in 0..10 {
            for i in 0..50 {
                store
                    .set_flag("models", &format!("m{i}"), "deprecated", true)
                    .unwrap();
                store
                    .set_flag("models", &format!("m{i}"), "deprecated", false)
                    .unwrap();
            }
        }
        store.set_flag("models", "m7", "deprecated", true).unwrap();
        let before = store.wal_size_bytes().unwrap();
        let entries = store.compact().unwrap();
        let after = store.wal_size_bytes().unwrap();
        assert_eq!(entries, 1 + 50);
        assert!(after < before / 5, "log must shrink: {before} -> {after}");

        // State survives compaction + restart, including the final flags.
        drop(store);
        let restored = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(restored.row_count("models").unwrap(), 50);
        let rec = restored.get("models", "m7").unwrap().unwrap();
        assert_eq!(rec.get("deprecated"), Some(&Value::Bool(true)));
        let rec = restored.get("models", "m8").unwrap().unwrap();
        assert_eq!(rec.get("deprecated"), Some(&Value::Bool(false)));
        // Indexes rebuilt correctly.
        let rows = restored
            .query(
                "models",
                &Query::all()
                    .and(Constraint::eq("name", "rf"))
                    .with_deprecated(),
            )
            .unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn writes_continue_after_compaction() {
        let path = tmp("continue");
        let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        store.create_table(schema()).unwrap();
        store
            .insert("models", Record::new().set("id", "a").set("name", "x"))
            .unwrap();
        store.compact().unwrap();
        store
            .insert("models", Record::new().set("id", "b").set("name", "y"))
            .unwrap();
        drop(store);
        let restored = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        assert_eq!(restored.row_count("models").unwrap(), 2);
    }

    #[test]
    fn in_memory_compaction_is_noop() {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        assert_eq!(store.compact().unwrap(), 0);
        assert_eq!(store.wal_entries(), 0);
        assert!(store.wal_size_bytes().is_none());
    }
}
