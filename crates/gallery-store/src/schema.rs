//! Table schemas for the embedded metadata store.

use crate::error::{Result, StoreError};
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// Kind of secondary index maintained over a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Hash index: O(1) equality lookups.
    Hash,
    /// Ordered index: equality plus range scans.
    BTree,
}

/// Declaration of one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ValueType,
    pub nullable: bool,
    /// `Some(kind)` if a secondary index should be maintained on this column.
    pub index: Option<IndexKind>,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
            index: None,
        }
    }

    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }

    pub fn hash_indexed(mut self) -> Self {
        self.index = Some(IndexKind::Hash);
        self
    }

    pub fn btree_indexed(mut self) -> Self {
        self.index = Some(IndexKind::BTree);
        self
    }
}

/// Schema of a table: a named, ordered collection of columns with a
/// designated string primary-key column.
///
/// Records in the metadata store are immutable (paper §3.1): there is no
/// UPDATE; new versions are new rows keyed by new primary keys. The only
/// in-place mutation the store supports is setting flag columns that the
/// data model explicitly declares mutable (e.g. the `deprecated` flag of
/// §3.7 "Model Deprecation"), which is modeled as a separate operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    /// Name of the primary-key column; must be a non-nullable `Str` column.
    pub primary_key: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Build a schema. The primary key column must exist, be of type `Str`,
    /// and be non-nullable; this is validated eagerly.
    pub fn new(
        name: impl Into<String>,
        primary_key: impl Into<String>,
        columns: Vec<ColumnDef>,
    ) -> Result<Self> {
        let name = name.into();
        let primary_key = primary_key.into();
        let pk = columns
            .iter()
            .find(|c| c.name == primary_key)
            .ok_or_else(|| StoreError::NoSuchColumn {
                table: name.clone(),
                column: primary_key.clone(),
            })?;
        if pk.ty != ValueType::Str {
            return Err(StoreError::TypeMismatch {
                column: primary_key.clone(),
                expected: "str",
                got: pk.ty.name(),
            });
        }
        if pk.nullable {
            return Err(StoreError::BadQuery(format!(
                "primary key column {primary_key} must be non-nullable"
            )));
        }
        // Reject duplicate column names.
        for (i, a) in columns.iter().enumerate() {
            if columns[i + 1..].iter().any(|b| b.name == a.name) {
                return Err(StoreError::BadQuery(format!(
                    "duplicate column name {} in table {}",
                    a.name, name
                )));
            }
        }
        Ok(TableSchema {
            name,
            primary_key,
            columns,
        })
    }

    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a full row of values against this schema.
    pub fn validate_row(&self, values: &[(String, Value)]) -> Result<()> {
        for col in &self.columns {
            match values.iter().find(|(n, _)| n == &col.name) {
                None => {
                    if !col.nullable {
                        return Err(StoreError::MissingColumn(col.name.clone()));
                    }
                }
                Some((_, v)) => {
                    if v.is_null() {
                        if !col.nullable {
                            return Err(StoreError::MissingColumn(col.name.clone()));
                        }
                    } else if !v.conforms_to(col.ty) {
                        return Err(StoreError::TypeMismatch {
                            column: col.name.clone(),
                            expected: col.ty.name(),
                            got: v.type_name(),
                        });
                    }
                }
            }
        }
        for (n, _) in values {
            if self.column(n).is_none() {
                return Err(StoreError::NoSuchColumn {
                    table: self.name.clone(),
                    column: n.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str).hash_indexed(),
                ColumnDef::new("owner", ValueType::Str),
                ColumnDef::new("created", ValueType::Timestamp).btree_indexed(),
                ColumnDef::new("note", ValueType::Str).nullable(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_schema_builds() {
        let s = schema();
        assert_eq!(s.columns.len(), 4);
        assert_eq!(s.primary_key, "id");
    }

    #[test]
    fn pk_must_exist() {
        let err = TableSchema::new("t", "missing", vec![ColumnDef::new("a", ValueType::Str)]);
        assert!(matches!(err, Err(StoreError::NoSuchColumn { .. })));
    }

    #[test]
    fn pk_must_be_str() {
        let err = TableSchema::new("t", "a", vec![ColumnDef::new("a", ValueType::Int)]);
        assert!(matches!(err, Err(StoreError::TypeMismatch { .. })));
    }

    #[test]
    fn pk_must_be_non_nullable() {
        let err = TableSchema::new(
            "t",
            "a",
            vec![ColumnDef::new("a", ValueType::Str).nullable()],
        );
        assert!(err.is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            "a",
            vec![
                ColumnDef::new("a", ValueType::Str),
                ColumnDef::new("a", ValueType::Int),
            ],
        );
        assert!(err.is_err());
    }

    #[test]
    fn validate_row_catches_missing_required() {
        let s = schema();
        let row = vec![("id".to_string(), Value::from("m1"))];
        assert!(matches!(
            s.validate_row(&row),
            Err(StoreError::MissingColumn(_))
        ));
    }

    #[test]
    fn validate_row_catches_type_mismatch() {
        let s = schema();
        let row = vec![
            ("id".to_string(), Value::from("m1")),
            ("owner".to_string(), Value::Int(3)),
            ("created".to_string(), Value::Timestamp(1)),
        ];
        assert!(matches!(
            s.validate_row(&row),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn validate_row_catches_unknown_column() {
        let s = schema();
        let row = vec![
            ("id".to_string(), Value::from("m1")),
            ("owner".to_string(), Value::from("o")),
            ("created".to_string(), Value::Timestamp(1)),
            ("bogus".to_string(), Value::Int(0)),
        ];
        assert!(matches!(
            s.validate_row(&row),
            Err(StoreError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn nullable_columns_may_be_absent_or_null() {
        let s = schema();
        let row = vec![
            ("id".to_string(), Value::from("m1")),
            ("owner".to_string(), Value::from("o")),
            ("created".to_string(), Value::Timestamp(1)),
            ("note".to_string(), Value::Null),
        ];
        assert!(s.validate_row(&row).is_ok());
    }
}
