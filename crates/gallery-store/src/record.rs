//! Records (rows) stored in metadata tables.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// One immutable row. Field order follows the table schema after insertion;
/// builders may supply fields in any order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    pub fn new() -> Self {
        Record { fields: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Self {
        Record {
            fields: Vec::with_capacity(n),
        }
    }

    /// Builder-style field setter. Setting the same field twice replaces the
    /// earlier value (records themselves are immutable once stored; this
    /// only affects construction).
    pub fn set(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.fields.push((name, value));
        }
        self
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Get a field, treating an absent field as `Null`.
    pub fn get_or_null(&self, name: &str) -> Value {
        self.get(name).cloned().unwrap_or(Value::Null)
    }

    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    pub fn into_fields(self) -> Vec<(String, Value)> {
        self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Approximate in-memory footprint (names + values).
    pub fn approx_size(&self) -> usize {
        self.fields
            .iter()
            .map(|(n, v)| n.len() + v.approx_size())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

impl Default for Record {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable encode buffer for hot serialization paths (the WAL's group
/// commit). Encoding a record-bearing op per append used to allocate a
/// fresh line buffer every time; a batch borrows one `EncodeBuf`, appends
/// every framed entry into it, and hands the whole batch to the file in a
/// single write. `reset` keeps the capacity, so steady-state appends stop
/// allocating once the buffer has grown to the largest batch seen.
#[derive(Debug, Default)]
pub struct EncodeBuf {
    buf: String,
}

impl EncodeBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear contents, keep capacity.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn as_bytes(&self) -> &[u8] {
        self.buf.as_bytes()
    }

    /// Mutable access for callers assembling framed lines in place.
    pub fn buf_mut(&mut self) -> &mut String {
        &mut self.buf
    }
}

impl FromIterator<(String, Value)> for Record {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Record {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let r = Record::new().set("a", 1i64).set("b", "x");
        assert_eq!(r.get("a"), Some(&Value::Int(1)));
        assert_eq!(r.get("b"), Some(&Value::Str("x".into())));
        assert_eq!(r.get("c"), None);
    }

    #[test]
    fn set_twice_replaces() {
        let r = Record::new().set("a", 1i64).set("a", 2i64);
        assert_eq!(r.get("a"), Some(&Value::Int(2)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn get_or_null() {
        let r = Record::new();
        assert_eq!(r.get_or_null("missing"), Value::Null);
    }

    #[test]
    fn from_iterator() {
        let r: Record = vec![("k".to_string(), Value::Int(9))].into_iter().collect();
        assert_eq!(r.get("k"), Some(&Value::Int(9)));
    }
}
