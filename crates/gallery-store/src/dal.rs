//! The unified Data Access Layer (DAL) of §3.5.
//!
//! All Gallery reads and writes go through here. The DAL enforces the
//! paper's crash-consistency discipline: *blob first, metadata second* —
//! "we always write model blobs first and only write the model metadata
//! after the model blobs are successfully stored. If the model blob of a
//! model instance is saved but the metadata fails to save, then the model
//! instance will not be available in the system." Orphan blobs are
//! tolerated; dangling metadata is not.

use crate::blob::{BlobInfo, BlobLocation, ObjectStore};
use crate::error::{Result, StoreError};
use crate::meta::MetadataStore;
use crate::query::{AccessPath, Explain, Query};
use crate::record::Record;
use crate::schema::TableSchema;
use bytes::Bytes;
use gallery_telemetry::{kinds, Counter, Gauge, Histogram, Telemetry};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Write ordering for blob+metadata pairs. `BlobFirst` is the paper's
/// choice; `MetadataFirst` exists only as the ablation arm of experiment
/// E10 and is deliberately unsafe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOrdering {
    BlobFirst,
    MetadataFirst,
}

/// Result of a combined blob+metadata write.
#[derive(Debug, Clone)]
pub struct StoredEntity {
    pub blob: BlobInfo,
}

/// Outcome of a consistency audit over the whole store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Metadata rows whose `blob_location` points at a missing blob. Under
    /// `BlobFirst` this must always be empty.
    pub dangling_metadata: Vec<String>,
    /// Blobs not referenced by any metadata row. Expected crash artifacts.
    pub orphan_blobs: Vec<BlobLocation>,
    pub rows_checked: usize,
    pub blobs_checked: usize,
}

impl ConsistencyReport {
    /// The §3.5 invariant: every metadata row resolves to a blob.
    pub fn is_consistent(&self) -> bool {
        self.dangling_metadata.is_empty()
    }
}

/// Outcome of an orphan-blob repair pass ([`Dal::repair_orphans`]).
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Orphan blobs successfully garbage-collected.
    pub deleted: Vec<BlobLocation>,
    /// Orphans whose deletion failed (left in place for a later pass).
    pub failed: Vec<(BlobLocation, StoreError)>,
    /// The audit that drove the repair.
    pub audit: ConsistencyReport,
}

/// A blob read that may have been served from cache while the backend was
/// unavailable. `stale` means the bytes bypassed backend verification —
/// blobs are immutable so the content is correct, but the caller is on
/// notice that the authoritative store did not confirm it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedRead {
    pub data: Bytes,
    pub stale: bool,
}

/// Run `f` up to `max_attempts` times, retrying only *transient* errors
/// (see [`StoreError::is_transient`]). Semantic errors surface immediately.
/// Store-level fault sites fire before any mutation, so a retried write
/// never double-applies.
fn with_retry<T>(max_attempts: u32, mut f: impl FnMut() -> Result<T>) -> Result<T> {
    let attempts = max_attempts.max(1);
    let mut last = None;
    for _ in 0..attempts {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Pre-minted telemetry handles for the DAL hot paths. Registered once at
/// construction so an instrumented operation costs an atomic add and a
/// histogram observation, never a registry lookup.
struct DalMetrics {
    telemetry: Arc<Telemetry>,
    get_total: Arc<Counter>,
    put_total: Arc<Counter>,
    put_blob_total: Arc<Counter>,
    query_total: Arc<Counter>,
    set_flag_total: Arc<Counter>,
    fetch_blob_total: Arc<Counter>,
    degraded_total: Arc<Counter>,
    stale_total: Arc<Counter>,
    get_ms: Arc<Histogram>,
    put_blob_ms: Arc<Histogram>,
    query_ms: Arc<Histogram>,
    fetch_blob_ms: Arc<Histogram>,
    blob_read_total: Arc<Counter>,
    blob_write_total: Arc<Counter>,
    blob_delete_total: Arc<Counter>,
    orphans_repaired_total: Arc<Counter>,
    blob_read_bytes: Arc<Counter>,
    blob_write_bytes: Arc<Counter>,
    blob_read_ms: Arc<Histogram>,
    blob_write_ms: Arc<Histogram>,
    wal_size_bytes: Arc<Gauge>,
    meta_records: Arc<Gauge>,
    blob_bytes_resident: Arc<Gauge>,
}

impl DalMetrics {
    fn new(telemetry: Arc<Telemetry>) -> Self {
        let r = telemetry.registry();
        DalMetrics {
            get_total: r.counter("gallery_dal_ops_total", &[("op", "get")]),
            put_total: r.counter("gallery_dal_ops_total", &[("op", "put")]),
            put_blob_total: r.counter("gallery_dal_ops_total", &[("op", "put_with_blob")]),
            query_total: r.counter("gallery_dal_ops_total", &[("op", "query")]),
            set_flag_total: r.counter("gallery_dal_ops_total", &[("op", "set_flag")]),
            fetch_blob_total: r.counter("gallery_dal_ops_total", &[("op", "fetch_blob")]),
            degraded_total: r.counter("gallery_dal_degraded_reads_total", &[]),
            stale_total: r.counter("gallery_dal_stale_reads_total", &[]),
            get_ms: r.duration_histogram("gallery_dal_op_duration_ms", &[("op", "get")]),
            put_blob_ms: r
                .duration_histogram("gallery_dal_op_duration_ms", &[("op", "put_with_blob")]),
            query_ms: r.duration_histogram("gallery_dal_op_duration_ms", &[("op", "query")]),
            fetch_blob_ms: r
                .duration_histogram("gallery_dal_op_duration_ms", &[("op", "fetch_blob")]),
            blob_read_total: r.counter("gallery_blob_ops_total", &[("op", "read")]),
            blob_write_total: r.counter("gallery_blob_ops_total", &[("op", "write")]),
            blob_delete_total: r.counter("gallery_blob_ops_total", &[("op", "delete")]),
            orphans_repaired_total: r.counter("gallery_dal_orphans_repaired_total", &[]),
            blob_read_bytes: r.counter("gallery_blob_bytes_total", &[("op", "read")]),
            blob_write_bytes: r.counter("gallery_blob_bytes_total", &[("op", "write")]),
            blob_read_ms: r.duration_histogram("gallery_blob_op_duration_ms", &[("op", "read")]),
            blob_write_ms: r.duration_histogram("gallery_blob_op_duration_ms", &[("op", "write")]),
            wal_size_bytes: r.gauge("gallery_wal_size_bytes", &[]),
            meta_records: r.gauge("gallery_meta_records", &[]),
            blob_bytes_resident: r.gauge("gallery_blob_bytes_resident", &[]),
            telemetry,
        }
    }
}

/// Unified data access layer.
pub struct Dal {
    meta: Arc<MetadataStore>,
    blobs: Arc<dyn ObjectStore>,
    ordering: WriteOrdering,
    metrics: DalMetrics,
}

impl Dal {
    pub fn new(meta: Arc<MetadataStore>, blobs: Arc<dyn ObjectStore>) -> Self {
        Dal {
            meta,
            blobs,
            ordering: WriteOrdering::BlobFirst,
            metrics: DalMetrics::new(Arc::clone(gallery_telemetry::global())),
        }
    }

    /// Ablation hook for E10: switch to the unsafe ordering.
    pub fn with_ordering(mut self, ordering: WriteOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Record DAL/blob metrics and degraded-read events into `telemetry`
    /// instead of the process global.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.metrics = DalMetrics::new(telemetry);
        self
    }

    /// Instrumented blob write: counts ops/bytes and times the backend.
    fn blob_put(&self, blob: Bytes) -> Result<BlobInfo> {
        let len = blob.len() as u64;
        let start = Instant::now();
        let info = self.blobs.put(blob)?;
        self.metrics.blob_write_ms.observe_since(start);
        self.metrics.blob_write_total.inc();
        self.metrics.blob_write_bytes.add(len);
        Ok(info)
    }

    /// Instrumented blob read.
    fn blob_get(&self, location: &BlobLocation) -> Result<Bytes> {
        let start = Instant::now();
        let data = self.blobs.get(location)?;
        self.metrics.blob_read_ms.observe_since(start);
        self.metrics.blob_read_total.inc();
        self.metrics.blob_read_bytes.add(data.len() as u64);
        Ok(data)
    }

    pub fn ordering(&self) -> WriteOrdering {
        self.ordering
    }

    pub fn metadata(&self) -> &Arc<MetadataStore> {
        &self.meta
    }

    /// Refresh the storage-size gauges (`gallery_wal_size_bytes`,
    /// `gallery_meta_records`, `gallery_blob_bytes_resident`) from the
    /// current store state. Sizes are pulled, not pushed: callers that
    /// expose metrics (`gallery stats`, the service probe, the alert
    /// engine's users) refresh right before reading the registry instead
    /// of taxing every write with a size computation.
    pub fn refresh_storage_gauges(&self) {
        self.metrics
            .wal_size_bytes
            .set(self.meta.wal_size_bytes().unwrap_or(0) as i64);
        self.metrics.meta_records.set(self.meta.total_rows() as i64);
        self.metrics
            .blob_bytes_resident
            .set(self.blobs.total_bytes() as i64);
    }

    pub fn blobs(&self) -> &Arc<dyn ObjectStore> {
        &self.blobs
    }

    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        self.meta.create_table(schema)
    }

    /// Store a blob together with its metadata record. The record's
    /// `blob_location` column is filled in by the DAL. Under `BlobFirst`,
    /// a metadata failure after a successful blob write leaves only an
    /// orphan blob (harmless); under `MetadataFirst` (ablation), a blob
    /// failure leaves dangling metadata (the failure mode the paper's
    /// ordering prevents).
    pub fn put_with_blob(&self, table: &str, record: Record, blob: Bytes) -> Result<StoredEntity> {
        self.metrics.put_blob_total.inc();
        let start = Instant::now();
        let result = self.put_with_blob_inner(table, record, blob);
        self.metrics.put_blob_ms.observe_since(start);
        result
    }

    fn put_with_blob_inner(
        &self,
        table: &str,
        record: Record,
        blob: Bytes,
    ) -> Result<StoredEntity> {
        match self.ordering {
            WriteOrdering::BlobFirst => {
                let info = self.blob_put(blob)?;
                let record = record.set("blob_location", info.location.as_str());
                self.meta.insert(table, record)?;
                Ok(StoredEntity { blob: info })
            }
            WriteOrdering::MetadataFirst => {
                // Deliberately unsafe: reserve the location up front, write
                // metadata referencing it, then try the blob. A failure (or
                // crash) between the two writes leaves dangling metadata —
                // the hazard §3.5's blob-first rule prevents. Records are
                // immutable, so the location cannot be fixed up afterwards.
                let location = self.blobs.reserve()?;
                let record = record.set("blob_location", location.as_str());
                self.meta.insert(table, record)?;
                let info = self.blobs.put_at(&location, blob)?;
                Ok(StoredEntity { blob: info })
            }
        }
    }

    /// [`Dal::put_with_blob`] with bounded retry of each leg. Only
    /// `BlobFirst` gets retries: each leg is individually idempotent-safe
    /// (blob `put` mints a fresh location per call and fault sites fire
    /// before mutation; metadata `insert` rejects duplicates), so retrying
    /// a transiently failed leg cannot double-apply. The `MetadataFirst`
    /// ablation is deliberately unsafe and is left un-retried.
    pub fn put_with_blob_retrying(
        &self,
        table: &str,
        record: Record,
        blob: Bytes,
        max_attempts: u32,
    ) -> Result<StoredEntity> {
        if self.ordering != WriteOrdering::BlobFirst {
            return self.put_with_blob(table, record, blob);
        }
        self.metrics.put_blob_total.inc();
        let start = Instant::now();
        let result = (|| {
            let info = with_retry(max_attempts, || self.blob_put(blob.clone()))?;
            let record = record.set("blob_location", info.location.as_str());
            with_retry(max_attempts, || self.meta.insert(table, record.clone()))?;
            Ok(StoredEntity { blob: info })
        })();
        self.metrics.put_blob_ms.observe_since(start);
        result
    }

    /// Insert a metadata-only record (no blob).
    pub fn put(&self, table: &str, record: Record) -> Result<()> {
        self.metrics.put_total.inc();
        self.meta.insert(table, record)
    }

    /// Insert a batch of metadata-only records through the store's group
    /// commit, normally one WAL write + fsync for the whole batch. All
    /// records are validated before any commits; not a transaction (see
    /// [`MetadataStore::insert_many`]).
    pub fn put_many(&self, table: &str, records: Vec<Record>) -> Result<usize> {
        let n = self.meta.insert_many(table, records)?;
        self.metrics.put_total.add(n as u64);
        Ok(n)
    }

    pub fn get(&self, table: &str, pk: &str) -> Result<Option<Record>> {
        self.metrics.get_total.inc();
        let start = Instant::now();
        let result = self.meta.get(table, pk);
        self.metrics.get_ms.observe_since(start);
        result
    }

    pub fn query(&self, table: &str, query: &Query) -> Result<Vec<Record>> {
        self.metrics.query_total.inc();
        let start = Instant::now();
        let result = self.meta.query(table, query);
        self.metrics.query_ms.observe_since(start);
        result
    }

    pub fn query_explain(&self, table: &str, query: &Query) -> Result<(Vec<Record>, AccessPath)> {
        self.metrics.query_total.inc();
        let start = Instant::now();
        let result = self.meta.query_explain(table, query);
        self.metrics.query_ms.observe_since(start);
        result
    }

    /// [`Dal::query_explain`] with the full [`Explain`] artifact:
    /// estimated vs. actual rows, tail-merge size, per-stage timings.
    pub fn query_explain_full(&self, table: &str, query: &Query) -> Result<(Vec<Record>, Explain)> {
        self.metrics.query_total.inc();
        let start = Instant::now();
        let result = self.meta.query_explain_full(table, query);
        self.metrics.query_ms.observe_since(start);
        result
    }

    pub fn set_flag(&self, table: &str, pk: &str, column: &str, value: bool) -> Result<()> {
        self.metrics.set_flag_total.inc();
        self.meta.set_flag(table, pk, column, value)
    }

    /// Resolve a record's blob: read metadata, follow `blob_location`,
    /// fetch bytes. This is the paper's two-hop read path (§3.5): "the
    /// request first goes to MySQL to get the location of the model blob,
    /// and then the model is directly accessed via the storage location."
    pub fn fetch_blob_of(&self, table: &str, pk: &str) -> Result<Bytes> {
        self.metrics.fetch_blob_total.inc();
        let start = Instant::now();
        let result = (|| {
            let record = self
                .meta
                .get(table, pk)?
                .ok_or_else(|| StoreError::NoSuchKey(pk.to_owned()))?;
            let loc = record
                .get("blob_location")
                .and_then(|v| v.as_str())
                .ok_or_else(|| {
                    StoreError::BadQuery(format!("{table}/{pk} has no blob_location"))
                })?;
            self.blob_get(&BlobLocation::new(loc))
        })();
        self.metrics.fetch_blob_ms.observe_since(start);
        result
    }

    pub fn fetch_blob(&self, location: &BlobLocation) -> Result<Bytes> {
        self.blob_get(location)
    }

    /// [`Dal::fetch_blob_of`] with bounded retry and graceful degradation:
    /// both hops retry transient failures, and if the blob backend stays
    /// down after the retry budget, the read falls back to the LRU cache
    /// (when the store has one) and is flagged `stale`.
    pub fn fetch_blob_of_degraded(
        &self,
        table: &str,
        pk: &str,
        max_attempts: u32,
    ) -> Result<DegradedRead> {
        let record = with_retry(max_attempts, || self.meta.get(table, pk))?
            .ok_or_else(|| StoreError::NoSuchKey(pk.to_owned()))?;
        let loc = record
            .get("blob_location")
            .and_then(|v| v.as_str())
            .ok_or_else(|| StoreError::BadQuery(format!("{table}/{pk} has no blob_location")))?;
        let loc = BlobLocation::new(loc);
        self.metrics.degraded_total.inc();
        match with_retry(max_attempts, || self.blob_get(&loc)) {
            Ok(data) => Ok(DegradedRead { data, stale: false }),
            Err(e) if e.is_transient() => match self.blobs.get_cached_only(&loc) {
                Some(data) => {
                    self.metrics.stale_total.inc();
                    self.metrics.telemetry.events().emit(
                        kinds::DEGRADED_READ,
                        vec![
                            ("table", table.to_string()),
                            ("pk", pk.to_string()),
                            ("stale", "true".to_string()),
                        ],
                    );
                    Ok(DegradedRead { data, stale: true })
                }
                None => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Garbage-collect orphan blobs: audit, then delete every blob no
    /// metadata row references. Safe by construction — under blob-first
    /// ordering an orphan can never become referenced later, because
    /// records are immutable and blob locations are minted fresh per
    /// `put`. Failed deletions are reported, not fatal.
    pub fn repair_orphans(&self, tables: &[&str]) -> Result<RepairReport> {
        let audit = self.audit_consistency(tables)?;
        let mut report = RepairReport {
            audit: audit.clone(),
            ..Default::default()
        };
        for loc in &audit.orphan_blobs {
            match self.blobs.delete(loc) {
                Ok(()) => {
                    self.metrics.blob_delete_total.inc();
                    self.metrics.orphans_repaired_total.inc();
                    self.metrics
                        .telemetry
                        .events()
                        .emit(kinds::ORPHAN_REPAIRED, vec![("location", loc.to_string())]);
                    report.deleted.push(loc.clone());
                }
                Err(e) => report.failed.push((loc.clone(), e)),
            }
        }
        Ok(report)
    }

    /// Audit referential integrity between metadata and blob store across
    /// the given tables (checking each table's `blob_location` column).
    pub fn audit_consistency(&self, tables: &[&str]) -> Result<ConsistencyReport> {
        let mut report = ConsistencyReport::default();
        let mut referenced: HashSet<BlobLocation> = HashSet::new();
        for table in tables {
            let rows = self.meta.query(table, &Query::all().with_deprecated())?;
            for row in rows {
                report.rows_checked += 1;
                if let Some(loc) = row.get("blob_location").and_then(|v| v.as_str()) {
                    let loc = BlobLocation::new(loc);
                    if !self.blobs.contains(&loc) {
                        let pk = row
                            .get("id")
                            .and_then(|v| v.as_str())
                            .unwrap_or("<unknown>")
                            .to_owned();
                        report.dangling_metadata.push(format!("{table}/{pk}"));
                    }
                    referenced.insert(loc);
                }
            }
        }
        for loc in self.blobs.list() {
            report.blobs_checked += 1;
            if !referenced.contains(&loc) {
                report.orphan_blobs.push(loc);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blob::memory::MemoryBlobStore;
    use crate::fault::{sites, FaultPlan};
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "instances",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("blob_location", ValueType::Str).nullable(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap()
    }

    fn dal_with(meta_faults: Option<FaultPlan>, blob_faults: Option<FaultPlan>) -> Dal {
        let meta = match meta_faults {
            Some(p) => MetadataStore::in_memory().with_faults(p),
            None => MetadataStore::in_memory(),
        };
        let blobs = match blob_faults {
            Some(p) => MemoryBlobStore::new().with_faults(p),
            None => MemoryBlobStore::new(),
        };
        let dal = Dal::new(Arc::new(meta), Arc::new(blobs));
        dal.create_table(schema()).unwrap();
        dal
    }

    #[test]
    fn put_with_blob_roundtrip() {
        let dal = dal_with(None, None);
        let stored = dal
            .put_with_blob(
                "instances",
                Record::new().set("id", "i1"),
                Bytes::from_static(b"w"),
            )
            .unwrap();
        assert!(dal.blobs().contains(&stored.blob.location));
        let bytes = dal.fetch_blob_of("instances", "i1").unwrap();
        assert_eq!(bytes, Bytes::from_static(b"w"));
    }

    #[test]
    fn blob_first_metadata_failure_leaves_no_dangling() {
        let plan = FaultPlan::none();
        plan.fail_always(sites::META_INSERT);
        let dal = dal_with(Some(plan), None);
        // create_table already done without faults on meta? create_table is
        // not fault-injected (only insert is), so the table exists.
        let err = dal.put_with_blob(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"w"),
        );
        assert!(err.is_err());
        let report = dal.audit_consistency(&["instances"]).unwrap();
        assert!(report.is_consistent());
        assert_eq!(report.orphan_blobs.len(), 1); // harmless orphan
    }

    #[test]
    fn blob_first_blob_failure_writes_nothing() {
        let plan = FaultPlan::none();
        plan.fail_always(sites::BLOB_PUT);
        let dal = dal_with(None, Some(plan));
        let err = dal.put_with_blob(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"w"),
        );
        assert!(err.is_err());
        assert_eq!(dal.metadata().row_count("instances").unwrap(), 0);
        assert_eq!(dal.blobs().blob_count(), 0);
    }

    #[test]
    fn metadata_first_ablation_produces_dangling() {
        let plan = FaultPlan::none();
        plan.fail_always(sites::BLOB_PUT);
        let dal = dal_with(None, Some(plan)).with_ordering(WriteOrdering::MetadataFirst);
        let err = dal.put_with_blob(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"w"),
        );
        assert!(err.is_err());
        let report = dal.audit_consistency(&["instances"]).unwrap();
        assert!(!report.is_consistent());
        assert_eq!(report.dangling_metadata, vec!["instances/i1".to_string()]);
    }

    #[test]
    fn fetch_blob_of_missing_row() {
        let dal = dal_with(None, None);
        assert!(matches!(
            dal.fetch_blob_of("instances", "nope"),
            Err(StoreError::NoSuchKey(_))
        ));
    }

    #[test]
    fn fetch_blob_of_row_without_blob() {
        let dal = dal_with(None, None);
        dal.put("instances", Record::new().set("id", "i1")).unwrap();
        assert!(dal.fetch_blob_of("instances", "i1").is_err());
    }

    #[test]
    fn retrying_write_survives_transient_faults() {
        let plan = FaultPlan::none();
        plan.fail_first_n(sites::BLOB_PUT, 2);
        plan.fail_first_n(sites::META_INSERT, 2);
        let dal = dal_with(Some(plan.clone()), Some(plan));
        let stored = dal
            .put_with_blob_retrying(
                "instances",
                Record::new().set("id", "i1"),
                Bytes::from_static(b"w"),
                4,
            )
            .unwrap();
        // Exactly once despite retries: one row, one referenced blob.
        assert_eq!(dal.metadata().row_count("instances").unwrap(), 1);
        assert_eq!(dal.blobs().blob_count(), 1);
        assert_eq!(
            dal.fetch_blob_of("instances", "i1").unwrap(),
            Bytes::from_static(b"w")
        );
        assert!(dal.blobs().contains(&stored.blob.location));
    }

    #[test]
    fn retrying_write_does_not_retry_semantic_errors() {
        let dal = dal_with(None, None);
        dal.put_with_blob(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"a"),
        )
        .unwrap();
        // Duplicate key is permanent; the retried write must fail once and
        // leave only the orphan blob from its own blob-first leg.
        let err = dal.put_with_blob_retrying(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"b"),
            8,
        );
        assert!(matches!(err, Err(StoreError::DuplicateKey(_))));
        assert_eq!(dal.metadata().row_count("instances").unwrap(), 1);
    }

    #[test]
    fn retrying_write_exhausts_budget() {
        let plan = FaultPlan::none();
        plan.fail_first_n(sites::BLOB_PUT, 5);
        let dal = dal_with(None, Some(plan));
        let err = dal.put_with_blob_retrying(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"w"),
            3,
        );
        assert!(matches!(err, Err(StoreError::InjectedFault(_))));
        assert_eq!(dal.blobs().blob_count(), 0);
    }

    #[test]
    fn degraded_read_falls_back_to_cache() {
        use crate::blob::cache::CachedBlobStore;
        let plan = FaultPlan::none();
        let backend = Arc::new(MemoryBlobStore::new().with_faults(plan.clone()));
        let cached: Arc<dyn ObjectStore> = Arc::new(CachedBlobStore::new(backend, 1 << 20));
        let dal = Dal::new(Arc::new(MetadataStore::in_memory()), cached);
        dal.create_table(schema()).unwrap();
        dal.put_with_blob(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"w"),
        )
        .unwrap();
        // put warmed the LRU; CachedBlobStore::get serves the hit before
        // ever touching the failing backend, so this read is NOT stale.
        plan.fail_always(sites::BLOB_GET);
        let read = dal.fetch_blob_of_degraded("instances", "i1", 2).unwrap();
        assert_eq!(read.data, Bytes::from_static(b"w"));
        assert!(!read.stale);
    }

    #[test]
    fn degraded_read_flags_stale_when_backend_down() {
        // The stale flag fires when get() fails but the cache peek
        // succeeds. A warm CachedBlobStore serves get() from its LRU, so
        // to exercise the path we need a store whose get() always fails
        // while its peek still works: a facade over the warm cache.
        use crate::blob::cache::CachedBlobStore;
        let plan = FaultPlan::none();
        let backend = Arc::new(MemoryBlobStore::new().with_faults(plan.clone()));
        let cache = Arc::new(CachedBlobStore::new(backend, 1 << 20));
        let cached: Arc<dyn ObjectStore> = cache.clone();
        let dal = Dal::new(Arc::new(MetadataStore::in_memory()), cached);
        dal.create_table(schema()).unwrap();
        dal.put_with_blob(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"w"),
        )
        .unwrap();
        struct DownFacade(Arc<CachedBlobStore>);
        impl ObjectStore for DownFacade {
            fn put(&self, data: Bytes) -> Result<BlobInfo> {
                self.0.put(data)
            }
            fn get(&self, _location: &BlobLocation) -> Result<Bytes> {
                Err(StoreError::Io("backend unreachable".into()))
            }
            fn get_cached_only(&self, location: &BlobLocation) -> Option<Bytes> {
                self.0.get_cached_only(location)
            }
            fn contains(&self, location: &BlobLocation) -> bool {
                self.0.contains(location)
            }
            fn blob_count(&self) -> usize {
                self.0.blob_count()
            }
            fn total_bytes(&self) -> u64 {
                self.0.total_bytes()
            }
            fn list(&self) -> Vec<BlobLocation> {
                self.0.list()
            }
        }
        let down = Dal::new(
            Arc::clone(dal.metadata()),
            Arc::new(DownFacade(cache)) as Arc<dyn ObjectStore>,
        );
        let read = down.fetch_blob_of_degraded("instances", "i1", 3).unwrap();
        assert_eq!(read.data, Bytes::from_static(b"w"));
        assert!(read.stale);
        // A location that was never cached cannot degrade: error surfaces.
        down.metadata()
            .insert(
                "instances",
                Record::new()
                    .set("id", "i2")
                    .set("blob_location", "mem://cold"),
            )
            .unwrap();
        assert!(down.fetch_blob_of_degraded("instances", "i2", 2).is_err());
    }

    #[test]
    fn repair_deletes_orphans_and_keeps_referenced() {
        let plan = FaultPlan::none();
        plan.fail_nth_call(sites::META_INSERT, 1);
        let dal = dal_with(Some(plan), None);
        dal.put_with_blob(
            "instances",
            Record::new().set("id", "ok"),
            Bytes::from_static(b"keep"),
        )
        .unwrap();
        // Second write: blob lands, metadata fails -> orphan.
        assert!(dal
            .put_with_blob(
                "instances",
                Record::new().set("id", "crash"),
                Bytes::from_static(b"gc")
            )
            .is_err());
        assert_eq!(dal.blobs().blob_count(), 2);

        let report = dal.repair_orphans(&["instances"]).unwrap();
        assert_eq!(report.deleted.len(), 1);
        assert!(report.failed.is_empty());
        assert_eq!(dal.blobs().blob_count(), 1);
        // Referenced blob still resolves; store is now fully consistent.
        assert_eq!(
            dal.fetch_blob_of("instances", "ok").unwrap(),
            Bytes::from_static(b"keep")
        );
        let audit = dal.audit_consistency(&["instances"]).unwrap();
        assert!(audit.is_consistent() && audit.orphan_blobs.is_empty());
    }

    #[test]
    fn repair_reports_failed_deletes() {
        let plan = FaultPlan::none();
        plan.fail_nth_call(sites::META_INSERT, 0);
        plan.fail_always(sites::BLOB_DELETE);
        let dal = dal_with(Some(plan.clone()), Some(plan));
        assert!(dal
            .put_with_blob(
                "instances",
                Record::new().set("id", "i1"),
                Bytes::from_static(b"x")
            )
            .is_err());
        let report = dal.repair_orphans(&["instances"]).unwrap();
        assert!(report.deleted.is_empty());
        assert_eq!(report.failed.len(), 1);
        assert_eq!(dal.blobs().blob_count(), 1); // orphan left for next pass
    }

    #[test]
    fn audit_counts() {
        let dal = dal_with(None, None);
        dal.put_with_blob(
            "instances",
            Record::new().set("id", "i1"),
            Bytes::from_static(b"a"),
        )
        .unwrap();
        dal.put_with_blob(
            "instances",
            Record::new().set("id", "i2"),
            Bytes::from_static(b"b"),
        )
        .unwrap();
        let report = dal.audit_consistency(&["instances"]).unwrap();
        assert_eq!(report.rows_checked, 2);
        assert_eq!(report.blobs_checked, 2);
        assert!(report.orphan_blobs.is_empty());
        assert!(report.is_consistent());
    }
}
