//! WAL shipping: the unit of replication between a shard leader and its
//! followers (docs/replication.md).
//!
//! A [`ShipFrame`] is one committed [`WalOp`] plus its 1-based commit
//! sequence, with the op carried as the same serde-JSON encoding the
//! physical WAL uses — so what travels between nodes is byte-compatible
//! with what recovery replays from disk. The service layer moves frames
//! over the wire; this module owns their (de)serialization and the
//! store-side batch helpers.

use crate::error::{Result, StoreError};
use crate::meta::{MetadataStore, ShipApply};
use crate::wal::WalOp;

/// One shipped op: `(seq, op)` with the op in WAL JSON form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipFrame {
    /// 1-based commit sequence on the leader.
    pub seq: u64,
    /// The op, encoded exactly as a physical WAL record's payload.
    pub op_json: String,
}

impl ShipFrame {
    pub fn new(seq: u64, op: &WalOp) -> Result<Self> {
        Ok(ShipFrame {
            seq,
            op_json: serde_json::to_string(op)
                .map_err(|e| StoreError::Io(format!("ship encode: {e}")))?,
        })
    }

    /// Decode the carried op. A frame that fails to decode is a protocol
    /// bug or corruption, never applied.
    pub fn op(&self) -> Result<WalOp> {
        serde_json::from_str(&self.op_json).map_err(|e| StoreError::Io(format!("ship decode: {e}")))
    }
}

/// Outcome of applying a batch of shipped frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Frames committed by this batch.
    pub applied: u64,
    /// Frames skipped because the local log already held their sequence.
    pub skipped: u64,
    /// Set when a frame was ahead of the local log: the sequence the
    /// follower needs shipping to restart from. Frames after the gap are
    /// not attempted.
    pub resend_from: Option<u64>,
}

impl MetadataStore {
    /// Leader side: the frames a follower at `from_seq` is missing, at
    /// most `max` of them, plus this store's own applied sequence (so the
    /// caller can compute lag even when no frames ship).
    pub fn ship_since(&self, from_seq: u64, max: usize) -> Result<(u64, Vec<ShipFrame>)> {
        let frames = self
            .ops_since(from_seq, max)
            .into_iter()
            .map(|(seq, op)| ShipFrame::new(seq, &op))
            .collect::<Result<Vec<_>>>()?;
        Ok((self.applied_seq(), frames))
    }

    /// Follower side: apply a batch of shipped frames in order,
    /// replay-idempotently. Stops at the first gap (reported, not an
    /// error) or the first real apply failure (an error: the replica is
    /// diverging and must be re-seeded).
    pub fn apply_ship(&self, frames: &[ShipFrame]) -> Result<ShipReport> {
        let mut report = ShipReport::default();
        for frame in frames {
            match self.apply_shipped(frame.seq, frame.op()?)? {
                ShipApply::Applied => report.applied += 1,
                ShipApply::AlreadyApplied => report.skipped += 1,
                ShipApply::Gap { expected } => {
                    report.resend_from = Some(expected);
                    break;
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::ValueType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "models",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("name", ValueType::Str),
            ],
        )
        .unwrap()
    }

    fn leader() -> MetadataStore {
        let store = MetadataStore::in_memory();
        store.create_table(schema()).unwrap();
        for i in 0..8 {
            store
                .insert(
                    "models",
                    Record::new().set("id", format!("m{i}")).set("name", "rf"),
                )
                .unwrap();
        }
        store
    }

    #[test]
    fn frames_roundtrip_the_wal_encoding() {
        let op = WalOp::Insert {
            table: "models".into(),
            record: std::sync::Arc::new(Record::new().set("id", "m1").set("name", "rf")),
        };
        let frame = ShipFrame::new(42, &op).unwrap();
        let back = frame.op().unwrap();
        match back {
            WalOp::Insert { table, .. } => assert_eq!(table, "models"),
            other => panic!("unexpected op {other:?}"),
        }
        assert!(ShipFrame {
            seq: 1,
            op_json: "not json".into()
        }
        .op()
        .is_err());
    }

    #[test]
    fn ship_and_apply_in_batches_converges() {
        let leader = leader();
        let follower = MetadataStore::in_memory();
        loop {
            let (leader_seq, frames) = leader.ship_since(follower.applied_seq(), 3).unwrap();
            if frames.is_empty() {
                assert_eq!(follower.applied_seq(), leader_seq);
                break;
            }
            let report = follower.apply_ship(&frames).unwrap();
            assert_eq!(report.applied, frames.len() as u64);
            assert_eq!(report.resend_from, None);
        }
        assert_eq!(follower.row_count("models").unwrap(), 8);
    }

    #[test]
    fn overlapping_reship_skips_and_gap_reports_resend_point() {
        let leader = leader();
        let follower = MetadataStore::in_memory();
        let (_, frames) = leader.ship_since(0, 1000).unwrap();
        follower.apply_ship(&frames[..4]).unwrap();
        // Overlapping batch: the first frames skip, the rest apply.
        let report = follower.apply_ship(&frames[2..6]).unwrap();
        assert_eq!(report.skipped, 2);
        assert_eq!(report.applied, 2);
        // A batch starting past the log reports where to resend from.
        let report = follower.apply_ship(&frames[8..]).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.resend_from, Some(7));
        assert_eq!(follower.applied_seq(), 6);
    }
}
