//! A single metadata table: striped row arenas + primary key maps +
//! secondary indexes + a constraint-query executor with a tiny planner.
//!
//! ## Lock striping
//!
//! Rows are partitioned into N stripes by the FNV-1a hash of their primary
//! key — the same hash family the cluster layer uses for shard routing —
//! and every stripe sits behind its own `RwLock`. Writers touching
//! different stripes proceed in parallel; a writer holds exactly its
//! stripe's write lock across validate → duplicate-check → WAL commit →
//! in-memory apply, so per-stripe apply order always equals WAL order and
//! duplicate-key races are impossible. Readers take all stripe read locks
//! (in index order, the global lock order) for a consistent snapshot.
//!
//! ## Deferred secondary-index maintenance
//!
//! Inserts append the row and update the primary-key map immediately, but
//! secondary-index entries are *deferred*: each stripe tracks
//! `indexed_upto`, the slot boundary below which indexes are current.
//! Once the unindexed tail reaches `index_batch` rows the whole delta is
//! applied in one column-major pass. Queries stay exact because the
//! candidate set is the index result *plus every unindexed tail slot* —
//! the two ranges are disjoint by construction, and the executor re-checks
//! every constraint against every candidate row anyway.

use crate::error::{Result, StoreError};
use crate::index::{dedup_rows, BTreeIndex, HashIndex, Index, RowId};
use crate::query::{AccessPath, Explain, Op, Query};
use crate::record::Record;
use crate::schema::{IndexKind, TableSchema};
use crate::value::Value;
use gallery_sync::locks::{
    OrderedRwLock, OrderedRwLockReadGuard as RwLockReadGuard,
    OrderedRwLockWriteGuard as RwLockWriteGuard,
};
use gallery_sync::rank;
use gallery_telemetry::{Counter, Histogram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Columns that the store treats as in-place mutable flags. Everything else
/// is immutable after insert (paper §3.1 "Immutable").
pub const MUTABLE_FLAG_COLUMNS: &[&str] = &["deprecated"];

/// Low bits of a [`RowId`] hold the slot within a stripe; the high bits
/// hold the stripe number.
const SLOT_BITS: u32 = 27;
const SLOT_MASK: RowId = (1 << SLOT_BITS) - 1;

/// Upper bound on `lock_stripes` imposed by the [`RowId`] packing.
pub const MAX_LOCK_STRIPES: usize = 1 << (32 - SLOT_BITS);

fn pack(stripe: usize, slot: usize) -> RowId {
    debug_assert!(slot <= SLOT_MASK as usize, "stripe overflow: slot {slot}");
    ((stripe as RowId) << SLOT_BITS) | slot as RowId
}

fn unpack(id: RowId) -> (usize, usize) {
    ((id >> SLOT_BITS) as usize, (id & SLOT_MASK) as usize)
}

/// FNV-1a over the primary key — the same hash family `gallery-core`'s
/// shard router uses, replicated here because `gallery-store` sits below
/// `gallery-core` in the crate graph.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Counters describing how queries were executed; used by benchmarks and
/// the scale experiment to show index-vs-scan behaviour.
#[derive(Debug, Default, Clone, Copy)]
pub struct TableStats {
    pub inserts: u64,
    pub pk_lookups: u64,
    pub index_queries: u64,
    pub full_scans: u64,
    pub rows_examined: u64,
    /// Times a stripe's pending index delta was applied.
    pub index_delta_flushes: u64,
    /// Rows whose deferred index entries have been applied.
    pub index_delta_applied: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    inserts: AtomicU64,
    pk_lookups: AtomicU64,
    index_queries: AtomicU64,
    full_scans: AtomicU64,
    rows_examined: AtomicU64,
    index_delta_flushes: AtomicU64,
    index_delta_applied: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> TableStats {
        TableStats {
            inserts: self.inserts.load(Ordering::Relaxed),
            pk_lookups: self.pk_lookups.load(Ordering::Relaxed),
            index_queries: self.index_queries.load(Ordering::Relaxed),
            full_scans: self.full_scans.load(Ordering::Relaxed),
            rows_examined: self.rows_examined.load(Ordering::Relaxed),
            index_delta_flushes: self.index_delta_flushes.load(Ordering::Relaxed),
            index_delta_applied: self.index_delta_applied.load(Ordering::Relaxed),
        }
    }
}

/// Telemetry handles for deferred-index flushes, shared by every table of
/// a store (`gallery_meta_index_delta_*`).
#[derive(Clone)]
pub struct IndexDeltaCounters {
    pub flushes: Arc<Counter>,
    pub applied: Arc<Counter>,
}

impl std::fmt::Debug for IndexDeltaCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexDeltaCounters").finish()
    }
}

/// Per-stripe write-lock contention handles, one slot per stripe index
/// (`gallery_store_stripe_lock_wait_ms{stripe}` /
/// `gallery_store_stripe_lock_hold_us_total{stripe}`). Label cardinality
/// is bounded by construction: the minting side allocates exactly one
/// series per configured stripe, and [`MAX_LOCK_STRIPES`] caps that at 32.
#[derive(Clone)]
pub struct StripeLockMetrics {
    /// Time writers spent waiting to *acquire* each stripe's write lock.
    pub wait_ms: Vec<Arc<Histogram>>,
    /// Cumulative time each stripe's write lock was *held*, in µs.
    pub hold_us_total: Vec<Arc<Counter>>,
}

impl std::fmt::Debug for StripeLockMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripeLockMetrics")
            .field("stripes", &self.wait_ms.len())
            .finish()
    }
}

/// One row plus its global commit sequence. Sequence order is insertion
/// order across the whole store, so queries merge stripes by `seq`.
///
/// The record is behind an `Arc` shared with the store's oplog entry for
/// the same insert — one allocation serves both. Flag mutations go
/// through `Arc::make_mut`, which copies only if the oplog still holds
/// the other reference, so logged history stays immutable.
#[derive(Debug)]
struct StoredRow {
    seq: u64,
    record: Arc<Record>,
}

/// One lock stripe: a row arena, the primary-key map for rows hashed
/// here, this stripe's shard of every secondary index, and the deferred
/// index watermark.
#[derive(Debug)]
struct Stripe {
    rows: Vec<StoredRow>,
    /// pk -> slot in `rows`. Always current (never deferred): duplicate
    /// detection and point lookups must be exact at all times.
    pk_map: HashMap<String, usize>,
    /// column name -> this stripe's shard of the secondary index. Row ids
    /// are packed `(stripe, slot)`.
    indexes: HashMap<String, Index>,
    /// Slots below this boundary are reflected in `indexes`; slots at or
    /// above it are the pending index delta (scanned by queries).
    indexed_upto: usize,
}

#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    /// Pending-delta threshold that triggers an index flush.
    index_batch: usize,
    stripes: Vec<OrderedRwLock<Stripe>>,
    stats: AtomicStats,
    row_count: AtomicUsize,
    /// Sequence source for standalone (non-store) tables only; tables
    /// mounted in a [`crate::meta::MetadataStore`] get their sequence from
    /// the store's commit log.
    next_seq: AtomicU64,
    delta_counters: OrderedRwLock<Option<IndexDeltaCounters>>,
    lock_metrics: OrderedRwLock<Option<StripeLockMetrics>>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Self::with_config(schema, 16, 1024)
    }

    /// `lock_stripes` is clamped to `1..=MAX_LOCK_STRIPES`; `index_batch`
    /// of 1 means eager (classic) index maintenance.
    pub fn with_config(schema: TableSchema, lock_stripes: usize, index_batch: usize) -> Self {
        let n = lock_stripes.clamp(1, MAX_LOCK_STRIPES);
        let stripes = (0..n)
            .map(|i| {
                let mut indexes = HashMap::new();
                for col in &schema.columns {
                    match col.index {
                        Some(IndexKind::Hash) => {
                            indexes.insert(col.name.clone(), Index::Hash(HashIndex::new()));
                        }
                        Some(IndexKind::BTree) => {
                            indexes.insert(col.name.clone(), Index::BTree(BTreeIndex::new()));
                        }
                        None => {}
                    }
                }
                OrderedRwLock::new(
                    rank::stripe(i),
                    Stripe {
                        rows: Vec::new(),
                        pk_map: HashMap::new(),
                        indexes,
                        indexed_upto: 0,
                    },
                )
            })
            .collect();
        Table {
            schema,
            index_batch: index_batch.max(1),
            stripes,
            stats: AtomicStats::default(),
            row_count: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
            delta_counters: OrderedRwLock::new(rank::INDEX_DELTAS, None),
            lock_metrics: OrderedRwLock::new(rank::STRIPE_METRICS, None),
        }
    }

    /// Attach (or replace) the shared deferred-index telemetry counters.
    pub fn set_delta_counters(&self, counters: IndexDeltaCounters) {
        *self.delta_counters.write() = Some(counters);
    }

    /// Attach (or replace) the per-stripe lock-contention handles. Handle
    /// vectors shorter than the stripe count leave the excess stripes
    /// uninstrumented rather than panicking.
    pub fn set_lock_metrics(&self, metrics: StripeLockMetrics) {
        *self.lock_metrics.write() = Some(metrics);
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn lock_stripes(&self) -> usize {
        self.stripes.len()
    }

    pub fn len(&self) -> usize {
        self.row_count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> TableStats {
        self.stats.snapshot()
    }

    pub(crate) fn pk_of(&self, record: &Record) -> Result<String> {
        match record.get(&self.schema.primary_key) {
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(v) => Err(StoreError::TypeMismatch {
                column: self.schema.primary_key.clone(),
                expected: "str",
                got: v.type_name(),
            }),
            None => Err(StoreError::MissingColumn(self.schema.primary_key.clone())),
        }
    }

    /// Which stripe a primary key hashes to.
    pub fn stripe_of(&self, pk: &str) -> usize {
        (fnv1a64(pk.as_bytes()) % self.stripes.len() as u64) as usize
    }

    /// Observe one stripe write-lock acquisition wait, when handles are
    /// attached.
    fn observe_lock_wait(&self, stripe: usize, waited: Instant) {
        if let Some(m) = &*self.lock_metrics.read() {
            if let Some(h) = m.wait_ms.get(stripe) {
                h.observe(waited.elapsed().as_secs_f64() * 1e3);
            }
        }
    }

    /// Credit one stripe's hold-time counter, when handles are attached.
    fn observe_lock_hold(&self, stripe: usize, held: Instant) {
        if let Some(m) = &*self.lock_metrics.read() {
            if let Some(c) = m.hold_us_total.get(stripe) {
                c.add(held.elapsed().as_micros() as u64);
            }
        }
    }

    /// Take the write lock on the stripe owning `pk`. The token pins the
    /// stripe across duplicate-check → commit → apply, so no competing
    /// writer can interleave on this stripe.
    pub fn lock_stripe(&self, pk: &str) -> StripeToken<'_> {
        let stripe = self.stripe_of(pk);
        let waited = Instant::now();
        let guard = self.stripes[stripe].write();
        self.observe_lock_wait(stripe, waited);
        StripeToken {
            table: self,
            stripe,
            guard,
            acquired: Instant::now(),
        }
    }

    /// Lock every stripe owning any of `pks`, in index order (the global
    /// lock order), for a multi-row insert.
    pub fn lock_stripe_set(&self, pks: &[String]) -> StripeSetToken<'_> {
        let mut idxs: Vec<usize> = pks.iter().map(|pk| self.stripe_of(pk)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        let guards = idxs
            .into_iter()
            .map(|i| {
                let waited = Instant::now();
                let g = self.stripes[i].write();
                self.observe_lock_wait(i, waited);
                (i, g)
            })
            .collect();
        StripeSetToken {
            table: self,
            guards,
            acquired: Instant::now(),
        }
    }

    /// Insert an immutable record (standalone-table path: validates,
    /// checks duplicates, and self-assigns a sequence). Duplicate primary
    /// keys are rejected — updates must create new versions (new keys).
    pub fn insert(&self, record: Record) -> Result<RowId> {
        self.schema.validate_row(record.fields())?;
        let pk = self.pk_of(&record)?;
        let mut token = self.lock_stripe(&pk);
        if token.contains(&pk) {
            return Err(StoreError::DuplicateKey(pk));
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(token.apply_insert(Arc::new(record), seq))
    }

    /// Point lookup by primary key.
    pub fn get(&self, pk: &str) -> Option<Record> {
        self.stats.pk_lookups.fetch_add(1, Ordering::Relaxed);
        self.peek(pk)
    }

    /// Non-stat-mutating lookup (for internal use and read-only callers).
    pub fn peek(&self, pk: &str) -> Option<Record> {
        let stripe = self.stripes[self.stripe_of(pk)].read();
        stripe
            .pk_map
            .get(pk)
            .map(|&slot| stripe.rows[slot].record.as_ref().clone())
    }

    pub fn contains(&self, pk: &str) -> bool {
        let stripe = self.stripes[self.stripe_of(pk)].read();
        stripe.pk_map.contains_key(pk)
    }

    /// Set one of the explicitly mutable flag columns (e.g. `deprecated`).
    /// All other columns are immutable; attempting to touch them is an error.
    pub fn set_flag(&self, pk: &str, column: &str, value: bool) -> Result<()> {
        self.check_flag_column(column)?;
        let mut token = self.lock_stripe(pk);
        if !token.contains(pk) {
            return Err(StoreError::NoSuchKey(pk.to_owned()));
        }
        token.apply_set_flag(pk, column, value);
        Ok(())
    }

    /// Validate that `column` may be mutated in place (exists and is a
    /// flag column) *before* anything is committed.
    pub(crate) fn check_flag_column(&self, column: &str) -> Result<()> {
        if !MUTABLE_FLAG_COLUMNS.contains(&column) {
            return Err(StoreError::BadQuery(format!(
                "column {column} is immutable; only flag columns {MUTABLE_FLAG_COLUMNS:?} may be set in place"
            )));
        }
        if self.schema.column(column).is_none() {
            return Err(StoreError::NoSuchColumn {
                table: self.schema.name.clone(),
                column: column.to_owned(),
            });
        }
        Ok(())
    }

    /// Force-apply every stripe's pending index delta; returns the number
    /// of rows whose deltas were applied. Queries never need this (they
    /// merge the pending tail), but tests and benchmarks use it to compare
    /// deferred vs flushed states.
    pub fn flush_index_deltas(&self) -> usize {
        let mut applied = 0;
        for (i, stripe) in self.stripes.iter().enumerate() {
            let mut s = stripe.write();
            applied += self.flush_stripe(i, &mut s);
        }
        applied
    }

    /// Rows currently sitting in pending index deltas across all stripes.
    pub fn pending_index_delta(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                let s = s.read();
                s.rows.len() - s.indexed_upto
            })
            .sum()
    }

    /// Apply `stripe`'s pending delta in one column-major pass. Caller
    /// holds the stripe write lock.
    fn flush_stripe(&self, stripe_idx: usize, s: &mut Stripe) -> usize {
        let from = s.indexed_upto;
        let to = s.rows.len();
        if from == to {
            return 0;
        }
        let Stripe {
            rows,
            indexes,
            indexed_upto,
            ..
        } = s;
        for (col, index) in indexes.iter_mut() {
            index.insert_many(rows[from..to].iter().enumerate().filter_map(|(i, row)| {
                match row.record.get_or_null(col) {
                    v if v.is_null() => None,
                    v => Some((v, pack(stripe_idx, from + i))),
                }
            }));
        }
        *indexed_upto = to;
        let applied = to - from;
        self.stats
            .index_delta_flushes
            .fetch_add(1, Ordering::Relaxed);
        self.stats
            .index_delta_applied
            .fetch_add(applied as u64, Ordering::Relaxed);
        if let Some(c) = &*self.delta_counters.read() {
            c.flushes.inc();
            c.applied.add(applied as u64);
        }
        applied
    }

    /// Plan a query: prefer primary-key equality, then an indexed equality
    /// constraint, then an indexed range constraint, else a full scan.
    pub fn plan(&self, query: &Query) -> AccessPath {
        let guards: Vec<RwLockReadGuard<'_, Stripe>> =
            self.stripes.iter().map(|s| s.read()).collect();
        self.plan_with(&guards, query)
    }

    fn indexed(&self, column: &str) -> bool {
        self.schema
            .column(column)
            .map(|c| c.index.is_some())
            .unwrap_or(false)
    }

    fn plan_with(&self, guards: &[RwLockReadGuard<'_, Stripe>], query: &Query) -> AccessPath {
        for c in &query.constraints {
            if c.field == self.schema.primary_key && c.op == Op::Eq {
                return AccessPath::PrimaryKey;
            }
        }
        // Indexed equality first; among several indexed eq constraints pick
        // the smallest candidate set (bucket plus the unindexed tails).
        let mut best_eq: Option<(&str, usize)> = None;
        for c in &query.constraints {
            if c.op.index_eq_usable() && self.indexed(&c.field) {
                let len: usize = guards
                    .iter()
                    .map(|g| {
                        g.indexes[&c.field].eq_bucket_len(&c.value)
                            + (g.rows.len() - g.indexed_upto)
                    })
                    .sum();
                if best_eq.map(|(_, b)| len < b).unwrap_or(true) {
                    best_eq = Some((&c.field, len));
                }
            }
        }
        if let Some((column, _)) = best_eq {
            return AccessPath::IndexEq {
                column: column.to_owned(),
            };
        }
        for c in &query.constraints {
            if c.op.index_range_usable()
                && self.indexed(&c.field)
                && guards[0].indexes[&c.field].supports_range()
            {
                return AccessPath::IndexRange {
                    column: c.field.clone(),
                };
            }
        }
        AccessPath::FullScan
    }

    fn row_matches(&self, record: &Record, query: &Query) -> bool {
        if !query.include_deprecated {
            if let Some(Value::Bool(true)) = record.get("deprecated") {
                return false;
            }
        }
        query
            .constraints
            .iter()
            .all(|c| c.op.eval(&record.get_or_null(&c.field), &c.value))
    }

    /// Execute a query, returning matching records (cloned) and the access
    /// path the planner chose. Thin wrapper over
    /// [`Table::execute_explain`] for callers that only care about rows
    /// and plan shape.
    pub fn execute(&self, query: &Query) -> Result<(Vec<Record>, AccessPath)> {
        let (rows, explain) = self.execute_explain(query)?;
        Ok((rows, explain.path))
    }

    /// Execute a query, returning matching records (cloned) and the full
    /// [`Explain`] artifact (plan, estimated vs. actual rows, tail-merge
    /// size, per-stage timings). Takes every stripe read lock (in index
    /// order) for a consistent snapshot; results are merged in sequence
    /// (= insertion) order.
    pub fn execute_explain(&self, query: &Query) -> Result<(Vec<Record>, Explain)> {
        for c in &query.constraints {
            if self.schema.column(&c.field).is_none() {
                return Err(StoreError::NoSuchColumn {
                    table: self.schema.name.clone(),
                    column: c.field.clone(),
                });
            }
        }
        if let Some(ob) = &query.order_by {
            if self.schema.column(&ob.field).is_none() {
                return Err(StoreError::NoSuchColumn {
                    table: self.schema.name.clone(),
                    column: ob.field.clone(),
                });
            }
        }
        let plan_started = Instant::now();
        let guards: Vec<RwLockReadGuard<'_, Stripe>> =
            self.stripes.iter().map(|s| s.read()).collect();
        let path = self.plan_with(&guards, query);
        let total_rows: usize = guards.iter().map(|g| g.rows.len()).sum();
        let tail_rows: usize = guards.iter().map(|g| g.rows.len() - g.indexed_upto).sum();
        // The planner's candidate estimate. PrimaryKey resolves at most
        // one row; IndexEq reuses the planner's bucket-plus-tail count; a
        // range scan has no value-distribution statistics, so it is
        // bounded by the full row count, as is a full scan.
        let estimated_rows = match &path {
            AccessPath::PrimaryKey => 1,
            AccessPath::IndexEq { column } => guards
                .iter()
                .map(|g| {
                    g.indexes[column].eq_bucket_len(
                        &query
                            .constraints
                            .iter()
                            .find(|c| &c.field == column && c.op == Op::Eq)
                            .expect("planner chose IndexEq without eq constraint")
                            .value,
                    ) + (g.rows.len() - g.indexed_upto)
                })
                .sum(),
            AccessPath::IndexRange { .. } | AccessPath::FullScan => total_rows,
        };
        // Of the scanned candidates, how many were merged from unindexed
        // deferred-index tails (index-served paths only).
        let tail_merge_rows = match &path {
            AccessPath::IndexEq { .. } | AccessPath::IndexRange { .. } => tail_rows,
            AccessPath::PrimaryKey | AccessPath::FullScan => 0,
        };
        let plan_ms = plan_started.elapsed().as_secs_f64() * 1e3;
        let scan_started = Instant::now();
        // Candidates as (stripe, slot). Index-served paths add every
        // stripe's unindexed tail so pending deltas never hide rows.
        let mut cands: Vec<(usize, usize)> = Vec::new();
        match &path {
            AccessPath::PrimaryKey => {
                self.stats.pk_lookups.fetch_add(1, Ordering::Relaxed);
                let pk_constraint = query
                    .constraints
                    .iter()
                    .find(|c| c.field == self.schema.primary_key && c.op == Op::Eq)
                    .expect("planner chose PrimaryKey without pk constraint");
                if let Some(pk) = pk_constraint.value.as_str() {
                    let si = self.stripe_of(pk);
                    if let Some(&slot) = guards[si].pk_map.get(pk) {
                        cands.push((si, slot));
                    }
                }
            }
            AccessPath::IndexEq { column } => {
                self.stats.index_queries.fetch_add(1, Ordering::Relaxed);
                let c = query
                    .constraints
                    .iter()
                    .find(|c| &c.field == column && c.op == Op::Eq)
                    .expect("planner chose IndexEq without eq constraint");
                for (si, g) in guards.iter().enumerate() {
                    for id in dedup_rows(g.indexes[column].lookup_eq(&c.value)) {
                        cands.push(unpack(id));
                    }
                    for slot in g.indexed_upto..g.rows.len() {
                        cands.push((si, slot));
                    }
                }
            }
            AccessPath::IndexRange { column } => {
                self.stats.index_queries.fetch_add(1, Ordering::Relaxed);
                let c = query
                    .constraints
                    .iter()
                    .find(|c| &c.field == column && c.op.index_range_usable())
                    .expect("planner chose IndexRange without range constraint");
                let (lo, hi) = c.op.bounds(&c.value).expect("range op has bounds");
                for (si, g) in guards.iter().enumerate() {
                    let ids = g.indexes[column]
                        .lookup_range(lo, hi)
                        .expect("planner chose IndexRange on non-range index");
                    for id in dedup_rows(ids) {
                        cands.push(unpack(id));
                    }
                    for slot in g.indexed_upto..g.rows.len() {
                        cands.push((si, slot));
                    }
                }
            }
            AccessPath::FullScan => {
                self.stats.full_scans.fetch_add(1, Ordering::Relaxed);
                for (si, g) in guards.iter().enumerate() {
                    for slot in 0..g.rows.len() {
                        cands.push((si, slot));
                    }
                }
            }
        }
        self.stats
            .rows_examined
            .fetch_add(cands.len() as u64, Ordering::Relaxed);
        let rows_scanned = cands.len();

        let mut matches: Vec<(u64, &Record)> = cands
            .into_iter()
            .map(|(si, slot)| {
                let row = &guards[si].rows[slot];
                (row.seq, row.record.as_ref())
            })
            .filter(|(_, r)| self.row_matches(r, query))
            .collect();
        // Sequence order = insertion order, across stripes.
        matches.sort_unstable_by_key(|(seq, _)| *seq);
        let matched_rows = matches.len();
        let scan_ms = scan_started.elapsed().as_secs_f64() * 1e3;
        let sort_started = Instant::now();

        if let Some(ob) = &query.order_by {
            let cmp = |a: &(u64, &Record), b: &(u64, &Record)| {
                let ord =
                    a.1.get_or_null(&ob.field)
                        .total_cmp(&b.1.get_or_null(&ob.field));
                if ob.descending {
                    ord.reverse()
                } else {
                    ord
                }
            };
            // Partial selection: a LIMIT far below the match count (the
            // common "latest metric" shape) avoids a full sort.
            if let Some(limit) = query.limit {
                if limit > 0 && limit < matches.len() {
                    matches.select_nth_unstable_by(limit - 1, cmp);
                    matches.truncate(limit);
                }
            }
            matches.sort_by(cmp);
        }
        if let Some(limit) = query.limit {
            matches.truncate(limit);
        }
        let sort_ms = sort_started.elapsed().as_secs_f64() * 1e3;
        let explain = Explain {
            path,
            estimated_rows,
            rows_scanned,
            matched_rows,
            tail_merge_rows,
            plan_ms,
            scan_ms,
            sort_ms,
        };
        Ok((
            matches.into_iter().map(|(_, r)| r.clone()).collect(),
            explain,
        ))
    }

    /// All rows (shared handles, not deep copies) in sequence
    /// (= insertion) order. Compaction uses this to rewrite the WAL as a
    /// replayable op sequence.
    pub fn snapshot_seq_order(&self) -> Vec<Arc<Record>> {
        let mut rows: Vec<(u64, Arc<Record>)> = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            let s = stripe.read();
            rows.extend(s.rows.iter().map(|r| (r.seq, Arc::clone(&r.record))));
        }
        rows.sort_unstable_by_key(|(seq, _)| *seq);
        rows.into_iter().map(|(_, r)| r).collect()
    }

    /// Approximate memory footprint of all rows.
    pub fn approx_size(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.read()
                    .rows
                    .iter()
                    .map(|r| r.record.approx_size())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Write lock on one stripe, pinning it across duplicate-check → commit →
/// apply. Obtained from [`Table::lock_stripe`].
pub struct StripeToken<'a> {
    table: &'a Table,
    stripe: usize,
    guard: RwLockWriteGuard<'a, Stripe>,
    /// When the write lock was acquired; credited to the stripe's
    /// hold-time counter on release.
    acquired: Instant,
}

impl Drop for StripeToken<'_> {
    fn drop(&mut self) {
        self.table.observe_lock_hold(self.stripe, self.acquired);
    }
}

impl StripeToken<'_> {
    pub fn contains(&self, pk: &str) -> bool {
        self.guard.pk_map.contains_key(pk)
    }

    /// Apply a validated, committed insert at sequence `seq`. The caller
    /// has already checked schema validity and key uniqueness under this
    /// token.
    pub fn apply_insert(&mut self, record: Arc<Record>, seq: u64) -> RowId {
        apply_insert_inner(self.table, self.stripe, &mut self.guard, record, seq)
    }

    /// Apply a validated, committed flag mutation. The caller has already
    /// checked (under this token) that `pk` exists and `column` is a
    /// mutable flag column, so this cannot fail.
    pub fn apply_set_flag(&mut self, pk: &str, column: &str, value: bool) {
        apply_set_flag_inner(self.stripe, &mut self.guard, pk, column, value);
    }
}

/// Write locks on the set of stripes owning a batch of primary keys, in
/// stripe-index order. Obtained from [`Table::lock_stripe_set`].
pub struct StripeSetToken<'a> {
    table: &'a Table,
    guards: Vec<(usize, RwLockWriteGuard<'a, Stripe>)>,
    /// When the last write lock of the set was acquired; credited to every
    /// locked stripe's hold-time counter on release.
    acquired: Instant,
}

impl Drop for StripeSetToken<'_> {
    fn drop(&mut self) {
        for (i, _) in &self.guards {
            self.table.observe_lock_hold(*i, self.acquired);
        }
    }
}

impl StripeSetToken<'_> {
    pub fn contains(&self, pk: &str) -> bool {
        let si = self.table.stripe_of(pk);
        self.guard_of(si).pk_map.contains_key(pk)
    }

    /// Apply one validated, committed insert from the batch.
    pub fn apply_insert(&mut self, record: Arc<Record>, seq: u64) -> RowId {
        let pk = record
            .get(&self.table.schema.primary_key)
            .and_then(Value::as_str)
            .expect("validated pk")
            .to_owned();
        let si = self.table.stripe_of(&pk);
        let table = self.table;
        let stripe = self.stripe_mut(si);
        apply_insert_inner(table, si, stripe, record, seq)
    }

    fn guard_of(&self, stripe: usize) -> &Stripe {
        let i = self
            .guards
            .binary_search_by_key(&stripe, |(s, _)| *s)
            .expect("stripe not locked by this token");
        &self.guards[i].1
    }

    fn stripe_mut(&mut self, stripe: usize) -> &mut Stripe {
        let i = self
            .guards
            .binary_search_by_key(&stripe, |(s, _)| *s)
            .expect("stripe not locked by this token");
        &mut self.guards[i].1
    }
}

fn apply_insert_inner(
    table: &Table,
    stripe_idx: usize,
    s: &mut Stripe,
    record: Arc<Record>,
    seq: u64,
) -> RowId {
    let pk = record
        .get(&table.schema.primary_key)
        .and_then(Value::as_str)
        .expect("validated pk")
        .to_owned();
    let slot = s.rows.len();
    s.pk_map.insert(pk, slot);
    s.rows.push(StoredRow { seq, record });
    table.row_count.fetch_add(1, Ordering::Relaxed);
    table.stats.inserts.fetch_add(1, Ordering::Relaxed);
    if !s.indexes.is_empty() && s.rows.len() - s.indexed_upto >= table.index_batch {
        table.flush_stripe(stripe_idx, s);
    }
    pack(stripe_idx, slot)
}

fn apply_set_flag_inner(stripe_idx: usize, s: &mut Stripe, pk: &str, column: &str, value: bool) {
    let slot = s.pk_map[pk];
    let old = s.rows[slot].record.get_or_null(column);
    // Rows above the watermark are not in the index yet; their (new)
    // value is picked up when the pending delta flushes.
    if slot < s.indexed_upto {
        if let Some(index) = s.indexes.get_mut(column) {
            if !old.is_null() {
                index.remove(&old, pack(stripe_idx, slot));
            }
            index.insert(Value::Bool(value), pack(stripe_idx, slot));
        }
    }
    // Copy-on-write: clones the record only if the oplog still shares the
    // allocation, so the logged insert op never sees the mutation.
    let rec = Arc::make_mut(&mut s.rows[slot].record);
    *rec = std::mem::take(rec).set(column, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Constraint;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "instances",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("model", ValueType::Str).hash_indexed(),
                ColumnDef::new("city", ValueType::Str).hash_indexed(),
                ColumnDef::new("created", ValueType::Timestamp).btree_indexed(),
                ColumnDef::new("mape", ValueType::Float)
                    .nullable()
                    .btree_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap();
        Table::new(schema)
    }

    fn row(id: &str, model: &str, city: &str, created: i64, mape: f64) -> Record {
        Record::new()
            .set("id", id)
            .set("model", model)
            .set("city", city)
            .set("created", Value::Timestamp(created))
            .set("mape", mape)
    }

    #[test]
    fn insert_and_get() {
        let t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        assert_eq!(t.get("i1").unwrap().get("model"), Some(&Value::from("rf")));
        assert!(t.get("nope").is_none());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        let err = t.insert(row("i1", "rf", "sf", 2, 0.2));
        assert!(matches!(err, Err(StoreError::DuplicateKey(_))));
    }

    #[test]
    fn planner_prefers_pk() {
        let t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        let q = Query::all().and(Constraint::eq("id", "i1"));
        let (rows, path) = t.execute(&q).unwrap();
        assert_eq!(path, AccessPath::PrimaryKey);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn planner_uses_hash_index_for_eq() {
        let t = table();
        for i in 0..100 {
            t.insert(row(
                &format!("i{i}"),
                if i % 2 == 0 { "rf" } else { "lr" },
                "sf",
                i,
                0.1,
            ))
            .unwrap();
        }
        let q = Query::all().and(Constraint::eq("model", "rf"));
        let (rows, path) = t.execute(&q).unwrap();
        assert_eq!(
            path,
            AccessPath::IndexEq {
                column: "model".into()
            }
        );
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn planner_uses_btree_for_range() {
        let t = table();
        for i in 0..10 {
            t.insert(row(&format!("i{i}"), "rf", "sf", i, 0.01 * i as f64))
                .unwrap();
        }
        let q = Query::all().and(Constraint::lt("mape", 0.05));
        let (rows, path) = t.execute(&q).unwrap();
        assert_eq!(
            path,
            AccessPath::IndexRange {
                column: "mape".into()
            }
        );
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn full_scan_for_unindexed() {
        let t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        // contains is not index-servable
        let q = Query::all().and(Constraint::new("model", Op::Contains, "r"));
        let (rows, path) = t.execute(&q).unwrap();
        assert_eq!(path, AccessPath::FullScan);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn residual_constraints_filtered() {
        let t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        t.insert(row("i2", "rf", "nyc", 2, 0.2)).unwrap();
        let q = Query::all()
            .and(Constraint::eq("model", "rf"))
            .and(Constraint::eq("city", "nyc"));
        let (rows, _) = t.execute(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("id"), Some(&Value::from("i2")));
    }

    #[test]
    fn order_by_and_limit() {
        let t = table();
        for i in 0..5 {
            t.insert(row(&format!("i{i}"), "rf", "sf", 10 - i, 0.1))
                .unwrap();
        }
        let q = Query::all().order_by("created", false).limit(2);
        let (rows, _) = t.execute(&q).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("created"), Some(&Value::Timestamp(6)));
    }

    #[test]
    fn deprecated_rows_skipped_by_default() {
        let t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        t.insert(row("i2", "rf", "sf", 2, 0.2)).unwrap();
        t.set_flag("i2", "deprecated", true).unwrap();
        let q = Query::all().and(Constraint::eq("model", "rf"));
        let (rows, _) = t.execute(&q).unwrap();
        assert_eq!(rows.len(), 1);
        let q = q.with_deprecated();
        let (rows, _) = t.execute(&q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn set_flag_rejects_non_flag_columns() {
        let t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        assert!(t.set_flag("i1", "model", true).is_err());
        assert!(t.set_flag("missing", "deprecated", true).is_err());
    }

    #[test]
    fn unknown_query_column_is_error() {
        let t = table();
        let q = Query::all().and(Constraint::eq("bogus", "x"));
        assert!(matches!(
            t.execute(&q),
            Err(StoreError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn stats_track_access_paths() {
        let t = table();
        for i in 0..10 {
            t.insert(row(&format!("i{i}"), "rf", "sf", i, 0.1)).unwrap();
        }
        let _ = t.execute(&Query::all().and(Constraint::eq("model", "rf")));
        let _ = t.execute(&Query::all().and(Constraint::new("model", Op::Contains, "r")));
        let s = t.stats();
        assert_eq!(s.inserts, 10);
        assert_eq!(s.index_queries, 1);
        assert_eq!(s.full_scans, 1);
    }

    #[test]
    fn rows_spread_across_stripes() {
        let t = table();
        for i in 0..200 {
            t.insert(row(&format!("i{i}"), "rf", "sf", i, 0.1)).unwrap();
        }
        assert_eq!(t.len(), 200);
        let touched = (0..200)
            .map(|i| t.stripe_of(&format!("i{i}")))
            .collect::<std::collections::HashSet<_>>();
        assert!(
            touched.len() > 1,
            "FNV-1a striping must spread keys over stripes"
        );
        // Every row still reachable by pk and by full query.
        for i in 0..200 {
            assert!(t.contains(&format!("i{i}")));
        }
        let (rows, _) = t
            .execute(&Query::all().and(Constraint::eq("model", "rf")))
            .unwrap();
        assert_eq!(rows.len(), 200);
    }

    #[test]
    fn query_results_in_insertion_order_across_stripes() {
        let t = table();
        for i in 0..50 {
            t.insert(row(&format!("i{i}"), "rf", "sf", i, 0.1)).unwrap();
        }
        let (rows, _) = t.execute(&Query::all()).unwrap();
        let ids: Vec<String> = rows
            .iter()
            .map(|r| r.get("id").unwrap().as_str().unwrap().to_owned())
            .collect();
        let expected: Vec<String> = (0..50).map(|i| format!("i{i}")).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn deferred_index_delta_is_query_transparent() {
        let schema = table().schema.clone();
        // Huge batch threshold: nothing flushes on its own.
        let t = Table::with_config(schema, 4, 1_000_000);
        for i in 0..100 {
            t.insert(row(
                &format!("i{i}"),
                if i % 2 == 0 { "rf" } else { "lr" },
                "sf",
                i,
                0.01 * i as f64,
            ))
            .unwrap();
        }
        assert_eq!(t.pending_index_delta(), 100);
        let q_eq = Query::all().and(Constraint::eq("model", "rf"));
        let q_range = Query::all().and(Constraint::lt("mape", 0.25));
        let (eq_before, path) = t.execute(&q_eq).unwrap();
        assert!(matches!(path, AccessPath::IndexEq { .. }));
        let (range_before, _) = t.execute(&q_range).unwrap();
        // Force the flush: results must be identical.
        assert_eq!(t.flush_index_deltas(), 100);
        assert_eq!(t.pending_index_delta(), 0);
        let (eq_after, _) = t.execute(&q_eq).unwrap();
        let (range_after, _) = t.execute(&q_range).unwrap();
        assert_eq!(eq_before, eq_after);
        assert_eq!(range_before, range_after);
        assert_eq!(eq_after.len(), 50);
        assert_eq!(range_after.len(), 25);
        let s = t.stats();
        assert!(s.index_delta_flushes >= 1);
        assert_eq!(s.index_delta_applied, 100);
    }

    #[test]
    fn set_flag_on_unindexed_tail_row_stays_exact() {
        let schema = TableSchema::new(
            "m",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("deprecated", ValueType::Bool)
                    .nullable()
                    .hash_indexed(),
            ],
        )
        .unwrap();
        let t = Table::with_config(schema, 2, 1_000_000);
        t.insert(Record::new().set("id", "a")).unwrap();
        t.insert(Record::new().set("id", "b")).unwrap();
        // Flag flips before the delta ever flushed.
        t.set_flag("a", "deprecated", true).unwrap();
        let q = Query::all()
            .and(Constraint::eq("deprecated", true))
            .with_deprecated();
        let (before, _) = t.execute(&q).unwrap();
        t.flush_index_deltas();
        let (after, _) = t.execute(&q).unwrap();
        assert_eq!(before, after);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].get("id"), Some(&Value::from("a")));
        // And a flip *after* the flush updates the index in place.
        t.set_flag("b", "deprecated", true).unwrap();
        let (both, _) = t.execute(&q).unwrap();
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn row_id_packing_roundtrip() {
        for (stripe, slot) in [(0, 0), (3, 17), (31, (1 << 27) - 1)] {
            assert_eq!(unpack(pack(stripe, slot)), (stripe, slot));
        }
    }

    #[test]
    fn fnv1a64_matches_reference_vector() {
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn execute_explain_reports_estimates_and_tails() {
        let schema = table().schema.clone();
        // Huge batch threshold: every row sits in an unindexed tail.
        let t = Table::with_config(schema, 4, 1_000_000);
        for i in 0..100 {
            t.insert(row(
                &format!("i{i}"),
                if i % 2 == 0 { "rf" } else { "lr" },
                "sf",
                i,
                0.01 * i as f64,
            ))
            .unwrap();
        }
        let q_eq = Query::all().and(Constraint::eq("model", "rf"));
        let (rows, ex) = t.execute_explain(&q_eq).unwrap();
        assert_eq!(
            ex.path,
            AccessPath::IndexEq {
                column: "model".into()
            }
        );
        assert_eq!(ex.tail_merge_rows, 100, "all rows pending -> all merged");
        assert_eq!(ex.rows_scanned, 100);
        assert_eq!(ex.estimated_rows, 100, "bucket 0 + tails 100");
        assert_eq!(ex.matched_rows, 50);
        assert_eq!(rows.len(), 50);
        assert!(ex.plan_ms >= 0.0 && ex.scan_ms >= 0.0 && ex.sort_ms >= 0.0);

        // After the flush the index serves exactly the bucket.
        t.flush_index_deltas();
        let (_, ex) = t.execute_explain(&q_eq).unwrap();
        assert_eq!(ex.tail_merge_rows, 0);
        assert_eq!(ex.rows_scanned, 50);
        assert_eq!(ex.estimated_rows, 50);
        assert_eq!(ex.matched_rows, 50);

        let (_, ex) = t
            .execute_explain(&Query::all().and(Constraint::eq("id", "i7")))
            .unwrap();
        assert_eq!(ex.path, AccessPath::PrimaryKey);
        assert_eq!(
            (ex.estimated_rows, ex.rows_scanned, ex.matched_rows),
            (1, 1, 1)
        );
        assert_eq!(ex.tail_merge_rows, 0);

        let (_, ex) = t
            .execute_explain(&Query::all().and(Constraint::new("model", Op::Contains, "r")))
            .unwrap();
        assert_eq!(ex.path, AccessPath::FullScan);
        assert_eq!(ex.estimated_rows, 100);
        assert_eq!(ex.rows_scanned, 100);
        assert_eq!(ex.tail_merge_rows, 0);

        let (_, ex) = t
            .execute_explain(&Query::all().and(Constraint::lt("mape", 0.25)))
            .unwrap();
        assert_eq!(
            ex.path,
            AccessPath::IndexRange {
                column: "mape".into()
            }
        );
        assert_eq!(
            ex.estimated_rows, 100,
            "range estimate is the row-count bound"
        );
        assert_eq!(ex.rows_scanned, 25);
        assert_eq!(ex.matched_rows, 25);
    }

    #[test]
    fn stripe_lock_metrics_record_waits_and_holds() {
        let t = Table::with_config(table().schema.clone(), 4, 1024);
        let metrics = StripeLockMetrics {
            wait_ms: (0..4)
                .map(|_| Histogram::standalone(vec![1.0, 10.0]))
                .collect(),
            hold_us_total: (0..4).map(|_| Counter::standalone()).collect(),
        };
        t.set_lock_metrics(metrics.clone());
        for i in 0..20 {
            t.insert(row(&format!("i{i}"), "rf", "sf", i, 0.1)).unwrap();
        }
        let single_waits: u64 = metrics.wait_ms.iter().map(|h| h.count()).sum();
        assert_eq!(single_waits, 20, "one wait observation per insert");

        let pks: Vec<String> = (0..10).map(|i| format!("b{i}")).collect();
        let stripes_locked = {
            let mut token = t.lock_stripe_set(&pks);
            for (i, pk) in pks.iter().enumerate() {
                token.apply_insert(Arc::new(row(pk, "rf", "sf", i as i64, 0.1)), 100 + i as u64);
            }
            token.guards.len() as u64
        };
        let total_waits: u64 = metrics.wait_ms.iter().map(|h| h.count()).sum();
        assert_eq!(
            total_waits,
            20 + stripes_locked,
            "one wait per locked stripe"
        );
    }

    #[test]
    fn stripe_set_token_batch_insert() {
        let t = table();
        let pks: Vec<String> = (0..10).map(|i| format!("b{i}")).collect();
        {
            let mut token = t.lock_stripe_set(&pks);
            for (i, pk) in pks.iter().enumerate() {
                assert!(!token.contains(pk));
                token.apply_insert(Arc::new(row(pk, "rf", "sf", i as i64, 0.1)), i as u64 + 1);
            }
        }
        assert_eq!(t.len(), 10);
        for pk in &pks {
            assert!(t.contains(pk));
        }
    }
}
