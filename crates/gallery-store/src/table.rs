//! A single metadata table: immutable row arena + primary key map +
//! secondary indexes + a constraint-query executor with a tiny planner.

use crate::error::{Result, StoreError};
use crate::index::{dedup_rows, BTreeIndex, HashIndex, Index, RowId};
#[cfg(test)]
use crate::query::Constraint;
use crate::query::{AccessPath, Op, Query};
use crate::record::Record;
use crate::schema::{IndexKind, TableSchema};
use crate::value::Value;
use std::collections::HashMap;

/// Columns that the store treats as in-place mutable flags. Everything else
/// is immutable after insert (paper §3.1 "Immutable").
pub const MUTABLE_FLAG_COLUMNS: &[&str] = &["deprecated"];

/// Counters describing how queries were executed; used by benchmarks and
/// the scale experiment to show index-vs-scan behaviour.
#[derive(Debug, Default, Clone, Copy)]
pub struct TableStats {
    pub inserts: u64,
    pub pk_lookups: u64,
    pub index_queries: u64,
    pub full_scans: u64,
    pub rows_examined: u64,
}

#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Record>,
    pk_map: HashMap<String, RowId>,
    /// column name -> secondary index
    indexes: HashMap<String, Index>,
    stats: TableStats,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        let mut indexes = HashMap::new();
        for col in &schema.columns {
            match col.index {
                Some(IndexKind::Hash) => {
                    indexes.insert(col.name.clone(), Index::Hash(HashIndex::new()));
                }
                Some(IndexKind::BTree) => {
                    indexes.insert(col.name.clone(), Index::BTree(BTreeIndex::new()));
                }
                None => {}
            }
        }
        Table {
            schema,
            rows: Vec::new(),
            pk_map: HashMap::new(),
            indexes,
            stats: TableStats::default(),
        }
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn stats(&self) -> TableStats {
        self.stats
    }

    fn pk_of(&self, record: &Record) -> Result<String> {
        match record.get(&self.schema.primary_key) {
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(v) => Err(StoreError::TypeMismatch {
                column: self.schema.primary_key.clone(),
                expected: "str",
                got: v.type_name(),
            }),
            None => Err(StoreError::MissingColumn(self.schema.primary_key.clone())),
        }
    }

    /// Insert an immutable record. Duplicate primary keys are rejected —
    /// updates must create new versions (new keys) instead.
    pub fn insert(&mut self, record: Record) -> Result<RowId> {
        self.schema.validate_row(record.fields())?;
        let pk = self.pk_of(&record)?;
        if self.pk_map.contains_key(&pk) {
            return Err(StoreError::DuplicateKey(pk));
        }
        let row_id = self.rows.len() as RowId;
        for (col, index) in self.indexes.iter_mut() {
            let v = record.get_or_null(col);
            if !v.is_null() {
                index.insert(v, row_id);
            }
        }
        self.pk_map.insert(pk, row_id);
        self.rows.push(record);
        self.stats.inserts += 1;
        Ok(row_id)
    }

    /// Point lookup by primary key.
    pub fn get(&mut self, pk: &str) -> Option<&Record> {
        self.stats.pk_lookups += 1;
        self.pk_map.get(pk).map(|&id| &self.rows[id as usize])
    }

    /// Non-stat-mutating lookup (for internal use and read-only callers).
    pub fn peek(&self, pk: &str) -> Option<&Record> {
        self.pk_map.get(pk).map(|&id| &self.rows[id as usize])
    }

    pub fn contains(&self, pk: &str) -> bool {
        self.pk_map.contains_key(pk)
    }

    /// Set one of the explicitly mutable flag columns (e.g. `deprecated`).
    /// All other columns are immutable; attempting to touch them is an error.
    pub fn set_flag(&mut self, pk: &str, column: &str, value: bool) -> Result<()> {
        if !MUTABLE_FLAG_COLUMNS.contains(&column) {
            return Err(StoreError::BadQuery(format!(
                "column {column} is immutable; only flag columns {MUTABLE_FLAG_COLUMNS:?} may be set in place"
            )));
        }
        if self.schema.column(column).is_none() {
            return Err(StoreError::NoSuchColumn {
                table: self.schema.name.clone(),
                column: column.to_owned(),
            });
        }
        let row_id = *self
            .pk_map
            .get(pk)
            .ok_or_else(|| StoreError::NoSuchKey(pk.to_owned()))?;
        let old = self.rows[row_id as usize].get_or_null(column);
        if let Some(index) = self.indexes.get_mut(column) {
            if !old.is_null() {
                index.remove(&old, row_id);
            }
            index.insert(Value::Bool(value), row_id);
        }
        let rec = std::mem::take(&mut self.rows[row_id as usize]);
        self.rows[row_id as usize] = rec.set(column, value);
        Ok(())
    }

    /// Iterate all rows (snapshot order = insertion order).
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.rows.iter()
    }

    /// Plan a query: prefer primary-key equality, then an indexed equality
    /// constraint, then an indexed range constraint, else a full scan.
    pub fn plan(&self, query: &Query) -> AccessPath {
        for c in &query.constraints {
            if c.field == self.schema.primary_key && c.op == Op::Eq {
                return AccessPath::PrimaryKey;
            }
        }
        // Indexed equality first; among several indexed eq constraints pick
        // the smallest bucket (cheapest candidate set).
        let mut best_eq: Option<(&str, usize)> = None;
        for c in &query.constraints {
            if c.op.index_eq_usable() {
                if let Some(index) = self.indexes.get(&c.field) {
                    let len = index.eq_bucket_len(&c.value);
                    if best_eq.map(|(_, b)| len < b).unwrap_or(true) {
                        best_eq = Some((&c.field, len));
                    }
                }
            }
        }
        if let Some((column, _)) = best_eq {
            return AccessPath::IndexEq {
                column: column.to_owned(),
            };
        }
        for c in &query.constraints {
            if c.op.index_range_usable() {
                if let Some(ix) = self.indexes.get(&c.field) {
                    if ix.supports_range() {
                        return AccessPath::IndexRange {
                            column: c.field.clone(),
                        };
                    }
                }
            }
        }
        AccessPath::FullScan
    }

    fn row_matches(&self, record: &Record, query: &Query) -> bool {
        if !query.include_deprecated {
            if let Some(Value::Bool(true)) = record.get("deprecated") {
                return false;
            }
        }
        query
            .constraints
            .iter()
            .all(|c| c.op.eval(&record.get_or_null(&c.field), &c.value))
    }

    /// Execute a query, returning matching records (cloned) and the access
    /// path the planner chose.
    pub fn execute(&mut self, query: &Query) -> Result<(Vec<Record>, AccessPath)> {
        for c in &query.constraints {
            if self.schema.column(&c.field).is_none() {
                return Err(StoreError::NoSuchColumn {
                    table: self.schema.name.clone(),
                    column: c.field.clone(),
                });
            }
        }
        if let Some(ob) = &query.order_by {
            if self.schema.column(&ob.field).is_none() {
                return Err(StoreError::NoSuchColumn {
                    table: self.schema.name.clone(),
                    column: ob.field.clone(),
                });
            }
        }
        let path = self.plan(query);
        let candidate_rows: Vec<RowId> = match &path {
            AccessPath::PrimaryKey => {
                self.stats.pk_lookups += 1;
                let pk_constraint = query
                    .constraints
                    .iter()
                    .find(|c| c.field == self.schema.primary_key && c.op == Op::Eq)
                    .expect("planner chose PrimaryKey without pk constraint");
                match pk_constraint
                    .value
                    .as_str()
                    .and_then(|s| self.pk_map.get(s))
                {
                    Some(&id) => vec![id],
                    None => vec![],
                }
            }
            AccessPath::IndexEq { column } => {
                self.stats.index_queries += 1;
                let c = query
                    .constraints
                    .iter()
                    .find(|c| &c.field == column && c.op == Op::Eq)
                    .expect("planner chose IndexEq without eq constraint");
                self.indexes[column].lookup_eq(&c.value)
            }
            AccessPath::IndexRange { column } => {
                self.stats.index_queries += 1;
                let c = query
                    .constraints
                    .iter()
                    .find(|c| &c.field == column && c.op.index_range_usable())
                    .expect("planner chose IndexRange without range constraint");
                let (lo, hi) = c.op.bounds(&c.value).expect("range op has bounds");
                self.indexes[column]
                    .lookup_range(lo, hi)
                    .expect("planner chose IndexRange on non-range index")
            }
            AccessPath::FullScan => {
                self.stats.full_scans += 1;
                (0..self.rows.len() as RowId).collect()
            }
        };
        let candidate_rows = dedup_rows(candidate_rows);
        self.stats.rows_examined += candidate_rows.len() as u64;

        let mut matches: Vec<&Record> = candidate_rows
            .into_iter()
            .map(|id| &self.rows[id as usize])
            .filter(|r| self.row_matches(r, query))
            .collect();

        if let Some(ob) = &query.order_by {
            let cmp = |a: &&Record, b: &&Record| {
                let ord = a
                    .get_or_null(&ob.field)
                    .total_cmp(&b.get_or_null(&ob.field));
                if ob.descending {
                    ord.reverse()
                } else {
                    ord
                }
            };
            // Partial selection: a LIMIT far below the match count (the
            // common "latest metric" shape) avoids a full sort.
            if let Some(limit) = query.limit {
                if limit > 0 && limit < matches.len() {
                    matches.select_nth_unstable_by(limit - 1, cmp);
                    matches.truncate(limit);
                }
            }
            matches.sort_by(cmp);
        }
        if let Some(limit) = query.limit {
            matches.truncate(limit);
        }
        Ok((matches.into_iter().cloned().collect(), path))
    }

    /// Approximate memory footprint of all rows.
    pub fn approx_size(&self) -> usize {
        self.rows.iter().map(Record::approx_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "instances",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("model", ValueType::Str).hash_indexed(),
                ColumnDef::new("city", ValueType::Str).hash_indexed(),
                ColumnDef::new("created", ValueType::Timestamp).btree_indexed(),
                ColumnDef::new("mape", ValueType::Float)
                    .nullable()
                    .btree_indexed(),
                ColumnDef::new("deprecated", ValueType::Bool).nullable(),
            ],
        )
        .unwrap();
        Table::new(schema)
    }

    fn row(id: &str, model: &str, city: &str, created: i64, mape: f64) -> Record {
        Record::new()
            .set("id", id)
            .set("model", model)
            .set("city", city)
            .set("created", Value::Timestamp(created))
            .set("mape", mape)
    }

    #[test]
    fn insert_and_get() {
        let mut t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        assert_eq!(t.get("i1").unwrap().get("model"), Some(&Value::from("rf")));
        assert!(t.get("nope").is_none());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        let err = t.insert(row("i1", "rf", "sf", 2, 0.2));
        assert!(matches!(err, Err(StoreError::DuplicateKey(_))));
    }

    #[test]
    fn planner_prefers_pk() {
        let mut t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        let q = Query::all().and(Constraint::eq("id", "i1"));
        let (rows, path) = t.execute(&q).unwrap();
        assert_eq!(path, AccessPath::PrimaryKey);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn planner_uses_hash_index_for_eq() {
        let mut t = table();
        for i in 0..100 {
            t.insert(row(
                &format!("i{i}"),
                if i % 2 == 0 { "rf" } else { "lr" },
                "sf",
                i,
                0.1,
            ))
            .unwrap();
        }
        let q = Query::all().and(Constraint::eq("model", "rf"));
        let (rows, path) = t.execute(&q).unwrap();
        assert_eq!(
            path,
            AccessPath::IndexEq {
                column: "model".into()
            }
        );
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn planner_uses_btree_for_range() {
        let mut t = table();
        for i in 0..10 {
            t.insert(row(&format!("i{i}"), "rf", "sf", i, 0.01 * i as f64))
                .unwrap();
        }
        let q = Query::all().and(Constraint::lt("mape", 0.05));
        let (rows, path) = t.execute(&q).unwrap();
        assert_eq!(
            path,
            AccessPath::IndexRange {
                column: "mape".into()
            }
        );
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn full_scan_for_unindexed() {
        let mut t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        // contains is not index-servable
        let q = Query::all().and(Constraint::new("model", Op::Contains, "r"));
        let (rows, path) = t.execute(&q).unwrap();
        assert_eq!(path, AccessPath::FullScan);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn residual_constraints_filtered() {
        let mut t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        t.insert(row("i2", "rf", "nyc", 2, 0.2)).unwrap();
        let q = Query::all()
            .and(Constraint::eq("model", "rf"))
            .and(Constraint::eq("city", "nyc"));
        let (rows, _) = t.execute(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("id"), Some(&Value::from("i2")));
    }

    #[test]
    fn order_by_and_limit() {
        let mut t = table();
        for i in 0..5 {
            t.insert(row(&format!("i{i}"), "rf", "sf", 10 - i, 0.1))
                .unwrap();
        }
        let q = Query::all().order_by("created", false).limit(2);
        let (rows, _) = t.execute(&q).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("created"), Some(&Value::Timestamp(6)));
    }

    #[test]
    fn deprecated_rows_skipped_by_default() {
        let mut t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        t.insert(row("i2", "rf", "sf", 2, 0.2)).unwrap();
        t.set_flag("i2", "deprecated", true).unwrap();
        let q = Query::all().and(Constraint::eq("model", "rf"));
        let (rows, _) = t.execute(&q).unwrap();
        assert_eq!(rows.len(), 1);
        let q = q.with_deprecated();
        let (rows, _) = t.execute(&q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn set_flag_rejects_non_flag_columns() {
        let mut t = table();
        t.insert(row("i1", "rf", "sf", 1, 0.1)).unwrap();
        assert!(t.set_flag("i1", "model", true).is_err());
        assert!(t.set_flag("missing", "deprecated", true).is_err());
    }

    #[test]
    fn unknown_query_column_is_error() {
        let mut t = table();
        let q = Query::all().and(Constraint::eq("bogus", "x"));
        assert!(matches!(
            t.execute(&q),
            Err(StoreError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn stats_track_access_paths() {
        let mut t = table();
        for i in 0..10 {
            t.insert(row(&format!("i{i}"), "rf", "sf", i, 0.1)).unwrap();
        }
        let _ = t.execute(&Query::all().and(Constraint::eq("model", "rf")));
        let _ = t.execute(&Query::all().and(Constraint::new("model", Op::Contains, "r")));
        let s = t.stats();
        assert_eq!(s.inserts, 10);
        assert_eq!(s.index_queries, 1);
        assert_eq!(s.full_scans, 1);
    }
}
