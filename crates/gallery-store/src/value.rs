//! Dynamically typed values stored in metadata-store columns.
//!
//! The metadata store is Gallery's stand-in for the MySQL service described
//! in §3.5 of the paper. Columns are typed; [`Value`] is the runtime
//! representation of a cell.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column type declared in a table schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    Bool,
    Int,
    Float,
    Str,
    Bytes,
    /// Milliseconds since the UNIX epoch.
    Timestamp,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ValueType {
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
            ValueType::Bytes => "bytes",
            ValueType::Timestamp => "timestamp",
        }
    }
}

/// A single cell value.
///
/// `Null` is permitted only in nullable columns. `Float` cells use a total
/// ordering (NaN sorts greatest) so they can participate in btree indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Bytes(Vec<u8>),
    Timestamp(i64),
}

impl Value {
    /// The runtime type of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bytes(_) => Some(ValueType::Bytes),
            Value::Timestamp(_) => Some(ValueType::Timestamp),
        }
    }

    pub fn type_name(&self) -> &'static str {
        self.value_type().map(ValueType::name).unwrap_or("null")
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this value can be stored in a column of the given type.
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true, // null-ness is checked against nullability, not type
            Some(t) => t == ty,
        }
    }

    /// Approximate in-memory footprint in bytes; used by cache budgets and
    /// the simulator's memory accounting.
    pub fn approx_size(&self) -> usize {
        let base = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => base + s.len(),
            Value::Bytes(b) => base + b.len(),
            _ => base,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            // Hash floats by their canonical bit pattern so that values
            // comparing equal under total_cmp hash identically.
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::Timestamp(t) => t.hash(state),
        }
    }
}

impl Value {
    /// Total ordering across all value variants. Values of different
    /// variants order by variant rank; `Null` sorts first. Numeric
    /// cross-variant comparison (Int vs Float) compares numerically so
    /// query predicates behave intuitively.
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // shares rank with Int for numeric compare
            Value::Timestamp(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Timestamp(t) => write!(f, "ts:{t}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Str("x".into()).type_name(), "str");
    }

    #[test]
    fn conformance() {
        assert!(Value::Int(5).conforms_to(ValueType::Int));
        assert!(!Value::Int(5).conforms_to(ValueType::Str));
        assert!(Value::Null.conforms_to(ValueType::Str));
    }

    #[test]
    fn ordering_within_variant() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Timestamp(10) < Value::Timestamp(20));
    }

    #[test]
    fn numeric_cross_variant_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(2.5) > Value::Int(2));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn nan_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn equal_values_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Int(7)));
        assert_eq!(h(&Value::Float(1.0)), h(&Value::Float(1.0)));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn approx_size_counts_payload() {
        assert!(Value::Str("hello world".into()).approx_size() > Value::Int(0).approx_size());
    }
}
