//! Error types for the storage substrate.

use std::fmt;

/// Errors produced by the metadata store, blob store, WAL, and DAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name.
    NoSuchTable(String),
    /// No column with this name in the table schema.
    NoSuchColumn { table: String, column: String },
    /// A record with this primary key already exists (records are immutable).
    DuplicateKey(String),
    /// No record with this primary key.
    NoSuchKey(String),
    /// The value supplied for a column does not match the declared type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// A required (non-nullable) column was missing from the record.
    MissingColumn(String),
    /// No blob stored at this location.
    NoSuchBlob(String),
    /// Blob checksum verification failed (corruption).
    ChecksumMismatch { location: String },
    /// An injected or real I/O failure.
    Io(String),
    /// A fault-injection hook fired.
    InjectedFault(&'static str),
    /// WAL is corrupt or truncated mid-entry.
    WalCorrupt(String),
    /// Query constraint is malformed (unknown operator/field combination).
    BadQuery(String),
}

impl StoreError {
    /// Whether the failure is *transient*: retrying the exact same
    /// operation may succeed without any other intervention. Injected
    /// faults and I/O errors qualify; semantic errors (missing keys,
    /// duplicate keys, schema violations) and detected corruption do not —
    /// retrying those would either fail identically or mask a bug.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io(_) | StoreError::InjectedFault(_))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TableExists(t) => write!(f, "table already exists: {t}"),
            StoreError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StoreError::NoSuchColumn { table, column } => {
                write!(f, "no such column {column} in table {table}")
            }
            StoreError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            StoreError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            StoreError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on column {column}: expected {expected}, got {got}"
            ),
            StoreError::MissingColumn(c) => write!(f, "missing required column: {c}"),
            StoreError::NoSuchBlob(l) => write!(f, "no such blob: {l}"),
            StoreError::ChecksumMismatch { location } => {
                write!(f, "checksum mismatch for blob at {location}")
            }
            StoreError::Io(m) => write!(f, "i/o error: {m}"),
            StoreError::InjectedFault(site) => write!(f, "injected fault at {site}"),
            StoreError::WalCorrupt(m) => write!(f, "wal corrupt: {m}"),
            StoreError::BadQuery(m) => write!(f, "bad query: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StoreError>;
