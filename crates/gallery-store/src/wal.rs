//! Write-ahead log for the metadata store.
//!
//! The paper's metadata lives in an HA MySQL deployment; our embedded
//! stand-in gains durability through a simple append-only log. Each entry
//! is a CRC-framed JSON line; replay stops cleanly at a torn tail (the
//! standard WAL contract) but reports corruption in the middle of the log.
//!
//! All file IO goes through the [`FileSystem`] abstraction so the
//! crash-consistency harness ([`crate::testkit`]) can run the WAL over a
//! simulated disk ([`crate::simfs::SimFs`]) and crash it at every IO
//! operation. Production paths use [`real_fs`] and perform the same
//! syscalls as before.

use crate::blob::checksum::crc32;
use crate::error::{Result, StoreError};
use crate::record::{EncodeBuf, Record};
use crate::schema::TableSchema;
use crate::simfs::{real_fs, FileSystem, FsFile};
use gallery_sync::locks::{OrderedCondvar, OrderedMutex, OrderedMutexGuard};
use gallery_sync::{io_section, rank};
use gallery_telemetry::{kinds, Counter, EventSink, Gauge, Histogram, Telemetry, TimeSource};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One logical operation recorded in the WAL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalOp {
    CreateTable {
        schema: TableSchema,
    },
    Insert {
        table: String,
        /// Shared with the table's row storage: the oplog keeps an `Arc`
        /// clone of the same allocation instead of a deep copy, halving
        /// the write path's memory traffic. Flag writes copy-on-write
        /// (`Arc::make_mut`) so logged history is never mutated.
        record: Arc<Record>,
    },
    SetFlag {
        table: String,
        pk: String,
        column: String,
        value: bool,
    },
}

/// When to fsync the log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append (durable, slow).
    Always,
    /// Let the OS flush (fast, loses the tail on crash).
    Never,
}

/// Telemetry handles for one WAL instance (absent until
/// [`Wal::with_telemetry`] attaches them).
struct WalTelemetry {
    appends: Arc<Counter>,
    flushes: Arc<Counter>,
    append_ms: Arc<Histogram>,
    group_commit_batches: Arc<Counter>,
    group_commit_ops: Arc<Counter>,
    group_commit_batch_size: Arc<Histogram>,
    events: Arc<EventSink>,
}

/// Append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: Box<dyn FsFile>,
    sync: SyncPolicy,
    entries_written: u64,
    telemetry: Option<WalTelemetry>,
    /// Reused across batches: framed lines accumulate here so one batch is
    /// one `write` syscall and (at most) one fsync.
    encode_buf: EncodeBuf,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("entries_written", &self.entries_written)
            .finish()
    }
}

/// What [`Wal::replay_report`] found at the end of the log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the end of the last intact entry: truncating the log
    /// to this length removes the crash artifact.
    pub valid_len: u64,
    /// Garbage bytes after `valid_len`.
    pub dropped_bytes: u64,
}

/// Outcome of replaying a log file: the intact operations plus, when the
/// final record was torn by a crash, where the tear begins.
#[derive(Debug, Default)]
pub struct ReplayReport {
    pub ops: Vec<WalOp>,
    pub torn_tail: Option<TornTail>,
}

impl Wal {
    /// Open (creating if necessary) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self> {
        Self::open_with_fs(real_fs(), path, sync)
    }

    /// [`Wal::open`] over an explicit file system.
    pub fn open_with_fs(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            fs.create_dir_all(parent)?;
        }
        let writer = fs.open_append(&path)?;
        Ok(Wal {
            path,
            writer,
            sync,
            entries_written: 0,
            telemetry: None,
            encode_buf: EncodeBuf::new(),
        })
    }

    /// Create a fresh log at `path`, truncating anything already there
    /// (used when writing a compacted log to a temporary file).
    pub fn create(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self> {
        Self::create_with_fs(real_fs(), path, sync)
    }

    /// [`Wal::create`] over an explicit file system.
    pub fn create_with_fs(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            fs.create_dir_all(parent)?;
        }
        let writer = fs.create(&path)?;
        Ok(Wal {
            path,
            writer,
            sync,
            entries_written: 0,
            telemetry: None,
            encode_buf: EncodeBuf::new(),
        })
    }

    /// Count appends/flushes and time appends against `telemetry`
    /// (`gallery_wal_*`), and report explicit flushes as `wal.flush`
    /// events.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// In-place variant of [`Wal::with_telemetry`] (used when the WAL is
    /// already mounted inside a store's committer).
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        let r = telemetry.registry();
        self.telemetry = Some(WalTelemetry {
            appends: r.counter("gallery_wal_appends_total", &[]),
            flushes: r.counter("gallery_wal_flushes_total", &[]),
            append_ms: r.duration_histogram("gallery_wal_append_duration_ms", &[]),
            group_commit_batches: r.counter("gallery_wal_group_commit_batches_total", &[]),
            group_commit_ops: r.counter("gallery_wal_group_commit_ops_total", &[]),
            group_commit_batch_size: r.histogram(
                "gallery_wal_group_commit_batch_size",
                &[],
                vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0],
            ),
            events: Arc::clone(telemetry.events()),
        });
    }

    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Flush and fsync everything written so far.
    pub fn sync_all(&mut self) -> Result<()> {
        self.writer.flush()?;
        io_section("wal.sync_all", || self.writer.sync_data())?;
        if let Some(t) = &self.telemetry {
            t.flushes.inc();
            t.events.emit(
                kinds::WAL_FLUSH,
                vec![
                    ("entries", self.entries_written.to_string()),
                    ("reason", "sync_all".to_string()),
                ],
            );
        }
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn entries_written(&self) -> u64 {
        self.entries_written
    }

    /// Append one operation. The entry is flushed to the OS; whether it is
    /// fsynced depends on the [`SyncPolicy`].
    pub fn append(&mut self, op: &WalOp) -> Result<()> {
        self.append_batch(&[op])
    }

    /// Append a whole commit batch: every entry is framed into one reused
    /// buffer, handed to the file in a *single* buffered write, and made
    /// durable with (at most) a *single* fsync. This is the group-commit
    /// primitive — N coalesced commits cost one write + one sync instead
    /// of N of each. The batch buffer is one write syscall, so a crash can
    /// tear it mid-batch; replay then recovers a clean prefix of the batch
    /// (entries are self-framed lines) and none of them were acked.
    pub fn append_batch(&mut self, ops: &[&WalOp]) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        self.encode_buf.reset();
        for op in ops {
            let json = serde_json::to_string(op)
                .map_err(|e| StoreError::Io(format!("wal encode: {e}")))?;
            let crc = crc32(json.as_bytes());
            let line = self.encode_buf.buf_mut();
            let _ = writeln!(line, "{crc:08x} {json}");
        }
        self.writer.write_all(self.encode_buf.as_bytes())?;
        self.writer.flush()?;
        if self.sync == SyncPolicy::Always {
            io_section("wal.append_batch", || self.writer.sync_data())?;
        }
        self.entries_written += ops.len() as u64;
        if let Some(t) = &self.telemetry {
            t.appends.add(ops.len() as u64);
            if self.sync == SyncPolicy::Always {
                t.flushes.inc();
            }
            t.group_commit_batches.inc();
            t.group_commit_ops.add(ops.len() as u64);
            t.group_commit_batch_size.observe(ops.len() as f64);
            t.append_ms.observe_since(start);
        }
        Ok(())
    }

    /// Replay all intact entries from a log file. A torn final line is
    /// tolerated (it is the expected crash artifact); a CRC mismatch on a
    /// non-final line is reported as corruption.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalOp>> {
        Ok(Self::replay_report(&*real_fs(), path)?.ops)
    }

    /// [`Wal::replay`] over an explicit file system.
    pub fn replay_with_fs(fs: &dyn FileSystem, path: impl AsRef<Path>) -> Result<Vec<WalOp>> {
        Ok(Self::replay_report(fs, path)?.ops)
    }

    /// Replay, additionally reporting whether (and where) the final record
    /// was torn. Does not modify the log.
    pub fn replay_report(fs: &dyn FileSystem, path: impl AsRef<Path>) -> Result<ReplayReport> {
        let path = path.as_ref();
        if !fs.exists(path) {
            return Ok(ReplayReport::default());
        }
        let data = fs.read(path)?;
        Self::replay_bytes(&data)
    }

    /// Replay and *heal*: when the log ends in a torn record, truncate the
    /// tail so the artifact cannot confuse later readers, count it as
    /// `gallery_wal_torn_tail_truncated_total`, and emit a structured
    /// [`kinds::WAL_TORN_TAIL`] event. This is the recovery entry point
    /// used by [`crate::meta::MetadataStore::durable`].
    pub fn recover(
        fs: &dyn FileSystem,
        path: impl AsRef<Path>,
        telemetry: &Telemetry,
    ) -> Result<Vec<WalOp>> {
        let path = path.as_ref();
        let report = Self::replay_report(fs, path)?;
        if let Some(torn) = &report.torn_tail {
            fs.truncate(path, torn.valid_len)?;
            telemetry
                .registry()
                .counter("gallery_wal_torn_tail_truncated_total", &[])
                .inc();
            telemetry.events().emit(
                kinds::WAL_TORN_TAIL,
                vec![
                    ("path", path.display().to_string()),
                    ("valid_len", torn.valid_len.to_string()),
                    ("dropped_bytes", torn.dropped_bytes.to_string()),
                ],
            );
        }
        Ok(report.ops)
    }

    fn replay_bytes(data: &[u8]) -> Result<ReplayReport> {
        let mut ops = Vec::new();
        let mut offset = 0usize;
        let mut line_no = 0usize;
        let mut torn = false;
        while offset < data.len() {
            let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
                // Trailing bytes without a newline: the classic torn tail.
                torn = true;
                break;
            };
            line_no += 1;
            let line = &data[offset..offset + nl];
            let parsed = std::str::from_utf8(line)
                .map_err(|e| format!("invalid utf-8: {e}"))
                .and_then(Self::parse_entry);
            match parsed {
                Ok(op) => {
                    ops.push(op);
                    offset += nl + 1;
                }
                Err(e) => {
                    // A complete-but-bad line: torn tail if nothing but
                    // whitespace follows, mid-log corruption otherwise.
                    let rest = &data[offset + nl + 1..];
                    if rest.iter().all(u8::is_ascii_whitespace) {
                        torn = true;
                        break;
                    }
                    return Err(StoreError::WalCorrupt(format!("line {line_no}: {e}")));
                }
            }
        }
        let torn_tail = torn.then(|| TornTail {
            valid_len: offset as u64,
            dropped_bytes: (data.len() - offset) as u64,
        });
        Ok(ReplayReport { ops, torn_tail })
    }

    fn parse_entry(line: &str) -> std::result::Result<WalOp, String> {
        let (crc_hex, json) = line
            .split_once(' ')
            .ok_or_else(|| "missing crc frame".to_string())?;
        let expected =
            u32::from_str_radix(crc_hex, 16).map_err(|e| format!("bad crc field: {e}"))?;
        let actual = crc32(json.as_bytes());
        if expected != actual {
            return Err(format!(
                "crc mismatch: expected {expected:08x}, got {actual:08x}"
            ));
        }
        serde_json::from_str(json).map_err(|e| format!("bad json: {e}"))
    }
}

/// The oplog's shared handle: every holder locks it at [`rank::OPLOG`],
/// the innermost rank of the write path.
pub type SharedOplog = Arc<OrderedMutex<Oplog>>;

/// Fresh, empty, correctly ranked oplog handle.
pub fn new_shared_oplog() -> SharedOplog {
    Arc::new(OrderedMutex::new(rank::OPLOG, Oplog::new()))
}

/// In-memory operation log shared between the committer (producer) and the
/// store/shipping layers (readers). Position `i` holds the op with sequence
/// number `i + 1`; sequence order always equals WAL order.
pub type Oplog = Vec<Arc<WalOp>>;

/// Tuning knobs for the group-commit queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Largest number of operations flushed in one WAL write + fsync.
    pub max_batch: usize,
    /// How long a batch leader lingers for stragglers before flushing.
    /// `0` (the default) flushes whatever is queued the moment a leader
    /// takes over — concurrency alone provides the batching. The wait is
    /// bounded against the injectable [`TimeSource`] with a real-time
    /// backstop, so simulated clocks cannot stall a flush forever.
    pub max_wait_ms: u64,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 256,
            max_wait_ms: 0,
        }
    }
}

/// Pending commits plus the results the leader publishes back to waiters.
/// All of it lives behind one mutex paired with one condvar: waiters block
/// on the condvar and each wake re-checks (a) "are my tickets done?" and
/// (b) "should I become the leader?" — so leadership always lands on some
/// live waiter and a finished leader can hand off without a dedicated
/// wake-the-next-leader dance.
struct CommitQueue {
    pending: Vec<(u64, Arc<WalOp>)>,
    results: HashMap<u64, std::result::Result<u64, String>>,
    next_ticket: u64,
    flushing: bool,
}

/// Group-commit front end for a durable store: concurrent committers
/// enqueue operations, one of them becomes the batch leader, and the whole
/// batch hits the WAL as a single buffered write + single fsync
/// ([`Wal::append_batch`]). After the WAL write the leader appends the
/// batch to the shared [`Oplog`] in batch order, which assigns each op its
/// sequence number — so oplog order, sequence order, and WAL order are the
/// same by construction.
///
/// Error fan-out: a failed batch write fails every commit in the batch
/// (the WAL file position is undefined after a mid-batch IO error, exactly
/// like a failed single append before group commit existed).
pub(crate) struct Committer {
    wal: OrderedMutex<Wal>,
    queue: OrderedMutex<CommitQueue>,
    cv: OrderedCondvar,
    cfg: GroupCommitConfig,
    time: Arc<dyn TimeSource>,
    oplog: SharedOplog,
    telemetry: OrderedMutex<Option<CommitterTelemetry>>,
}

/// Telemetry handles for the group-commit queue itself (absent until
/// [`Committer::set_telemetry`] attaches them): queue depth, who led vs.
/// followed each flush, how full batches ran relative to `max_batch`, and
/// the time to make a batch durable (`gallery_wal_commit_queue_*`).
struct CommitterTelemetry {
    queue_depth: Arc<Gauge>,
    leaders: Arc<Counter>,
    followers: Arc<Counter>,
    batch_occupancy: Arc<Histogram>,
    fsync_ms: Arc<Histogram>,
}

impl std::fmt::Debug for Committer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Committer").field("cfg", &self.cfg).finish()
    }
}

impl Committer {
    pub(crate) fn new(
        wal: Wal,
        cfg: GroupCommitConfig,
        time: Arc<dyn TimeSource>,
        oplog: SharedOplog,
    ) -> Self {
        Committer {
            wal: OrderedMutex::new(rank::WAL, wal),
            queue: OrderedMutex::new(
                rank::COMMIT_QUEUE,
                CommitQueue {
                    pending: Vec::new(),
                    results: HashMap::new(),
                    next_ticket: 0,
                    flushing: false,
                },
            ),
            cv: OrderedCondvar::new(),
            cfg: GroupCommitConfig {
                max_batch: cfg.max_batch.max(1),
                ..cfg
            },
            time,
            oplog,
            telemetry: OrderedMutex::new(rank::COMMITTER_STATS, None),
        }
    }

    /// Attach (or replace) commit-queue telemetry
    /// (`gallery_wal_commit_queue_*`). Single-series families: the queue
    /// is one per store, so label cardinality is constant.
    pub(crate) fn set_telemetry(&self, telemetry: &Telemetry) {
        let r = telemetry.registry();
        *self.telemetry.lock() = Some(CommitterTelemetry {
            queue_depth: r.gauge("gallery_wal_commit_queue_depth", &[]),
            leaders: r.counter("gallery_wal_commit_queue_leader_total", &[]),
            followers: r.counter("gallery_wal_commit_queue_follower_total", &[]),
            batch_occupancy: r.histogram(
                "gallery_wal_commit_queue_batch_occupancy",
                &[],
                vec![0.0625, 0.125, 0.25, 0.5, 0.75, 1.0],
            ),
            fsync_ms: r.duration_histogram("gallery_wal_commit_queue_fsync_ms", &[]),
        });
    }

    /// The WAL behind this committer. Callers locking it must not hold the
    /// commit queue lock (compaction quiesces commits via the store gate
    /// instead).
    pub(crate) fn wal(&self) -> &OrderedMutex<Wal> {
        &self.wal
    }

    /// Durably commit one operation; returns its sequence number.
    pub(crate) fn commit(&self, op: WalOp) -> Result<u64> {
        let seqs = self.commit_many(vec![op])?;
        Ok(seqs[0])
    }

    /// Durably commit several operations as one unit of enqueueing: they
    /// enter the queue atomically (preserving their relative order) and
    /// normally flush in a single batch, though `max_batch` may split
    /// them. Returns each op's sequence number, in input order.
    pub(crate) fn commit_many(&self, ops: Vec<WalOp>) -> Result<Vec<u64>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let mut q = self.queue.lock();
        let tickets: Vec<u64> = ops
            .into_iter()
            .map(|op| {
                let t = q.next_ticket;
                q.next_ticket += 1;
                q.pending.push((t, Arc::new(op)));
                t
            })
            .collect();
        if let Some(t) = &*self.telemetry.lock() {
            t.queue_depth.set(q.pending.len() as i64);
        }
        // Whether this call ever blocked behind another leader's flush —
        // counted once per commit, not once per condvar wakeup.
        let mut was_follower = false;
        loop {
            if tickets.iter().all(|t| q.results.contains_key(t)) {
                let mut seqs = Vec::with_capacity(tickets.len());
                let mut first_err = None;
                for t in &tickets {
                    match q.results.remove(t) {
                        Some(Ok(seq)) => seqs.push(seq),
                        Some(Err(msg)) => {
                            if first_err.is_none() {
                                first_err = Some(msg);
                            }
                        }
                        None => unreachable!("ticket result vanished"),
                    }
                }
                return match first_err {
                    Some(msg) => Err(StoreError::Io(msg)),
                    None => Ok(seqs),
                };
            }
            if !q.flushing && !q.pending.is_empty() {
                q.flushing = true;
                if let Some(t) = &*self.telemetry.lock() {
                    t.leaders.inc();
                }
                q = self.lead_flush(q);
                self.cv.notify_all();
                continue;
            }
            if !was_follower {
                was_follower = true;
                if let Some(t) = &*self.telemetry.lock() {
                    t.followers.inc();
                }
            }
            q = self.cv.wait(q);
        }
    }

    /// Leader path: optionally linger for stragglers, drain up to
    /// `max_batch` ops, flush them outside the queue lock, publish
    /// results. Called with `flushing` already set; returns with it
    /// cleared and the queue re-locked.
    fn lead_flush<'a>(
        &'a self,
        mut q: OrderedMutexGuard<'a, CommitQueue>,
    ) -> OrderedMutexGuard<'a, CommitQueue> {
        if self.cfg.max_wait_ms > 0 {
            let clock_deadline = self.time.now_ms() + self.cfg.max_wait_ms as i64;
            let real_deadline = Instant::now() + Duration::from_millis(self.cfg.max_wait_ms);
            while q.pending.len() < self.cfg.max_batch
                && self.time.now_ms() < clock_deadline
                && Instant::now() < real_deadline
            {
                let budget = real_deadline.saturating_duration_since(Instant::now());
                let (guard, _) = self
                    .cv
                    .wait_timeout(q, budget.max(Duration::from_millis(1)));
                q = guard;
            }
        }
        let take = q.pending.len().min(self.cfg.max_batch);
        let batch: Vec<(u64, Arc<WalOp>)> = q.pending.drain(..take).collect();
        if let Some(t) = &*self.telemetry.lock() {
            t.queue_depth.set(q.pending.len() as i64);
            t.batch_occupancy
                .observe(take as f64 / self.cfg.max_batch as f64);
        }
        drop(q);

        let flush_started = Instant::now();
        let flush_res = self.flush_batch(&batch);
        if let Some(t) = &*self.telemetry.lock() {
            t.fsync_ms.observe_since(flush_started);
        }

        let mut q = self.queue.lock();
        match flush_res {
            Ok(first_seq) => {
                for (i, (t, _)) in batch.iter().enumerate() {
                    q.results.insert(*t, Ok(first_seq + i as u64));
                }
            }
            Err(msg) => {
                for (t, _) in &batch {
                    q.results.insert(*t, Err(msg.clone()));
                }
            }
        }
        q.flushing = false;
        q
    }

    /// One WAL write + one fsync for the whole batch, then append to the
    /// oplog in batch order. Returns the sequence number of the first op.
    fn flush_batch(&self, batch: &[(u64, Arc<WalOp>)]) -> std::result::Result<u64, String> {
        {
            let mut wal = self.wal.lock();
            let refs: Vec<&WalOp> = batch.iter().map(|(_, op)| op.as_ref()).collect();
            wal.append_batch(&refs).map_err(|e| e.to_string())?;
        }
        let mut oplog = self.oplog.lock();
        let first_seq = oplog.len() as u64 + 1;
        oplog.extend(batch.iter().map(|(_, op)| Arc::clone(op)));
        Ok(first_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::simfs::SimFs;
    use crate::value::ValueType;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gallery-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        let schema =
            TableSchema::new("t", "id", vec![ColumnDef::new("id", ValueType::Str)]).unwrap();
        vec![
            WalOp::CreateTable { schema },
            WalOp::Insert {
                table: "t".into(),
                record: Arc::new(Record::new().set("id", "x")),
            },
            WalOp::SetFlag {
                table: "t".into(),
                pk: "x".into(),
                column: "deprecated".into(),
                value: true,
            },
        ]
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
            assert_eq!(wal.entries_written(), 3);
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], WalOp::CreateTable { .. }));
        assert!(
            matches!(ops[2], WalOp::SetFlag { ref column, value: true, .. } if column == "deprecated")
        );
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let dir = tmpdir("missing");
        let ops = Wal::replay(dir.join("nope.log")).unwrap();
        assert!(ops.is_empty());
    }

    #[test]
    fn torn_tail_tolerated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
        }
        // Simulate a crash mid-append: garbage partial line at the end.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "deadbeef {{\"Ins").unwrap();
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn recover_truncates_torn_tail_and_counts_it() {
        let dir = tmpdir("heal");
        let path = dir.join("wal.log");
        let clean_len;
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
            wal.sync_all().unwrap();
            clean_len = std::fs::metadata(&path).unwrap().len();
        }
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "deadbeef {{\"Ins").unwrap();
        }
        let telemetry = Telemetry::new();
        let ops = Wal::recover(&*real_fs(), &path, &telemetry).unwrap();
        assert_eq!(ops.len(), 3);
        // The tail is physically gone and the healing was observable.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        assert_eq!(
            telemetry
                .registry()
                .counter("gallery_wal_torn_tail_truncated_total", &[])
                .get(),
            1
        );
        let events = telemetry.events().of_kind(kinds::WAL_TORN_TAIL);
        assert_eq!(events.len(), 1);
        // Healing is idempotent: a second recovery sees a clean log.
        let telemetry2 = Telemetry::new();
        assert_eq!(
            Wal::recover(&*real_fs(), &path, &telemetry2).unwrap().len(),
            3
        );
        assert_eq!(
            telemetry2
                .registry()
                .counter("gallery_wal_torn_tail_truncated_total", &[])
                .get(),
            0
        );
    }

    #[test]
    fn mid_log_corruption_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
        }
        // Flip a byte in the first line's JSON payload.
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(String::from).collect();
        lines[0] = lines[0].replace("CreateTable", "CreateTabl3");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = Wal::replay(&path);
        assert!(matches!(err, Err(StoreError::WalCorrupt(_))));
    }

    #[test]
    fn append_after_reopen_preserves_existing() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(&sample_ops()[0]).unwrap();
        }
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(&sample_ops()[1]).unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
    }

    #[test]
    fn wal_over_simfs_loses_unsynced_tail_on_crash() {
        let fs = SimFs::new();
        let path = PathBuf::from("/db/wal.log");
        {
            let mut wal =
                Wal::open_with_fs(Arc::new(fs.clone()), &path, SyncPolicy::Never).unwrap();
            wal.append(&sample_ops()[0]).unwrap();
            wal.sync_all().unwrap();
            wal.append(&sample_ops()[1]).unwrap(); // never synced
        }
        let after = fs.recover();
        let ops = Wal::replay_with_fs(&after, &path).unwrap();
        assert_eq!(ops.len(), 1, "unsynced append must not survive the crash");
        // With SyncPolicy::Always both entries survive.
        let fs2 = SimFs::new();
        {
            let mut wal =
                Wal::open_with_fs(Arc::new(fs2.clone()), &path, SyncPolicy::Always).unwrap();
            wal.append(&sample_ops()[0]).unwrap();
            wal.append(&sample_ops()[1]).unwrap();
        }
        let ops = Wal::replay_with_fs(&fs2.recover(), &path).unwrap();
        assert_eq!(ops.len(), 2);
    }

    fn test_committer(dir: &Path, cfg: GroupCommitConfig) -> (Committer, Arc<Telemetry>) {
        let telemetry = Telemetry::new();
        let wal = Wal::open(dir.join("wal.log"), SyncPolicy::Always)
            .unwrap()
            .with_telemetry(&telemetry);
        let oplog = new_shared_oplog();
        (
            Committer::new(wal, cfg, Arc::new(gallery_telemetry::WallClock), oplog),
            telemetry,
        )
    }

    fn insert_op(i: usize) -> WalOp {
        WalOp::Insert {
            table: "t".into(),
            record: Arc::new(Record::new().set("id", format!("row-{i}"))),
        }
    }

    #[test]
    fn commit_many_is_one_batch_with_contiguous_seqs() {
        let dir = tmpdir("commit-batch");
        let (committer, telemetry) = test_committer(&dir, GroupCommitConfig::default());
        let seqs = committer
            .commit_many((0..10).map(insert_op).collect())
            .unwrap();
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>());
        // The whole call coalesced into a single WAL write + fsync.
        let r = telemetry.registry();
        assert_eq!(
            r.counter("gallery_wal_group_commit_batches_total", &[])
                .get(),
            1
        );
        assert_eq!(
            r.counter("gallery_wal_group_commit_ops_total", &[]).get(),
            10
        );
        assert_eq!(r.counter("gallery_wal_flushes_total", &[]).get(), 1);
        // Oplog order == WAL order.
        let replayed = Wal::replay(dir.join("wal.log")).unwrap();
        assert_eq!(replayed.len(), 10);
        let oplog = committer.oplog.lock();
        for (i, op) in oplog.iter().enumerate() {
            match (op.as_ref(), &replayed[i]) {
                (WalOp::Insert { record: a, .. }, WalOp::Insert { record: b, .. }) => {
                    assert_eq!(a, b)
                }
                other => panic!("unexpected op pair {other:?}"),
            }
        }
    }

    #[test]
    fn max_batch_splits_large_commits() {
        let dir = tmpdir("commit-split");
        let cfg = GroupCommitConfig {
            max_batch: 4,
            max_wait_ms: 0,
        };
        let (committer, telemetry) = test_committer(&dir, cfg);
        let seqs = committer
            .commit_many((0..10).map(insert_op).collect())
            .unwrap();
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>());
        // 10 ops under max_batch=4 → 3 batches (4 + 4 + 2), 3 fsyncs.
        let r = telemetry.registry();
        assert_eq!(
            r.counter("gallery_wal_group_commit_batches_total", &[])
                .get(),
            3
        );
        assert_eq!(r.counter("gallery_wal_flushes_total", &[]).get(), 3);
        assert_eq!(Wal::replay(dir.join("wal.log")).unwrap().len(), 10);
    }

    #[test]
    fn commit_queue_telemetry_tracks_leaders_and_occupancy() {
        let dir = tmpdir("commit-telemetry");
        let cfg = GroupCommitConfig {
            max_batch: 4,
            max_wait_ms: 0,
        };
        let (committer, telemetry) = test_committer(&dir, cfg);
        committer.set_telemetry(&telemetry);
        committer
            .commit_many((0..10).map(insert_op).collect())
            .unwrap();
        let r = telemetry.registry();
        // One caller, 10 ops, max_batch=4: it led all 3 flushes itself
        // (4 + 4 + 2) and never waited behind another leader.
        assert_eq!(
            r.counter("gallery_wal_commit_queue_leader_total", &[])
                .get(),
            3
        );
        assert_eq!(
            r.counter("gallery_wal_commit_queue_follower_total", &[])
                .get(),
            0
        );
        let occ = r
            .find_histogram("gallery_wal_commit_queue_batch_occupancy", &[])
            .unwrap();
        assert_eq!(occ.count(), 3);
        assert!(
            (occ.sum() - 2.5).abs() < 1e-9,
            "occupancies 1.0 + 1.0 + 0.5, got sum {}",
            occ.sum()
        );
        let fsync = r
            .find_histogram("gallery_wal_commit_queue_fsync_ms", &[])
            .unwrap();
        assert_eq!(fsync.count(), 3);
        assert_eq!(r.gauge("gallery_wal_commit_queue_depth", &[]).get(), 0);
    }

    #[test]
    fn concurrent_commits_coalesce_and_stay_ordered() {
        let dir = tmpdir("commit-threads");
        let (committer, telemetry) = test_committer(&dir, GroupCommitConfig::default());
        let committer = Arc::new(committer);
        let threads = 8;
        let per_thread = 50;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let c = Arc::clone(&committer);
                std::thread::spawn(move || {
                    (0..per_thread)
                        .map(|i| c.commit(insert_op(t * 1000 + i)).unwrap())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all_seqs: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all_seqs.sort_unstable();
        let total = (threads * per_thread) as u64;
        assert_eq!(all_seqs, (1..=total).collect::<Vec<u64>>());
        // Durable and ordered: replay sees every op, in oplog order.
        let replayed = Wal::replay(dir.join("wal.log")).unwrap();
        assert_eq!(replayed.len(), total as usize);
        // Group commit must have coalesced at least some of the 400
        // concurrent fsync-policy commits into shared flushes.
        let batches = telemetry
            .registry()
            .counter("gallery_wal_group_commit_batches_total", &[])
            .get();
        assert!(batches <= total, "batches {batches} > ops {total}");
        // Per-commit seq matches oplog position.
        let oplog = committer.oplog.lock();
        assert_eq!(oplog.len(), total as usize);
    }
}
