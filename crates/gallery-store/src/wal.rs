//! Write-ahead log for the metadata store.
//!
//! The paper's metadata lives in an HA MySQL deployment; our embedded
//! stand-in gains durability through a simple append-only log. Each entry
//! is a CRC-framed JSON line; replay stops cleanly at a torn tail (the
//! standard WAL contract) but reports corruption in the middle of the log.

use crate::blob::checksum::crc32;
use crate::error::{Result, StoreError};
use crate::record::Record;
use crate::schema::TableSchema;
use gallery_telemetry::{kinds, Counter, EventSink, Histogram, Telemetry};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One logical operation recorded in the WAL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalOp {
    CreateTable {
        schema: TableSchema,
    },
    Insert {
        table: String,
        record: Record,
    },
    SetFlag {
        table: String,
        pk: String,
        column: String,
        value: bool,
    },
}

/// When to fsync the log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append (durable, slow).
    Always,
    /// Let the OS flush (fast, loses the tail on crash).
    Never,
}

/// Telemetry handles for one WAL instance (absent until
/// [`Wal::with_telemetry`] attaches them).
struct WalTelemetry {
    appends: Arc<Counter>,
    flushes: Arc<Counter>,
    append_ms: Arc<Histogram>,
    events: Arc<EventSink>,
}

/// Append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    sync: SyncPolicy,
    entries_written: u64,
    telemetry: Option<WalTelemetry>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("entries_written", &self.entries_written)
            .finish()
    }
}

impl Wal {
    /// Open (creating if necessary) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            sync,
            entries_written: 0,
            telemetry: None,
        })
    }

    /// Create a fresh log at `path`, truncating anything already there
    /// (used when writing a compacted log to a temporary file).
    pub fn create(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            sync,
            entries_written: 0,
            telemetry: None,
        })
    }

    /// Count appends/flushes and time appends against `telemetry`
    /// (`gallery_wal_*`), and report explicit flushes as `wal.flush`
    /// events.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        let r = telemetry.registry();
        self.telemetry = Some(WalTelemetry {
            appends: r.counter("gallery_wal_appends_total", &[]),
            flushes: r.counter("gallery_wal_flushes_total", &[]),
            append_ms: r.duration_histogram("gallery_wal_append_duration_ms", &[]),
            events: Arc::clone(telemetry.events()),
        });
        self
    }

    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Flush and fsync everything written so far.
    pub fn sync_all(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        if let Some(t) = &self.telemetry {
            t.flushes.inc();
            t.events.emit(
                kinds::WAL_FLUSH,
                vec![
                    ("entries", self.entries_written.to_string()),
                    ("reason", "sync_all".to_string()),
                ],
            );
        }
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn entries_written(&self) -> u64 {
        self.entries_written
    }

    /// Append one operation. The entry is flushed to the OS; whether it is
    /// fsynced depends on the [`SyncPolicy`].
    pub fn append(&mut self, op: &WalOp) -> Result<()> {
        let start = Instant::now();
        let json =
            serde_json::to_string(op).map_err(|e| StoreError::Io(format!("wal encode: {e}")))?;
        let crc = crc32(json.as_bytes());
        writeln!(self.writer, "{crc:08x} {json}")?;
        self.writer.flush()?;
        if self.sync == SyncPolicy::Always {
            self.writer.get_ref().sync_data()?;
        }
        self.entries_written += 1;
        if let Some(t) = &self.telemetry {
            t.appends.inc();
            if self.sync == SyncPolicy::Always {
                t.flushes.inc();
            }
            t.append_ms.observe_since(start);
        }
        Ok(())
    }

    /// Replay all intact entries from a log file. A torn final line is
    /// tolerated (it is the expected crash artifact); a CRC mismatch on a
    /// non-final line is reported as corruption.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalOp>> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let file = File::open(path)?;
        let mut reader = BufReader::new(file);
        let mut ops = Vec::new();
        let mut line = String::new();
        let mut line_no = 0usize;
        loop {
            line.clear();
            let n = reader.read_line(&mut line)?;
            if n == 0 {
                break;
            }
            line_no += 1;
            let trimmed = line.trim_end_matches('\n');
            let parsed = Self::parse_entry(trimmed);
            match parsed {
                Ok(op) => ops.push(op),
                Err(e) => {
                    // Peek: if there is any further content this is mid-log
                    // corruption, not a torn tail.
                    let mut rest = String::new();
                    reader.read_line(&mut rest)?;
                    if rest.trim().is_empty() {
                        break; // torn tail: ignore
                    }
                    return Err(StoreError::WalCorrupt(format!("line {line_no}: {e}")));
                }
            }
        }
        Ok(ops)
    }

    fn parse_entry(line: &str) -> std::result::Result<WalOp, String> {
        let (crc_hex, json) = line
            .split_once(' ')
            .ok_or_else(|| "missing crc frame".to_string())?;
        let expected =
            u32::from_str_radix(crc_hex, 16).map_err(|e| format!("bad crc field: {e}"))?;
        let actual = crc32(json.as_bytes());
        if expected != actual {
            return Err(format!(
                "crc mismatch: expected {expected:08x}, got {actual:08x}"
            ));
        }
        serde_json::from_str(json).map_err(|e| format!("bad json: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gallery-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        let schema =
            TableSchema::new("t", "id", vec![ColumnDef::new("id", ValueType::Str)]).unwrap();
        vec![
            WalOp::CreateTable { schema },
            WalOp::Insert {
                table: "t".into(),
                record: Record::new().set("id", "x"),
            },
            WalOp::SetFlag {
                table: "t".into(),
                pk: "x".into(),
                column: "deprecated".into(),
                value: true,
            },
        ]
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
            assert_eq!(wal.entries_written(), 3);
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], WalOp::CreateTable { .. }));
        assert!(
            matches!(ops[2], WalOp::SetFlag { ref column, value: true, .. } if column == "deprecated")
        );
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let dir = tmpdir("missing");
        let ops = Wal::replay(dir.join("nope.log")).unwrap();
        assert!(ops.is_empty());
    }

    #[test]
    fn torn_tail_tolerated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
        }
        // Simulate a crash mid-append: garbage partial line at the end.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "deadbeef {{\"Ins").unwrap();
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn mid_log_corruption_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
        }
        // Flip a byte in the first line's JSON payload.
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(String::from).collect();
        lines[0] = lines[0].replace("CreateTable", "CreateTabl3");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = Wal::replay(&path);
        assert!(matches!(err, Err(StoreError::WalCorrupt(_))));
    }

    #[test]
    fn append_after_reopen_preserves_existing() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(&sample_ops()[0]).unwrap();
        }
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(&sample_ops()[1]).unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
    }
}
