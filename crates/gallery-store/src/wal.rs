//! Write-ahead log for the metadata store.
//!
//! The paper's metadata lives in an HA MySQL deployment; our embedded
//! stand-in gains durability through a simple append-only log. Each entry
//! is a CRC-framed JSON line; replay stops cleanly at a torn tail (the
//! standard WAL contract) but reports corruption in the middle of the log.
//!
//! All file IO goes through the [`FileSystem`] abstraction so the
//! crash-consistency harness ([`crate::testkit`]) can run the WAL over a
//! simulated disk ([`crate::simfs::SimFs`]) and crash it at every IO
//! operation. Production paths use [`real_fs`] and perform the same
//! syscalls as before.

use crate::blob::checksum::crc32;
use crate::error::{Result, StoreError};
use crate::record::Record;
use crate::schema::TableSchema;
use crate::simfs::{real_fs, FileSystem, FsFile};
use gallery_telemetry::{kinds, Counter, EventSink, Histogram, Telemetry};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One logical operation recorded in the WAL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalOp {
    CreateTable {
        schema: TableSchema,
    },
    Insert {
        table: String,
        record: Record,
    },
    SetFlag {
        table: String,
        pk: String,
        column: String,
        value: bool,
    },
}

/// When to fsync the log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append (durable, slow).
    Always,
    /// Let the OS flush (fast, loses the tail on crash).
    Never,
}

/// Telemetry handles for one WAL instance (absent until
/// [`Wal::with_telemetry`] attaches them).
struct WalTelemetry {
    appends: Arc<Counter>,
    flushes: Arc<Counter>,
    append_ms: Arc<Histogram>,
    events: Arc<EventSink>,
}

/// Append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: Box<dyn FsFile>,
    sync: SyncPolicy,
    entries_written: u64,
    telemetry: Option<WalTelemetry>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("entries_written", &self.entries_written)
            .finish()
    }
}

/// What [`Wal::replay_report`] found at the end of the log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the end of the last intact entry: truncating the log
    /// to this length removes the crash artifact.
    pub valid_len: u64,
    /// Garbage bytes after `valid_len`.
    pub dropped_bytes: u64,
}

/// Outcome of replaying a log file: the intact operations plus, when the
/// final record was torn by a crash, where the tear begins.
#[derive(Debug, Default)]
pub struct ReplayReport {
    pub ops: Vec<WalOp>,
    pub torn_tail: Option<TornTail>,
}

impl Wal {
    /// Open (creating if necessary) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self> {
        Self::open_with_fs(real_fs(), path, sync)
    }

    /// [`Wal::open`] over an explicit file system.
    pub fn open_with_fs(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            fs.create_dir_all(parent)?;
        }
        let writer = fs.open_append(&path)?;
        Ok(Wal {
            path,
            writer,
            sync,
            entries_written: 0,
            telemetry: None,
        })
    }

    /// Create a fresh log at `path`, truncating anything already there
    /// (used when writing a compacted log to a temporary file).
    pub fn create(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self> {
        Self::create_with_fs(real_fs(), path, sync)
    }

    /// [`Wal::create`] over an explicit file system.
    pub fn create_with_fs(
        fs: Arc<dyn FileSystem>,
        path: impl AsRef<Path>,
        sync: SyncPolicy,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            fs.create_dir_all(parent)?;
        }
        let writer = fs.create(&path)?;
        Ok(Wal {
            path,
            writer,
            sync,
            entries_written: 0,
            telemetry: None,
        })
    }

    /// Count appends/flushes and time appends against `telemetry`
    /// (`gallery_wal_*`), and report explicit flushes as `wal.flush`
    /// events.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        let r = telemetry.registry();
        self.telemetry = Some(WalTelemetry {
            appends: r.counter("gallery_wal_appends_total", &[]),
            flushes: r.counter("gallery_wal_flushes_total", &[]),
            append_ms: r.duration_histogram("gallery_wal_append_duration_ms", &[]),
            events: Arc::clone(telemetry.events()),
        });
        self
    }

    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Flush and fsync everything written so far.
    pub fn sync_all(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.sync_data()?;
        if let Some(t) = &self.telemetry {
            t.flushes.inc();
            t.events.emit(
                kinds::WAL_FLUSH,
                vec![
                    ("entries", self.entries_written.to_string()),
                    ("reason", "sync_all".to_string()),
                ],
            );
        }
        Ok(())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn entries_written(&self) -> u64 {
        self.entries_written
    }

    /// Append one operation. The entry is flushed to the OS; whether it is
    /// fsynced depends on the [`SyncPolicy`].
    pub fn append(&mut self, op: &WalOp) -> Result<()> {
        let start = Instant::now();
        let json =
            serde_json::to_string(op).map_err(|e| StoreError::Io(format!("wal encode: {e}")))?;
        let crc = crc32(json.as_bytes());
        writeln!(self.writer, "{crc:08x} {json}")?;
        self.writer.flush()?;
        if self.sync == SyncPolicy::Always {
            self.writer.sync_data()?;
        }
        self.entries_written += 1;
        if let Some(t) = &self.telemetry {
            t.appends.inc();
            if self.sync == SyncPolicy::Always {
                t.flushes.inc();
            }
            t.append_ms.observe_since(start);
        }
        Ok(())
    }

    /// Replay all intact entries from a log file. A torn final line is
    /// tolerated (it is the expected crash artifact); a CRC mismatch on a
    /// non-final line is reported as corruption.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalOp>> {
        Ok(Self::replay_report(&*real_fs(), path)?.ops)
    }

    /// [`Wal::replay`] over an explicit file system.
    pub fn replay_with_fs(fs: &dyn FileSystem, path: impl AsRef<Path>) -> Result<Vec<WalOp>> {
        Ok(Self::replay_report(fs, path)?.ops)
    }

    /// Replay, additionally reporting whether (and where) the final record
    /// was torn. Does not modify the log.
    pub fn replay_report(fs: &dyn FileSystem, path: impl AsRef<Path>) -> Result<ReplayReport> {
        let path = path.as_ref();
        if !fs.exists(path) {
            return Ok(ReplayReport::default());
        }
        let data = fs.read(path)?;
        Self::replay_bytes(&data)
    }

    /// Replay and *heal*: when the log ends in a torn record, truncate the
    /// tail so the artifact cannot confuse later readers, count it as
    /// `gallery_wal_torn_tail_truncated_total`, and emit a structured
    /// [`kinds::WAL_TORN_TAIL`] event. This is the recovery entry point
    /// used by [`crate::meta::MetadataStore::durable`].
    pub fn recover(
        fs: &dyn FileSystem,
        path: impl AsRef<Path>,
        telemetry: &Telemetry,
    ) -> Result<Vec<WalOp>> {
        let path = path.as_ref();
        let report = Self::replay_report(fs, path)?;
        if let Some(torn) = &report.torn_tail {
            fs.truncate(path, torn.valid_len)?;
            telemetry
                .registry()
                .counter("gallery_wal_torn_tail_truncated_total", &[])
                .inc();
            telemetry.events().emit(
                kinds::WAL_TORN_TAIL,
                vec![
                    ("path", path.display().to_string()),
                    ("valid_len", torn.valid_len.to_string()),
                    ("dropped_bytes", torn.dropped_bytes.to_string()),
                ],
            );
        }
        Ok(report.ops)
    }

    fn replay_bytes(data: &[u8]) -> Result<ReplayReport> {
        let mut ops = Vec::new();
        let mut offset = 0usize;
        let mut line_no = 0usize;
        let mut torn = false;
        while offset < data.len() {
            let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
                // Trailing bytes without a newline: the classic torn tail.
                torn = true;
                break;
            };
            line_no += 1;
            let line = &data[offset..offset + nl];
            let parsed = std::str::from_utf8(line)
                .map_err(|e| format!("invalid utf-8: {e}"))
                .and_then(Self::parse_entry);
            match parsed {
                Ok(op) => {
                    ops.push(op);
                    offset += nl + 1;
                }
                Err(e) => {
                    // A complete-but-bad line: torn tail if nothing but
                    // whitespace follows, mid-log corruption otherwise.
                    let rest = &data[offset + nl + 1..];
                    if rest.iter().all(u8::is_ascii_whitespace) {
                        torn = true;
                        break;
                    }
                    return Err(StoreError::WalCorrupt(format!("line {line_no}: {e}")));
                }
            }
        }
        let torn_tail = torn.then(|| TornTail {
            valid_len: offset as u64,
            dropped_bytes: (data.len() - offset) as u64,
        });
        Ok(ReplayReport { ops, torn_tail })
    }

    fn parse_entry(line: &str) -> std::result::Result<WalOp, String> {
        let (crc_hex, json) = line
            .split_once(' ')
            .ok_or_else(|| "missing crc frame".to_string())?;
        let expected =
            u32::from_str_radix(crc_hex, 16).map_err(|e| format!("bad crc field: {e}"))?;
        let actual = crc32(json.as_bytes());
        if expected != actual {
            return Err(format!(
                "crc mismatch: expected {expected:08x}, got {actual:08x}"
            ));
        }
        serde_json::from_str(json).map_err(|e| format!("bad json: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::simfs::SimFs;
    use crate::value::ValueType;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gallery-wal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        let schema =
            TableSchema::new("t", "id", vec![ColumnDef::new("id", ValueType::Str)]).unwrap();
        vec![
            WalOp::CreateTable { schema },
            WalOp::Insert {
                table: "t".into(),
                record: Record::new().set("id", "x"),
            },
            WalOp::SetFlag {
                table: "t".into(),
                pk: "x".into(),
                column: "deprecated".into(),
                value: true,
            },
        ]
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
            assert_eq!(wal.entries_written(), 3);
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], WalOp::CreateTable { .. }));
        assert!(
            matches!(ops[2], WalOp::SetFlag { ref column, value: true, .. } if column == "deprecated")
        );
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let dir = tmpdir("missing");
        let ops = Wal::replay(dir.join("nope.log")).unwrap();
        assert!(ops.is_empty());
    }

    #[test]
    fn torn_tail_tolerated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
        }
        // Simulate a crash mid-append: garbage partial line at the end.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "deadbeef {{\"Ins").unwrap();
        }
        let ops = Wal::replay(&path).unwrap();
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn recover_truncates_torn_tail_and_counts_it() {
        let dir = tmpdir("heal");
        let path = dir.join("wal.log");
        let clean_len;
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
            wal.sync_all().unwrap();
            clean_len = std::fs::metadata(&path).unwrap().len();
        }
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "deadbeef {{\"Ins").unwrap();
        }
        let telemetry = Telemetry::new();
        let ops = Wal::recover(&*real_fs(), &path, &telemetry).unwrap();
        assert_eq!(ops.len(), 3);
        // The tail is physically gone and the healing was observable.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        assert_eq!(
            telemetry
                .registry()
                .counter("gallery_wal_torn_tail_truncated_total", &[])
                .get(),
            1
        );
        let events = telemetry.events().of_kind(kinds::WAL_TORN_TAIL);
        assert_eq!(events.len(), 1);
        // Healing is idempotent: a second recovery sees a clean log.
        let telemetry2 = Telemetry::new();
        assert_eq!(
            Wal::recover(&*real_fs(), &path, &telemetry2).unwrap().len(),
            3
        );
        assert_eq!(
            telemetry2
                .registry()
                .counter("gallery_wal_torn_tail_truncated_total", &[])
                .get(),
            0
        );
    }

    #[test]
    fn mid_log_corruption_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Never).unwrap();
            for op in sample_ops() {
                wal.append(&op).unwrap();
            }
        }
        // Flip a byte in the first line's JSON payload.
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(String::from).collect();
        lines[0] = lines[0].replace("CreateTable", "CreateTabl3");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = Wal::replay(&path);
        assert!(matches!(err, Err(StoreError::WalCorrupt(_))));
    }

    #[test]
    fn append_after_reopen_preserves_existing() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(&sample_ops()[0]).unwrap();
        }
        {
            let mut wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(&sample_ops()[1]).unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
    }

    #[test]
    fn wal_over_simfs_loses_unsynced_tail_on_crash() {
        let fs = SimFs::new();
        let path = PathBuf::from("/db/wal.log");
        {
            let mut wal =
                Wal::open_with_fs(Arc::new(fs.clone()), &path, SyncPolicy::Never).unwrap();
            wal.append(&sample_ops()[0]).unwrap();
            wal.sync_all().unwrap();
            wal.append(&sample_ops()[1]).unwrap(); // never synced
        }
        let after = fs.recover();
        let ops = Wal::replay_with_fs(&after, &path).unwrap();
        assert_eq!(ops.len(), 1, "unsynced append must not survive the crash");
        // With SyncPolicy::Always both entries survive.
        let fs2 = SimFs::new();
        {
            let mut wal =
                Wal::open_with_fs(Arc::new(fs2.clone()), &path, SyncPolicy::Always).unwrap();
            wal.append(&sample_ops()[0]).unwrap();
            wal.append(&sample_ops()[1]).unwrap();
        }
        let ops = Wal::replay_with_fs(&fs2.recover(), &path).unwrap();
        assert_eq!(ops.len(), 2);
    }
}
