//! File-system abstraction with a deterministic simulated implementation.
//!
//! Durability code is only as good as its behaviour at the worst possible
//! instant, so the WAL ([`crate::wal::Wal`]) and the local blob backend
//! ([`crate::blob::localfs::LocalFsBlobStore`]) perform all file IO through
//! the [`FileSystem`] trait. Production uses [`RealFs`] (thin wrappers over
//! `std::fs`, same syscalls as before); tests use [`SimFs`], an in-memory
//! file system that models the durability semantics crash-consistency
//! testing cares about:
//!
//! - written bytes are *visible* immediately but only become *durable* on
//!   `sync_data` (matching an OS page cache);
//! - directory-shape operations (create, rename, remove) are modelled as
//!   immediately durable — the simplification is documented in
//!   `docs/testing.md`;
//! - an injectable [`SimFaultPlan`] can crash the process at the Nth
//!   mutating IO operation, tear the final write (persist only a prefix),
//!   silently drop fsyncs on matching paths, and flip bits in durable data
//!   at recovery time;
//! - every mutating operation is recorded in an op log so a harness can
//!   enumerate *all* crash points of a workload and classify them by site.
//!
//! After a simulated crash, [`SimFs::recover`] produces the disk as a
//! rebooted machine would see it: durable bytes only, volatile state gone.

use gallery_sync::locks::OrderedMutex;
use gallery_sync::rank;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A writable file handle produced by a [`FileSystem`].
pub trait FsFile: Write + Send + Sync {
    /// Flush application buffers and force written bytes to stable storage
    /// (fsync). On [`SimFs`] this is the only operation that makes file
    /// *contents* survive a crash.
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The file operations the storage layer performs, abstracted so tests can
/// substitute a simulated disk. Implementations must be thread-safe.
pub trait FileSystem: Send + Sync {
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Open `path` for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn FsFile>>;
    /// Create `path` for writing, truncating any existing content.
    fn create(&self, path: &Path) -> io::Result<Box<dyn FsFile>>;
    /// Read the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    fn exists(&self, path: &Path) -> bool;
    fn is_dir(&self, path: &Path) -> bool;
    /// Length of the file in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Truncate an existing file to `len` bytes (WAL torn-tail recovery).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Entries (files and directories) directly under `path`. Missing
    /// directories yield an error, like `std::fs::read_dir`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The default [`FileSystem`]: `std::fs` on the host, shared as a
/// singleton so constructors don't allocate per store.
pub fn real_fs() -> Arc<dyn FileSystem> {
    static REAL: std::sync::OnceLock<Arc<RealFs>> = std::sync::OnceLock::new();
    REAL.get_or_init(|| Arc::new(RealFs)).clone() as Arc<dyn FileSystem>
}

/// Production file system: forwards to `std::fs`, buffering writes like the
/// pre-abstraction code did (`BufWriter` + explicit `sync_data`).
#[derive(Debug, Default)]
pub struct RealFs;

struct RealFile(io::BufWriter<std::fs::File>);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl FsFile for RealFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.flush()?;
        self.0.get_ref().sync_data()
    }
}

impl FileSystem for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(RealFile(io::BufWriter::new(f))))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(io::BufWriter::new(f))))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }
}

/// Kinds of mutating operations [`SimFs`] counts toward the crash clock and
/// records in its op log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoOp {
    Create,
    Write,
    Sync,
    Rename,
    Remove,
    Truncate,
}

impl IoOp {
    pub fn name(self) -> &'static str {
        match self {
            IoOp::Create => "create",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Rename => "rename",
            IoOp::Remove => "remove",
            IoOp::Truncate => "truncate",
        }
    }
}

/// One entry of the [`SimFs`] op log: what happened, to which file, and how
/// many payload bytes were involved (writes only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoOpRecord {
    pub op: IoOp,
    pub path: PathBuf,
    pub bytes: usize,
    /// Newline count in the write payload. Line-framed files (the WAL) use
    /// one line per record, so `newlines > 1` marks a group-commit batch —
    /// the crash matrix uses this to target mid-batch crash points.
    pub newlines: usize,
}

/// Deterministic fault plan for a [`SimFs`]. All fields compose; the
/// default plan injects nothing.
#[derive(Debug, Clone, Default)]
pub struct SimFaultPlan {
    /// Crash when the Nth (0-based) mutating operation is attempted: the
    /// operation fails with [`SIM_CRASH_MSG`], volatile state is dropped,
    /// and every later operation fails too.
    pub crash_at_op: Option<u64>,
    /// When the crashing operation is a write, persist this many bytes of
    /// its payload (after the file's already-buffered tail) — a torn final
    /// write. Ignored for non-write crash points.
    pub torn_write_keep: Option<usize>,
    /// Silently drop `sync_data` on paths whose string form contains this
    /// substring: the call reports success but nothing becomes durable (a
    /// lying disk).
    pub drop_sync_on: Option<String>,
    /// After recovery, XOR the byte at `(offset % len)` of the first
    /// durable file whose path contains the substring (bit-rot injection).
    pub bit_flip: Option<(String, usize)>,
}

/// Error text used for injected crashes; [`SimFs::crashed`] is the
/// programmatic signal.
pub const SIM_CRASH_MSG: &str = "simulated crash";

#[derive(Debug, Clone, Default)]
struct SimFileState {
    /// Bytes guaranteed to survive a crash.
    durable: Vec<u8>,
    /// Bytes written but not yet fsynced: visible to reads, lost on crash.
    volatile: Vec<u8>,
}

impl SimFileState {
    fn visible(&self) -> Vec<u8> {
        let mut v = self.durable.clone();
        v.extend_from_slice(&self.volatile);
        v
    }
}

#[derive(Default)]
struct SimState {
    files: BTreeMap<PathBuf, SimFileState>,
    dirs: BTreeSet<PathBuf>,
    plan: SimFaultPlan,
    ops: u64,
    op_log: Vec<IoOpRecord>,
    crashed: bool,
}

/// Deterministic in-memory file system. Cloning shares state (it is the
/// same disk).
#[derive(Clone)]
pub struct SimFs {
    state: Arc<OrderedMutex<SimState>>,
}

impl Default for SimFs {
    fn default() -> Self {
        SimFs {
            state: Arc::new(OrderedMutex::new(rank::SIM_FS, SimState::default())),
        }
    }
}

impl std::fmt::Debug for SimFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("SimFs")
            .field("files", &s.files.len())
            .field("ops", &s.ops)
            .field("crashed", &s.crashed)
            .finish()
    }
}

impl SimFs {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_plan(plan: SimFaultPlan) -> Self {
        let fs = Self::default();
        fs.state.lock().plan = plan;
        fs
    }

    /// Install a new fault plan (op counter keeps running).
    pub fn set_plan(&self, plan: SimFaultPlan) {
        self.state.lock().plan = plan;
    }

    /// Whether an injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Mutating operations performed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Copy of the mutating-op log, in execution order.
    pub fn op_log(&self) -> Vec<IoOpRecord> {
        self.state.lock().op_log.clone()
    }

    /// The disk as a machine rebooted after a crash (or clean shutdown)
    /// would see it: durable content only, volatile bytes gone, op counter
    /// reset, no fault plan. Applies the plan's `bit_flip`, if any, to the
    /// recovered image.
    pub fn recover(&self) -> SimFs {
        let s = self.state.lock();
        let mut files: BTreeMap<PathBuf, SimFileState> = s
            .files
            .iter()
            .map(|(p, f)| {
                (
                    p.clone(),
                    SimFileState {
                        durable: f.durable.clone(),
                        volatile: Vec::new(),
                    },
                )
            })
            .collect();
        if let Some((needle, offset)) = &s.plan.bit_flip {
            for (path, f) in files.iter_mut() {
                if path.to_string_lossy().contains(needle.as_str()) && !f.durable.is_empty() {
                    let at = offset % f.durable.len();
                    f.durable[at] ^= 0x40;
                    break;
                }
            }
        }
        let recovered = SimFs::default();
        {
            let mut r = recovered.state.lock();
            r.files = files;
            r.dirs = s.dirs.clone();
        }
        recovered
    }

    /// Durable bytes of `path` (what a crash would leave), for assertions.
    pub fn durable_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.state.lock().files.get(path).map(|f| f.durable.clone())
    }

    fn err_crashed() -> io::Error {
        io::Error::other(SIM_CRASH_MSG)
    }

    /// Count one mutating op; returns Err if this op is the crash point or
    /// the fs already crashed. `payload` is the bytes of a write (used for
    /// torn-write persistence).
    fn gate(s: &mut SimState, op: IoOp, path: &Path, payload: Option<&[u8]>) -> io::Result<()> {
        if s.crashed {
            return Err(Self::err_crashed());
        }
        if s.plan.crash_at_op == Some(s.ops) {
            // Crash *during* this operation. For a torn write, the target
            // file's OS-buffered tail plus a prefix of the in-flight
            // payload reach the platter; everything else volatile is lost.
            let keep = s.plan.torn_write_keep.unwrap_or(0);
            if let (Some(buf), true) = (payload, keep > 0) {
                if let Some(f) = s.files.get_mut(path) {
                    let tail = std::mem::take(&mut f.volatile);
                    f.durable.extend_from_slice(&tail);
                    f.durable.extend_from_slice(&buf[..keep.min(buf.len())]);
                }
            }
            for f in s.files.values_mut() {
                f.volatile.clear();
            }
            s.crashed = true;
            return Err(Self::err_crashed());
        }
        s.ops += 1;
        s.op_log.push(IoOpRecord {
            op,
            path: path.to_path_buf(),
            bytes: payload.map(<[u8]>::len).unwrap_or(0),
            newlines: payload
                .map(|b| b.iter().filter(|c| **c == b'\n').count())
                .unwrap_or(0),
        });
        Ok(())
    }
}

/// Write handle into a [`SimFs`] file.
struct SimFile {
    fs: SimFs,
    path: PathBuf,
}

impl Write for SimFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut s = self.fs.state.lock();
        SimFs::gate(&mut s, IoOp::Write, &self.path, Some(buf))?;
        let f = s
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed"))?;
        f.volatile.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Application-buffer flush: SimFile writes straight into the
        // simulated page cache, so there is nothing to move.
        if self.fs.state.lock().crashed {
            return Err(SimFs::err_crashed());
        }
        Ok(())
    }
}

impl FsFile for SimFile {
    fn sync_data(&mut self) -> io::Result<()> {
        let mut s = self.fs.state.lock();
        SimFs::gate(&mut s, IoOp::Sync, &self.path, None)?;
        let dropped = s
            .plan
            .drop_sync_on
            .as_ref()
            .is_some_and(|needle| self.path.to_string_lossy().contains(needle.as_str()));
        if !dropped {
            if let Some(f) = s.files.get_mut(&self.path) {
                let tail = std::mem::take(&mut f.volatile);
                f.durable.extend_from_slice(&tail);
            }
        }
        Ok(())
    }
}

impl FileSystem for SimFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        if s.crashed {
            return Err(Self::err_crashed());
        }
        // Directory creation is modelled as free and durable: it never
        // advances the crash clock (real systems fsync the parent dir; we
        // document the simplification instead of simulating it).
        let mut p = path.to_path_buf();
        loop {
            s.dirs.insert(p.clone());
            match p.parent() {
                Some(parent) if parent != Path::new("") => p = parent.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        let mut s = self.state.lock();
        if s.crashed {
            return Err(Self::err_crashed());
        }
        if !s.files.contains_key(path) {
            SimFs::gate(&mut s, IoOp::Create, path, None)?;
            s.files.insert(path.to_path_buf(), SimFileState::default());
        }
        Ok(Box::new(SimFile {
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn FsFile>> {
        let mut s = self.state.lock();
        SimFs::gate(&mut s, IoOp::Create, path, None)?;
        s.files.insert(path.to_path_buf(), SimFileState::default());
        Ok(Box::new(SimFile {
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.state.lock();
        if s.crashed {
            return Err(Self::err_crashed());
        }
        s.files
            .get(path)
            .map(SimFileState::visible)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{path:?}")))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        SimFs::gate(&mut s, IoOp::Rename, to, None)?;
        let f = s
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{from:?}")))?;
        s.files.insert(to.to_path_buf(), f);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        SimFs::gate(&mut s, IoOp::Remove, path, None)?;
        s.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{path:?}")))
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock();
        !s.crashed && (s.files.contains_key(path) || s.dirs.contains(path))
    }

    fn is_dir(&self, path: &Path) -> bool {
        let s = self.state.lock();
        !s.crashed && s.dirs.contains(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let s = self.state.lock();
        if s.crashed {
            return Err(Self::err_crashed());
        }
        s.files
            .get(path)
            .map(|f| (f.durable.len() + f.volatile.len()) as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{path:?}")))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut s = self.state.lock();
        SimFs::gate(&mut s, IoOp::Truncate, path, None)?;
        let f = s
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{path:?}")))?;
        let len = len as usize;
        // Truncation applies to the visible image and is made durable (the
        // WAL recovery path fsyncs after truncating).
        let mut v = f.visible();
        v.truncate(len);
        f.durable = v;
        f.volatile.clear();
        Ok(())
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.lock();
        if s.crashed {
            return Err(Self::err_crashed());
        }
        if !s.dirs.contains(path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, format!("{path:?}")));
        }
        let mut out = BTreeSet::new();
        for candidate in s.files.keys().chain(s.dirs.iter()) {
            if let Some(parent) = candidate.parent() {
                if parent == path {
                    out.insert(candidate.clone());
                }
            }
        }
        Ok(out.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn write_read_roundtrip_and_visibility() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/a/x")).unwrap();
        f.write_all(b"hello").unwrap();
        // Visible before sync, but not durable.
        assert_eq!(fs.read(&p("/a/x")).unwrap(), b"hello");
        assert_eq!(fs.durable_bytes(&p("/a/x")).unwrap(), b"");
        f.sync_data().unwrap();
        assert_eq!(fs.durable_bytes(&p("/a/x")).unwrap(), b"hello");
    }

    #[test]
    fn recover_drops_unsynced_bytes() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/x")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap();
        f.write_all(b" volatile").unwrap();
        let after = fs.recover();
        assert_eq!(after.read(&p("/x")).unwrap(), b"durable");
    }

    #[test]
    fn crash_at_op_fails_everything_after() {
        let plan = SimFaultPlan {
            crash_at_op: Some(2),
            ..Default::default()
        };
        let fs = SimFs::with_plan(plan);
        let mut f = fs.create(&p("/x")).unwrap(); // op 0
        f.write_all(b"a").unwrap(); // op 1
        assert!(f.write_all(b"b").is_err()); // op 2: crash
        assert!(fs.crashed());
        assert!(fs.read(&p("/x")).is_err());
        assert!(fs.create(&p("/y")).is_err());
    }

    #[test]
    fn torn_write_persists_prefix() {
        let plan = SimFaultPlan {
            crash_at_op: Some(3),
            torn_write_keep: Some(2),
            ..Default::default()
        };
        let fs = SimFs::with_plan(plan);
        let mut f = fs.create(&p("/x")).unwrap(); // 0
        f.write_all(b"abc").unwrap(); // 1
        f.sync_data().unwrap(); // 2
        assert!(f.write_all(b"defgh").is_err()); // 3: torn
        let after = fs.recover();
        assert_eq!(after.read(&p("/x")).unwrap(), b"abcde");
    }

    #[test]
    fn dropped_sync_loses_data_on_crash() {
        let plan = SimFaultPlan {
            drop_sync_on: Some("wal".into()),
            ..Default::default()
        };
        let fs = SimFs::with_plan(plan);
        let mut f = fs.create(&p("/db/wal.log")).unwrap();
        f.write_all(b"entry").unwrap();
        f.sync_data().unwrap(); // silently dropped
        assert_eq!(fs.read(&p("/db/wal.log")).unwrap(), b"entry"); // still visible
        let after = fs.recover();
        assert_eq!(after.read(&p("/db/wal.log")).unwrap(), b""); // gone
    }

    #[test]
    fn bit_flip_corrupts_recovered_image() {
        let plan = SimFaultPlan {
            bit_flip: Some(("blob".into(), 1)),
            ..Default::default()
        };
        let fs = SimFs::with_plan(plan);
        let mut f = fs.create(&p("/blobs/aa.blob")).unwrap();
        f.write_all(b"ABCD").unwrap();
        f.sync_data().unwrap();
        let after = fs.recover();
        assert_eq!(after.read(&p("/blobs/aa.blob")).unwrap(), b"A\x02CD");
    }

    #[test]
    fn rename_is_atomic_and_durable() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/t.tmp")).unwrap();
        f.write_all(b"x").unwrap();
        f.sync_data().unwrap();
        fs.rename(&p("/t.tmp"), &p("/t.final")).unwrap();
        let after = fs.recover();
        assert!(!after.exists(&p("/t.tmp")));
        assert_eq!(after.read(&p("/t.final")).unwrap(), b"x");
    }

    #[test]
    fn op_log_records_mutations() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/x")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap();
        fs.rename(&p("/x"), &p("/y")).unwrap();
        fs.remove_file(&p("/y")).unwrap();
        let kinds: Vec<IoOp> = fs.op_log().iter().map(|r| r.op).collect();
        assert_eq!(
            kinds,
            vec![
                IoOp::Create,
                IoOp::Write,
                IoOp::Sync,
                IoOp::Rename,
                IoOp::Remove
            ]
        );
        assert_eq!(fs.op_log()[1].bytes, 3);
    }

    #[test]
    fn list_dir_sees_children() {
        let fs = SimFs::new();
        fs.create_dir_all(&p("/root/aa")).unwrap();
        fs.create(&p("/root/aa/x.blob")).unwrap();
        fs.create(&p("/root/aa/y.blob")).unwrap();
        let entries = fs.list_dir(&p("/root/aa")).unwrap();
        assert_eq!(entries.len(), 2);
        let shards = fs.list_dir(&p("/root")).unwrap();
        assert_eq!(shards, vec![p("/root/aa")]);
        assert!(fs.is_dir(&p("/root/aa")));
    }

    #[test]
    fn truncate_cuts_visible_and_durable() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/w")).unwrap();
        f.write_all(b"keepdrop").unwrap();
        f.sync_data().unwrap();
        fs.truncate(&p("/w"), 4).unwrap();
        assert_eq!(fs.read(&p("/w")).unwrap(), b"keep");
        assert_eq!(fs.recover().read(&p("/w")).unwrap(), b"keep");
    }
}
