//! Constraint-based queries over metadata tables.
//!
//! Gallery's search API (paper §4.1, Listing 5) expresses queries as lists
//! of `(field, operator, value)` constraints, implicitly conjoined. The
//! planner picks an index for the most selective indexable constraint and
//! filters residual constraints row-by-row.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Bound;

/// Comparison operator usable in a search constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Substring match on string columns.
    Contains,
    /// Prefix match on string columns.
    StartsWith,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "==",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Contains => "contains",
            Op::StartsWith => "starts_with",
        };
        f.write_str(s)
    }
}

impl Op {
    /// Evaluate `lhs OP rhs`. Null never satisfies any predicate except
    /// `Ne` against a non-null value (SQL-ish semantics kept simple).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if lhs.is_null() {
            return self == Op::Ne && !rhs.is_null();
        }
        match self {
            Op::Eq => lhs == rhs,
            Op::Ne => lhs != rhs,
            Op::Lt => lhs < rhs,
            Op::Le => lhs <= rhs,
            Op::Gt => lhs > rhs,
            Op::Ge => lhs >= rhs,
            Op::Contains => match (lhs.as_str(), rhs.as_str()) {
                (Some(a), Some(b)) => a.contains(b),
                _ => false,
            },
            Op::StartsWith => match (lhs.as_str(), rhs.as_str()) {
                (Some(a), Some(b)) => a.starts_with(b),
                _ => false,
            },
        }
    }

    /// Whether an equality (hash or btree) index can serve this operator.
    pub fn index_eq_usable(self) -> bool {
        self == Op::Eq
    }

    /// Whether an ordered index can serve this operator via a range scan.
    pub fn index_range_usable(self) -> bool {
        matches!(self, Op::Eq | Op::Lt | Op::Le | Op::Gt | Op::Ge)
    }

    /// Bounds for a btree range scan implementing this operator.
    pub fn bounds(self, v: &Value) -> Option<(Bound<&Value>, Bound<&Value>)> {
        match self {
            Op::Eq => Some((Bound::Included(v), Bound::Included(v))),
            Op::Lt => Some((Bound::Unbounded, Bound::Excluded(v))),
            Op::Le => Some((Bound::Unbounded, Bound::Included(v))),
            Op::Gt => Some((Bound::Excluded(v), Bound::Unbounded)),
            Op::Ge => Some((Bound::Included(v), Bound::Unbounded)),
            _ => None,
        }
    }
}

/// One `(field, operator, value)` constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    pub field: String,
    pub op: Op,
    pub value: Value,
}

impl Constraint {
    pub fn new(field: impl Into<String>, op: Op, value: impl Into<Value>) -> Self {
        Constraint {
            field: field.into(),
            op,
            value: value.into(),
        }
    }

    pub fn eq(field: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(field, Op::Eq, value)
    }

    pub fn lt(field: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(field, Op::Lt, value)
    }

    pub fn gt(field: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(field, Op::Gt, value)
    }

    pub fn le(field: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(field, Op::Le, value)
    }

    pub fn ge(field: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(field, Op::Ge, value)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.field, self.op, self.value)
    }
}

/// A conjunctive query: all constraints must hold. `limit` bounds the number
/// of returned rows; `order_by` optionally sorts by one column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Query {
    pub constraints: Vec<Constraint>,
    pub order_by: Option<OrderBy>,
    pub limit: Option<usize>,
    /// When false (the default) rows whose `deprecated` column is true are
    /// skipped, implementing §3.7 "Model Deprecation": deprecated entries
    /// are flagged, not deleted, and skipped during fetching/searching.
    pub include_deprecated: bool,
}

/// Sort specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderBy {
    pub field: String,
    pub descending: bool,
}

impl Query {
    pub fn new(constraints: Vec<Constraint>) -> Self {
        Query {
            constraints,
            ..Default::default()
        }
    }

    pub fn all() -> Self {
        Query::default()
    }

    pub fn and(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    pub fn order_by(mut self, field: impl Into<String>, descending: bool) -> Self {
        self.order_by = Some(OrderBy {
            field: field.into(),
            descending,
        });
        self
    }

    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    pub fn with_deprecated(mut self) -> Self {
        self.include_deprecated = true;
        self
    }
}

/// How the planner decided to execute a query — the plan-shape half of an
/// [`Explain`], also surfaced on its own for tests, benchmarks, and the E9
/// scale experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPath {
    /// Full table scan, filtering every row.
    FullScan,
    /// Served by the index on the named column; residual constraints filtered.
    IndexEq { column: String },
    /// Range scan over the ordered index on the named column.
    IndexRange { column: String },
    /// Direct primary-key lookup.
    PrimaryKey,
}

impl AccessPath {
    /// Bounded-cardinality shape label for per-shape metrics: one of
    /// `pk`, `index_eq`, `index_range`, `full_scan`.
    pub fn shape(&self) -> &'static str {
        match self {
            AccessPath::FullScan => "full_scan",
            AccessPath::IndexEq { .. } => "index_eq",
            AccessPath::IndexRange { .. } => "index_range",
            AccessPath::PrimaryKey => "pk",
        }
    }
}

/// EXPLAIN artifact for one executed query: the chosen access path, the
/// planner's row estimate vs. what the scan actually touched, how much of
/// the scan came from merging unindexed deferred-index tails, and the
/// per-stage timings. Produced by `Table::execute_explain` and recorded
/// into the slow-query ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explain {
    /// The plan the planner chose.
    pub path: AccessPath,
    /// Rows the planner expected the access path to yield as candidates.
    pub estimated_rows: usize,
    /// Candidate rows the executor actually examined (before residual
    /// filtering).
    pub rows_scanned: usize,
    /// Rows that survived every constraint (before `limit`).
    pub matched_rows: usize,
    /// Of `rows_scanned`, how many came from per-stripe unindexed tails
    /// merged on top of the index (deferred secondary-index maintenance).
    /// Always 0 for `PrimaryKey` and `FullScan`.
    pub tail_merge_rows: usize,
    /// Time spent choosing the plan, in milliseconds.
    pub plan_ms: f64,
    /// Time spent collecting and filtering candidates, in milliseconds.
    pub scan_ms: f64,
    /// Time spent ordering/truncating the result, in milliseconds.
    pub sort_ms: f64,
}

impl Explain {
    /// Bounded-cardinality shape label, forwarded from the access path.
    pub fn shape(&self) -> &'static str {
        self.path.shape()
    }

    /// Total executor time (plan + scan + sort), in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.plan_ms + self.scan_ms + self.sort_ms
    }

    /// Multi-line human-readable rendering, used by `gallery explain` and
    /// the slow-query log.
    pub fn render(&self) -> String {
        let path = match &self.path {
            AccessPath::FullScan => "FullScan".to_string(),
            AccessPath::IndexEq { column } => format!("IndexEq({column})"),
            AccessPath::IndexRange { column } => format!("IndexRange({column})"),
            AccessPath::PrimaryKey => "PrimaryKey".to_string(),
        };
        format!(
            "path: {path} [{}]\n\
             rows: estimated={} scanned={} matched={} tail_merge={}\n\
             timings_ms: plan={:.3} scan={:.3} sort={:.3} total={:.3}",
            self.shape(),
            self.estimated_rows,
            self.rows_scanned,
            self.matched_rows,
            self.tail_merge_rows,
            self.plan_ms,
            self.scan_ms,
            self.sort_ms,
            self.total_ms(),
        )
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_eval_basics() {
        assert!(Op::Eq.eval(&Value::Int(1), &Value::Int(1)));
        assert!(Op::Ne.eval(&Value::Int(1), &Value::Int(2)));
        assert!(Op::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(Op::Ge.eval(&Value::Float(2.0), &Value::Int(2)));
        assert!(Op::Contains.eval(&Value::from("hello"), &Value::from("ell")));
        assert!(Op::StartsWith.eval(&Value::from("hello"), &Value::from("he")));
        assert!(!Op::StartsWith.eval(&Value::from("hello"), &Value::from("lo")));
    }

    #[test]
    fn null_semantics() {
        assert!(!Op::Eq.eval(&Value::Null, &Value::Null));
        assert!(!Op::Lt.eval(&Value::Null, &Value::Int(1)));
        assert!(Op::Ne.eval(&Value::Null, &Value::Int(1)));
        assert!(!Op::Ne.eval(&Value::Null, &Value::Null));
    }

    #[test]
    fn op_index_usability() {
        assert!(Op::Eq.index_eq_usable());
        assert!(!Op::Lt.index_eq_usable());
        assert!(Op::Lt.index_range_usable());
        assert!(!Op::Contains.index_range_usable());
    }

    #[test]
    fn bounds_for_range_ops() {
        let v = Value::Int(5);
        assert!(Op::Eq.bounds(&v).is_some());
        assert!(Op::Contains.bounds(&v).is_none());
        let (lo, hi) = Op::Gt.bounds(&v).unwrap();
        assert_eq!(lo, Bound::Excluded(&v));
        assert_eq!(hi, Bound::Unbounded);
    }

    #[test]
    fn explain_shapes_and_render() {
        assert_eq!(AccessPath::PrimaryKey.shape(), "pk");
        assert_eq!(
            AccessPath::IndexEq { column: "c".into() }.shape(),
            "index_eq"
        );
        assert_eq!(
            AccessPath::IndexRange { column: "c".into() }.shape(),
            "index_range"
        );
        assert_eq!(AccessPath::FullScan.shape(), "full_scan");
        let ex = Explain {
            path: AccessPath::IndexEq {
                column: "city".into(),
            },
            estimated_rows: 12,
            rows_scanned: 10,
            matched_rows: 7,
            tail_merge_rows: 2,
            plan_ms: 0.5,
            scan_ms: 1.5,
            sort_ms: 0.25,
        };
        assert_eq!(ex.shape(), "index_eq");
        assert!((ex.total_ms() - 2.25).abs() < 1e-9);
        let text = ex.render();
        assert!(text.contains("IndexEq(city)"), "{text}");
        assert!(text.contains("estimated=12 scanned=10"), "{text}");
        assert!(text.contains("tail_merge=2"), "{text}");
        assert_eq!(format!("{ex}"), text);
    }

    #[test]
    fn query_builder() {
        let q = Query::all()
            .and(Constraint::eq("name", "rf"))
            .and(Constraint::lt("bias", 0.25))
            .order_by("created", true)
            .limit(10);
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.limit, Some(10));
        assert!(q.order_by.as_ref().unwrap().descending);
        assert!(!q.include_deprecated);
    }
}
