//! Simulated backend latency.
//!
//! The blob store stands in for S3/HDFS; those systems have per-request
//! latencies orders of magnitude above an in-process map. To make cache
//! experiments (E9/ablation 5) meaningful, backends can be configured with
//! a synthetic latency model that is *accounted* (cheap, deterministic)
//! rather than slept, plus an optional real-sleep mode for wall-clock
//! demonstrations.
//!
//! Accounting lives in a telemetry [`Histogram`]: the meter owns a
//! standalone one by default and can be re-pointed at a registry-minted
//! histogram via [`LatencyMeter::attach_histogram`], so the simulated
//! latency distribution shows up in `render_text()` with p50/p95/p99
//! instead of living in a private tally nobody can export.

use gallery_sync::locks::OrderedMutex;
use gallery_sync::rank;
use gallery_telemetry::{default_duration_buckets_ms, Histogram};
use std::sync::Arc;
use std::time::Duration;

/// Latency model for a simulated remote backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-request cost.
    pub per_request: Duration,
    /// Additional cost per byte transferred.
    pub per_byte_ns: f64,
    /// If true, actually sleep; otherwise only account the cost.
    pub real_sleep: bool,
}

impl LatencyModel {
    /// Zero-cost model (default for unit tests).
    pub fn instant() -> Self {
        LatencyModel {
            per_request: Duration::ZERO,
            per_byte_ns: 0.0,
            real_sleep: false,
        }
    }

    /// A model loosely shaped like an S3 GET/PUT from the same region:
    /// ~15 ms per request plus ~10 ns/byte (≈100 MB/s).
    pub fn object_store_like() -> Self {
        LatencyModel {
            per_request: Duration::from_millis(15),
            per_byte_ns: 10.0,
            real_sleep: false,
        }
    }

    /// Cost of one request moving `bytes` bytes.
    pub fn cost(&self, bytes: usize) -> Duration {
        self.per_request + Duration::from_nanos((self.per_byte_ns * bytes as f64) as u64)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::instant()
    }
}

/// Shared accumulator of simulated time spent in a backend.
///
/// The histogram is the single source of truth; `total()`/`requests()`
/// subtract a baseline snapshot so [`LatencyMeter::reset`] keeps working
/// even though registry histograms are append-only.
#[derive(Debug, Clone)]
pub struct LatencyMeter {
    inner: Arc<OrderedMutex<MeterInner>>,
}

#[derive(Debug)]
struct MeterInner {
    hist: Arc<Histogram>,
    base_count: u64,
    base_sum_ms: f64,
}

impl Default for LatencyMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyMeter {
    pub fn new() -> Self {
        LatencyMeter {
            inner: Arc::new(OrderedMutex::new(
                rank::LATENCY_METER,
                MeterInner {
                    hist: Histogram::standalone(default_duration_buckets_ms()),
                    base_count: 0,
                    base_sum_ms: 0.0,
                },
            )),
        }
    }

    /// Re-point accounting at `hist` (typically registry-minted, e.g.
    /// `gallery_backend_sim_latency_ms`). Prior charges stay behind in the
    /// old histogram; the meter reads as freshly reset.
    pub fn attach_histogram(&self, hist: Arc<Histogram>) {
        let mut inner = self.inner.lock();
        inner.base_count = hist.count();
        inner.base_sum_ms = hist.sum();
        inner.hist = hist;
    }

    /// The histogram currently receiving charges.
    pub fn histogram(&self) -> Arc<Histogram> {
        self.inner.lock().hist.clone()
    }

    /// Charge one request of `bytes` bytes under `model`.
    pub fn charge(&self, model: &LatencyModel, bytes: usize) {
        let cost = model.cost(bytes);
        self.inner.lock().hist.observe(cost.as_nanos() as f64 / 1e6);
        if model.real_sleep && !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }

    /// Total simulated time charged since construction or the last reset.
    pub fn total(&self) -> Duration {
        let inner = self.inner.lock();
        let ms = (inner.hist.sum() - inner.base_sum_ms).max(0.0);
        Duration::from_nanos((ms * 1e6).round() as u64)
    }

    pub fn requests(&self) -> u64 {
        let inner = self.inner.lock();
        inner.hist.count().saturating_sub(inner.base_count)
    }

    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.base_count = inner.hist.count();
        inner.base_sum_ms = inner.hist.sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_costs_nothing() {
        let m = LatencyModel::instant();
        assert_eq!(m.cost(1_000_000), Duration::ZERO);
    }

    #[test]
    fn cost_scales_with_bytes() {
        let m = LatencyModel {
            per_request: Duration::from_millis(1),
            per_byte_ns: 100.0,
            real_sleep: false,
        };
        assert_eq!(m.cost(0), Duration::from_millis(1));
        assert_eq!(m.cost(10_000), Duration::from_millis(2));
    }

    #[test]
    fn meter_accumulates() {
        let meter = LatencyMeter::new();
        let model = LatencyModel {
            per_request: Duration::from_micros(10),
            per_byte_ns: 0.0,
            real_sleep: false,
        };
        meter.charge(&model, 0);
        meter.charge(&model, 0);
        assert_eq!(meter.total(), Duration::from_micros(20));
        assert_eq!(meter.requests(), 2);
        meter.reset();
        assert_eq!(meter.requests(), 0);
        assert_eq!(meter.total(), Duration::ZERO);
    }

    #[test]
    fn meter_is_shared_across_clones() {
        let meter = LatencyMeter::new();
        let clone = meter.clone();
        clone.charge(
            &LatencyModel {
                per_request: Duration::from_micros(5),
                per_byte_ns: 0.0,
                real_sleep: false,
            },
            0,
        );
        assert_eq!(meter.requests(), 1);
    }

    #[test]
    fn attached_histogram_receives_charges() {
        let reg = gallery_telemetry::Registry::new();
        let hist = reg.duration_histogram("sim_latency_ms", &[]);
        let meter = LatencyMeter::new();
        let model = LatencyModel {
            per_request: Duration::from_millis(4),
            per_byte_ns: 0.0,
            real_sleep: false,
        };
        meter.charge(&model, 0); // lands in the standalone histogram
        meter.attach_histogram(hist.clone());
        meter.charge(&model, 0);
        meter.charge(&model, 0);
        assert_eq!(hist.count(), 2);
        assert_eq!(meter.requests(), 2, "pre-attach charge left behind");
        assert_eq!(meter.total(), Duration::from_millis(8));
        // Quantiles come for free once accounting is a histogram.
        assert!(hist.quantile(0.5).unwrap() <= 5.0);
    }
}
