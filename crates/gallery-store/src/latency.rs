//! Simulated backend latency.
//!
//! The blob store stands in for S3/HDFS; those systems have per-request
//! latencies orders of magnitude above an in-process map. To make cache
//! experiments (E9/ablation 5) meaningful, backends can be configured with
//! a synthetic latency model that is *accounted* (cheap, deterministic)
//! rather than slept, plus an optional real-sleep mode for wall-clock
//! demonstrations.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Latency model for a simulated remote backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-request cost.
    pub per_request: Duration,
    /// Additional cost per byte transferred.
    pub per_byte_ns: f64,
    /// If true, actually sleep; otherwise only account the cost.
    pub real_sleep: bool,
}

impl LatencyModel {
    /// Zero-cost model (default for unit tests).
    pub fn instant() -> Self {
        LatencyModel {
            per_request: Duration::ZERO,
            per_byte_ns: 0.0,
            real_sleep: false,
        }
    }

    /// A model loosely shaped like an S3 GET/PUT from the same region:
    /// ~15 ms per request plus ~10 ns/byte (≈100 MB/s).
    pub fn object_store_like() -> Self {
        LatencyModel {
            per_request: Duration::from_millis(15),
            per_byte_ns: 10.0,
            real_sleep: false,
        }
    }

    /// Cost of one request moving `bytes` bytes.
    pub fn cost(&self, bytes: usize) -> Duration {
        self.per_request + Duration::from_nanos((self.per_byte_ns * bytes as f64) as u64)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::instant()
    }
}

/// Shared accumulator of simulated time spent in a backend.
#[derive(Debug, Clone, Default)]
pub struct LatencyMeter {
    inner: Arc<Mutex<MeterInner>>,
}

#[derive(Debug, Default)]
struct MeterInner {
    total: Duration,
    requests: u64,
}

impl LatencyMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one request of `bytes` bytes under `model`.
    pub fn charge(&self, model: &LatencyModel, bytes: usize) {
        let cost = model.cost(bytes);
        {
            let mut inner = self.inner.lock();
            inner.total += cost;
            inner.requests += 1;
        }
        if model.real_sleep && !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }

    /// Total simulated time charged.
    pub fn total(&self) -> Duration {
        self.inner.lock().total
    }

    pub fn requests(&self) -> u64 {
        self.inner.lock().requests
    }

    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.total = Duration::ZERO;
        inner.requests = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_costs_nothing() {
        let m = LatencyModel::instant();
        assert_eq!(m.cost(1_000_000), Duration::ZERO);
    }

    #[test]
    fn cost_scales_with_bytes() {
        let m = LatencyModel {
            per_request: Duration::from_millis(1),
            per_byte_ns: 100.0,
            real_sleep: false,
        };
        assert_eq!(m.cost(0), Duration::from_millis(1));
        assert_eq!(m.cost(10_000), Duration::from_millis(2));
    }

    #[test]
    fn meter_accumulates() {
        let meter = LatencyMeter::new();
        let model = LatencyModel {
            per_request: Duration::from_micros(10),
            per_byte_ns: 0.0,
            real_sleep: false,
        };
        meter.charge(&model, 0);
        meter.charge(&model, 0);
        assert_eq!(meter.total(), Duration::from_micros(20));
        assert_eq!(meter.requests(), 2);
        meter.reset();
        assert_eq!(meter.requests(), 0);
    }

    #[test]
    fn meter_is_shared_across_clones() {
        let meter = LatencyMeter::new();
        let clone = meter.clone();
        clone.charge(
            &LatencyModel {
                per_request: Duration::from_micros(5),
                per_byte_ns: 0.0,
                real_sleep: false,
            },
            0,
        );
        assert_eq!(meter.requests(), 1);
    }
}
