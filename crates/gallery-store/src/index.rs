//! Secondary indexes over metadata tables.
//!
//! Two kinds are supported, mirroring what a MySQL deployment gives Gallery
//! (§3.5 "model metadata searchability"): hash indexes for equality lookups
//! and ordered (btree) indexes for range predicates such as
//! `created_time > t` or `metricValue < 0.25`.
//!
//! Indexes are maintained *deferred*: [`crate::table::Table`] accumulates
//! newly inserted rows as an un-indexed tail per stripe and applies them
//! here in one pass ([`Index::insert_many`]) once the tail crosses the
//! configured batch size. Index lookups therefore under-approximate — they
//! may miss tail rows, never return stale ones for inserts — and the table
//! merges the un-indexed tail back into every index-driven access path, so
//! query results stay exact at all times.

use crate::value::Value;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

/// Row identifiers are dense offsets into the table's row arena.
pub type RowId = u32;

/// A hash index: value -> set of row ids.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<RowId>>,
}

impl HashIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, value: Value, row: RowId) {
        self.map.entry(value).or_default().push(row);
    }

    pub fn get(&self, value: &Value) -> &[RowId] {
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    pub fn remove(&mut self, value: &Value, row: RowId) {
        if let Some(rows) = self.map.get_mut(value) {
            rows.retain(|r| *r != row);
            if rows.is_empty() {
                self.map.remove(value);
            }
        }
    }
}

/// An ordered index: value -> set of row ids, supporting range scans.
#[derive(Debug, Default)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<RowId>>,
}

impl BTreeIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, value: Value, row: RowId) {
        self.map.entry(value).or_default().push(row);
    }

    pub fn get(&self, value: &Value) -> &[RowId] {
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn remove(&mut self, value: &Value, row: RowId) {
        if let Some(rows) = self.map.get_mut(value) {
            rows.retain(|r| *r != row);
            if rows.is_empty() {
                self.map.remove(value);
            }
        }
    }

    /// Collect row ids whose indexed value lies within the given bounds.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<RowId> {
        let mut out = Vec::new();
        for (_, rows) in self.map.range::<Value, _>((lo, hi)) {
            out.extend_from_slice(rows);
        }
        out
    }

    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    /// Smallest and largest indexed values, if any.
    pub fn min_max(&self) -> Option<(&Value, &Value)> {
        let min = self.map.keys().next()?;
        let max = self.map.keys().next_back()?;
        Some((min, max))
    }
}

/// Either kind of index, chosen per-column by the schema.
#[derive(Debug)]
pub enum Index {
    Hash(HashIndex),
    BTree(BTreeIndex),
}

impl Index {
    pub fn insert(&mut self, value: Value, row: RowId) {
        match self {
            Index::Hash(ix) => ix.insert(value, row),
            Index::BTree(ix) => ix.insert(value, row),
        }
    }

    pub fn remove(&mut self, value: &Value, row: RowId) {
        match self {
            Index::Hash(ix) => ix.remove(value, row),
            Index::BTree(ix) => ix.remove(value, row),
        }
    }

    pub fn lookup_eq(&self, value: &Value) -> Vec<RowId> {
        match self {
            Index::Hash(ix) => ix.get(value).to_vec(),
            Index::BTree(ix) => ix.get(value).to_vec(),
        }
    }

    /// Number of rows an equality lookup would return (planner cost hint).
    pub fn eq_bucket_len(&self, value: &Value) -> usize {
        match self {
            Index::Hash(ix) => ix.get(value).len(),
            Index::BTree(ix) => ix.get(value).len(),
        }
    }

    /// Range lookup; only ordered indexes support this.
    pub fn lookup_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Option<Vec<RowId>> {
        match self {
            Index::Hash(_) => None,
            Index::BTree(ix) => Some(ix.range(lo, hi)),
        }
    }

    pub fn supports_range(&self) -> bool {
        matches!(self, Index::BTree(_))
    }

    /// Apply a batch of pending entries in one pass — the flush half of
    /// deferred index maintenance. Equivalent to `insert` per entry but
    /// hashes/rebalances against a warm map in a tight loop.
    pub fn insert_many<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = (Value, RowId)>,
    {
        match self {
            Index::Hash(ix) => {
                for (value, row) in entries {
                    ix.insert(value, row);
                }
            }
            Index::BTree(ix) => {
                for (value, row) in entries {
                    ix.insert(value, row);
                }
            }
        }
    }
}

/// Deduplicate row ids while preserving first-seen order.
pub fn dedup_rows(rows: Vec<RowId>) -> Vec<RowId> {
    let mut seen = HashSet::with_capacity(rows.len());
    rows.into_iter().filter(|r| seen.insert(*r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_equality() {
        let mut ix = HashIndex::new();
        ix.insert(Value::from("a"), 0);
        ix.insert(Value::from("a"), 1);
        ix.insert(Value::from("b"), 2);
        assert_eq!(ix.get(&Value::from("a")), &[0, 1]);
        assert_eq!(ix.get(&Value::from("b")), &[2]);
        assert!(ix.get(&Value::from("c")).is_empty());
        assert_eq!(ix.distinct_values(), 2);
    }

    #[test]
    fn hash_index_remove() {
        let mut ix = HashIndex::new();
        ix.insert(Value::from("a"), 0);
        ix.insert(Value::from("a"), 1);
        ix.remove(&Value::from("a"), 0);
        assert_eq!(ix.get(&Value::from("a")), &[1]);
        ix.remove(&Value::from("a"), 1);
        assert_eq!(ix.distinct_values(), 0);
    }

    #[test]
    fn btree_index_range() {
        let mut ix = BTreeIndex::new();
        for i in 0..10i64 {
            ix.insert(Value::Int(i), i as RowId);
        }
        let rows = ix.range(
            Bound::Included(&Value::Int(3)),
            Bound::Excluded(&Value::Int(7)),
        );
        assert_eq!(rows, vec![3, 4, 5, 6]);
        let rows = ix.range(Bound::Unbounded, Bound::Included(&Value::Int(1)));
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn btree_min_max() {
        let mut ix = BTreeIndex::new();
        ix.insert(Value::Int(5), 0);
        ix.insert(Value::Int(2), 1);
        let (min, max) = ix.min_max().unwrap();
        assert_eq!(min, &Value::Int(2));
        assert_eq!(max, &Value::Int(5));
    }

    #[test]
    fn index_enum_dispatch() {
        let mut ix = Index::Hash(HashIndex::new());
        ix.insert(Value::Int(1), 7);
        assert_eq!(ix.lookup_eq(&Value::Int(1)), vec![7]);
        assert!(ix
            .lookup_range(Bound::Unbounded, Bound::Unbounded)
            .is_none());
        assert!(!ix.supports_range());

        let mut ix = Index::BTree(BTreeIndex::new());
        ix.insert(Value::Int(1), 7);
        assert!(ix.supports_range());
        assert_eq!(
            ix.lookup_range(Bound::Unbounded, Bound::Unbounded).unwrap(),
            vec![7]
        );
    }

    #[test]
    fn dedup_preserves_order() {
        assert_eq!(dedup_rows(vec![3, 1, 3, 2, 1]), vec![3, 1, 2]);
    }
}
