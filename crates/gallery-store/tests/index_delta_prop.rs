//! Property tests for deferred secondary-index maintenance.
//!
//! The store batches index updates per stripe and merges the un-indexed
//! tail back into reads, so deferral must be *observationally invisible*:
//! for any sequence of inserts and flag writes, every query's results with
//! a pending index delta are byte-identical (JSON-serialized) to the same
//! query's results after a forced flush — and to an eager store
//! (`index_batch = 1`) that indexed every row at insert time.

use gallery_store::meta::StoreConfig;
use gallery_store::{
    ColumnDef, Constraint, MetadataStore, Op, Query, Record, TableSchema, ValueType,
};
use proptest::prelude::*;

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        "id",
        vec![
            ColumnDef::new("id", ValueType::Str),
            ColumnDef::new("group", ValueType::Str).hash_indexed(),
            ColumnDef::new("score", ValueType::Int).btree_indexed(),
            ColumnDef::new("deprecated", ValueType::Bool).nullable(),
        ],
    )
    .unwrap()
}

/// One step of a generated history.
#[derive(Debug, Clone)]
enum Step {
    /// Insert row `n` (ids are dense, so `n` = current row count).
    Insert { group: u8, score: i64 },
    /// Batch-insert rows through `insert_many` (lands as one commit).
    InsertMany { rows: Vec<(u8, i64)> },
    /// Flip `deprecated` on row `pick % count`, if any rows exist.
    Deprecate { pick: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..5, -50i64..50).prop_map(|(group, score)| Step::Insert { group, score }),
        (0u8..5, -50i64..50).prop_map(|(group, score)| Step::Insert { group, score }),
        proptest::collection::vec((0u8..5, -50i64..50), 2..6)
            .prop_map(|rows| Step::InsertMany { rows }),
        (0usize..1000).prop_map(|pick| Step::Deprecate { pick }),
    ]
}

fn apply(store: &MetadataStore, steps: &[Step]) {
    let mut count = 0usize;
    for step in steps {
        match step {
            Step::Insert { group, score } => {
                store
                    .insert(
                        "t",
                        Record::new()
                            .set("id", format!("r{count:04}"))
                            .set("group", format!("g{group}"))
                            .set("score", *score),
                    )
                    .unwrap();
                count += 1;
            }
            Step::InsertMany { rows } => {
                let records: Vec<Record> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, (group, score))| {
                        Record::new()
                            .set("id", format!("r{:04}", count + i))
                            .set("group", format!("g{group}"))
                            .set("score", *score)
                    })
                    .collect();
                count += records.len();
                store.insert_many("t", records).unwrap();
            }
            Step::Deprecate { pick } => {
                if count > 0 {
                    store
                        .set_flag("t", &format!("r{:04}", pick % count), "deprecated", true)
                        .unwrap();
                }
            }
        }
    }
}

/// The query suite exercised against every store state: hash-index
/// equality, btree ranges, combinations, ordering, limits, and the
/// deprecated filter (whose flag writes race the pending delta).
fn queries() -> Vec<Query> {
    let mut qs = Vec::new();
    for g in 0..5u8 {
        qs.push(Query::all().and(Constraint::eq("group", format!("g{g}"))));
        qs.push(
            Query::all()
                .and(Constraint::eq("group", format!("g{g}")))
                .with_deprecated(),
        );
    }
    for threshold in [-25i64, 0, 25] {
        qs.push(Query::all().and(Constraint::new("score", Op::Ge, threshold)));
        qs.push(
            Query::all()
                .and(Constraint::new("score", Op::Lt, threshold))
                .with_deprecated(),
        );
    }
    qs.push(
        Query::all()
            .and(Constraint::eq("group", "g2"))
            .and(Constraint::new("score", Op::Ge, 0i64))
            .with_deprecated(),
    );
    qs.push(
        Query::all()
            .with_deprecated()
            .order_by("score", true)
            .limit(7),
    );
    qs
}

/// Serialize results so the comparison is byte-identical, not just
/// structurally equal.
fn observe(store: &MetadataStore) -> Vec<String> {
    queries()
        .iter()
        .map(|q| {
            let (rows, path) = store.query_explain("t", q).unwrap();
            format!("{path:?}:{}", serde_json::to_string(&rows).unwrap())
        })
        .collect()
}

/// Results only (access paths will legitimately differ between deferred
/// and eager stores once deltas change planner cost estimates).
fn observe_rows(store: &MetadataStore) -> Vec<String> {
    queries()
        .iter()
        .map(|q| serde_json::to_string(&store.query("t", q).unwrap()).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pending-delta reads == post-flush reads, byte for byte, and both ==
    /// an eager store's reads.
    #[test]
    fn deferred_index_delta_is_invisible(steps in proptest::collection::vec(step_strategy(), 1..40)) {
        // Deferred: nothing auto-flushes within this test's row counts.
        let deferred = MetadataStore::in_memory_with_config(StoreConfig {
            index_batch: usize::MAX,
            ..StoreConfig::default()
        });
        deferred.create_table(schema()).unwrap();
        apply(&deferred, &steps);

        // Eager: every insert indexes immediately (the old write path).
        let eager = MetadataStore::in_memory_with_config(StoreConfig {
            index_batch: 1,
            ..StoreConfig::default()
        });
        eager.create_table(schema()).unwrap();
        apply(&eager, &steps);

        let pending = observe(&deferred);
        prop_assert_eq!(observe_rows(&deferred), observe_rows(&eager),
            "deferred store disagrees with eager store");

        let applied = deferred.flush_index_deltas();
        let flushed = observe(&deferred);
        prop_assert_eq!(&pending, &flushed,
            "flushing the index delta changed query results (applied {} rows)", applied);
    }

    /// Auto-flush thresholds mid-history are equally invisible: a tiny
    /// index_batch makes stripes flush at arbitrary points between steps.
    #[test]
    fn auto_flush_boundaries_are_invisible(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        batch in 1usize..8,
    ) {
        let auto = MetadataStore::in_memory_with_config(StoreConfig {
            index_batch: batch,
            ..StoreConfig::default()
        });
        auto.create_table(schema()).unwrap();
        apply(&auto, &steps);

        let eager = MetadataStore::in_memory_with_config(StoreConfig {
            index_batch: 1,
            ..StoreConfig::default()
        });
        eager.create_table(schema()).unwrap();
        apply(&eager, &steps);

        prop_assert_eq!(observe_rows(&auto), observe_rows(&eager));
    }
}
