//! End-to-end telemetry over the storage layer: an isolated `Telemetry`
//! bundle wired through DAL, cache, and WAL must expose every path in
//! `render_text()` and carry degraded-read / eviction / flush events.

use bytes::Bytes;
use gallery_store::blob::cache::CachedBlobStore;
use gallery_store::blob::memory::MemoryBlobStore;
use gallery_store::fault::{sites, FaultPlan};
use gallery_store::telemetry::{kinds, parse_exposition, Telemetry};
use gallery_store::{
    ColumnDef, Dal, MetadataStore, Query, Record, SyncPolicy, TableSchema, ValueType,
};
use std::sync::Arc;

fn schema() -> TableSchema {
    TableSchema::new(
        "instances",
        "id",
        vec![
            ColumnDef::new("id", ValueType::Str),
            ColumnDef::new("blob_location", ValueType::Str).nullable(),
            ColumnDef::new("deprecated", ValueType::Bool).nullable(),
        ],
    )
    .unwrap()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gallery-telem-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn storage_paths_land_in_one_registry() {
    let telemetry = Telemetry::new();
    let dir = tmp("paths");
    let meta = MetadataStore::durable(dir.join("wal.log"), SyncPolicy::Always)
        .unwrap()
        .with_telemetry(Arc::clone(&telemetry));
    let backend = Arc::new(MemoryBlobStore::new());
    backend.meter().attach_histogram(
        telemetry
            .registry()
            .duration_histogram("gallery_backend_sim_latency_ms", &[]),
    );
    let cache = Arc::new(CachedBlobStore::new(backend, 256).with_telemetry(Arc::clone(&telemetry)));
    let dal = Dal::new(Arc::new(meta), cache.clone()).with_telemetry(Arc::clone(&telemetry));
    dal.create_table(schema()).unwrap();

    // Exercise DAL put/get/query, blob read/write, cache, WAL.
    for i in 0..4 {
        dal.put_with_blob(
            "instances",
            Record::new().set("id", format!("i{i}")),
            Bytes::from(vec![i as u8; 128]),
        )
        .unwrap();
    }
    for i in 0..4 {
        dal.fetch_blob_of("instances", &format!("i{i}")).unwrap();
    }
    dal.get("instances", "i0").unwrap();
    dal.query("instances", &Query::all()).unwrap();
    dal.set_flag("instances", "i0", "deprecated", true).unwrap();

    let reg = telemetry.registry();
    assert_eq!(
        reg.counter("gallery_dal_ops_total", &[("op", "put_with_blob")])
            .get(),
        4
    );
    assert_eq!(
        reg.counter("gallery_dal_ops_total", &[("op", "fetch_blob")])
            .get(),
        4
    );
    assert_eq!(
        reg.counter("gallery_blob_ops_total", &[("op", "write")])
            .get(),
        4
    );
    assert_eq!(
        reg.counter("gallery_blob_bytes_total", &[("op", "write")])
            .get(),
        4 * 128
    );
    // WAL: 1 create_table + 4 inserts + 1 set_flag, Always policy => as many flushes.
    assert_eq!(reg.counter("gallery_wal_appends_total", &[]).get(), 6);
    assert_eq!(reg.counter("gallery_wal_flushes_total", &[]).get(), 6);
    // Cache: 128-byte blobs under a 256-byte budget -> evictions happened,
    // and stats() reads the very same counters the registry renders.
    let stats = cache.stats();
    assert!(stats.evictions > 0);
    assert_eq!(
        reg.counter("gallery_cache_evictions_total", &[]).get(),
        stats.evictions
    );
    assert!(!telemetry.events().of_kind(kinds::CACHE_EVICT).is_empty());

    let text = telemetry.render_text();
    let summary = parse_exposition(&text).expect("exposition must lint clean");
    assert!(summary.families >= 8, "families: {}", summary.families);
    assert!(text.contains("gallery_dal_op_duration_ms_bucket"));
    assert!(text.contains("gallery_cache_bytes"));
}

#[test]
fn degraded_read_counts_and_emits_event() {
    let telemetry = Telemetry::new();
    let plan = FaultPlan::none();
    let backend = Arc::new(MemoryBlobStore::new().with_faults(plan.clone()));
    let cache = Arc::new(CachedBlobStore::new(backend, 1 << 20));
    let dal = Dal::new(Arc::new(MetadataStore::in_memory()), cache.clone())
        .with_telemetry(Arc::clone(&telemetry));
    dal.create_table(schema()).unwrap();
    dal.put_with_blob(
        "instances",
        Record::new().set("id", "i1"),
        Bytes::from_static(b"w"),
    )
    .unwrap();

    // Same facade trick as the DAL unit tests: reads fail, the cache peek
    // survives, so the degraded read must flag stale and emit an event.
    struct Down(Arc<CachedBlobStore>);
    impl gallery_store::ObjectStore for Down {
        fn put(&self, data: Bytes) -> gallery_store::Result<gallery_store::BlobInfo> {
            self.0.put(data)
        }
        fn get(&self, _location: &gallery_store::BlobLocation) -> gallery_store::Result<Bytes> {
            Err(gallery_store::StoreError::Io("backend unreachable".into()))
        }
        fn get_cached_only(&self, location: &gallery_store::BlobLocation) -> Option<Bytes> {
            self.0.get_cached_only(location)
        }
        fn contains(&self, location: &gallery_store::BlobLocation) -> bool {
            self.0.contains(location)
        }
        fn blob_count(&self) -> usize {
            self.0.blob_count()
        }
        fn total_bytes(&self) -> u64 {
            self.0.total_bytes()
        }
        fn list(&self) -> Vec<gallery_store::BlobLocation> {
            self.0.list()
        }
    }
    let down = Dal::new(Arc::clone(dal.metadata()), Arc::new(Down(cache)))
        .with_telemetry(Arc::clone(&telemetry));
    let read = down.fetch_blob_of_degraded("instances", "i1", 2).unwrap();
    assert!(read.stale);

    let reg = telemetry.registry();
    assert_eq!(
        reg.counter("gallery_dal_degraded_reads_total", &[]).get(),
        1
    );
    assert_eq!(reg.counter("gallery_dal_stale_reads_total", &[]).get(), 1);
    let events = telemetry.events().of_kind(kinds::DEGRADED_READ);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].field("pk"), Some("i1"));
    assert_eq!(events[0].field("stale"), Some("true"));
}

#[test]
fn wal_flush_event_on_compaction() {
    let telemetry = Telemetry::new();
    let dir = tmp("compact");
    let meta = MetadataStore::durable(dir.join("wal.log"), SyncPolicy::Never)
        .unwrap()
        .with_telemetry(Arc::clone(&telemetry));
    meta.create_table(schema()).unwrap();
    meta.insert("instances", Record::new().set("id", "a"))
        .unwrap();
    meta.compact().unwrap();
    let events = telemetry.events().of_kind(kinds::WAL_FLUSH);
    assert!(events.iter().any(|e| e.field("reason") == Some("compact")));
    // Appends after compaction still count into the same registry.
    meta.insert("instances", Record::new().set("id", "b"))
        .unwrap();
    assert!(
        telemetry
            .registry()
            .counter("gallery_wal_appends_total", &[])
            .get()
            >= 3
    );
}

#[test]
fn injected_faults_do_not_skew_success_byte_counters() {
    let telemetry = Telemetry::new();
    let plan = FaultPlan::none();
    plan.fail_first_n(sites::BLOB_PUT, 2);
    let backend = Arc::new(MemoryBlobStore::new().with_faults(plan));
    let dal = Dal::new(Arc::new(MetadataStore::in_memory()), backend)
        .with_telemetry(Arc::clone(&telemetry));
    dal.create_table(schema()).unwrap();
    dal.put_with_blob_retrying(
        "instances",
        Record::new().set("id", "i1"),
        Bytes::from(vec![7u8; 64]),
        4,
    )
    .unwrap();
    let reg = telemetry.registry();
    // Two failed attempts never counted as writes; one success did.
    assert_eq!(
        reg.counter("gallery_blob_ops_total", &[("op", "write")])
            .get(),
        1
    );
    assert_eq!(
        reg.counter("gallery_blob_bytes_total", &[("op", "write")])
            .get(),
        64
    );
    // But the put_with_blob op itself was one logical call.
    assert_eq!(
        reg.counter("gallery_dal_ops_total", &[("op", "put_with_blob")])
            .get(),
        1
    );
}
