//! Manual profiling harness for the 1M-row write path (not a test of
//! behaviour): `cargo test --release -p gallery-store --test profile_1m
//! -- --ignored --nocapture` prints per-decade rates for each layer so a
//! throughput collapse can be attributed.

use gallery_store::meta::StoreConfig;
use gallery_store::table::Table;
use gallery_store::{ColumnDef, MetadataStore, Record, TableSchema, Value, ValueType};
use std::time::Instant;

fn schema() -> TableSchema {
    TableSchema::new(
        "instances",
        "id",
        vec![
            ColumnDef::new("id", ValueType::Str),
            ColumnDef::new("model_name", ValueType::Str).hash_indexed(),
            ColumnDef::new("city", ValueType::Str).hash_indexed(),
            ColumnDef::new("created", ValueType::Timestamp).btree_indexed(),
            ColumnDef::new("mape", ValueType::Float).btree_indexed(),
            ColumnDef::new("notes", ValueType::Str).nullable(),
        ],
    )
    .unwrap()
}

fn record_for(i: usize) -> Record {
    Record::new()
        .set("id", format!("inst-{i:08}"))
        .set("model_name", "seasonal")
        .set("city", format!("city_{:03}", i % 400))
        .set("created", Value::Timestamp(1_700_000_000_000 + i as i64))
        .set("mape", (i % 1000) as f64 / 1000.0)
        .set("notes", format!("retrain #{i}"))
}

fn decades(label: &str, mut f: impl FnMut(usize)) {
    let mut from = 0usize;
    for to in [10_000usize, 100_000, 1_000_000] {
        let started = Instant::now();
        for i in from..to {
            f(i);
        }
        let rate = (to - from) as f64 / started.elapsed().as_secs_f64();
        println!("{label}: decade {to}: {rate:.0} rows/s");
        from = to;
    }
}

#[test]
#[ignore = "profiling harness, run manually with --nocapture"]
fn profile_layers() {
    println!("-- layer 1: record construction only --");
    let mut sink = 0usize;
    decades("construct", |i| {
        sink += record_for(i).len();
    });
    println!("sink {sink}");

    println!("-- layer 2: construct + keep (Vec) --");
    let mut kept = Vec::new();
    decades("vec-keep", |i| kept.push(record_for(i)));
    drop(kept);

    println!("-- layer 3: table only (striped, deferred indexes) --");
    let table = Table::with_config(schema(), 16, 1024);
    decades("table", |i| {
        table.insert(record_for(i)).unwrap();
    });
    drop(table);

    println!("-- layer 4: full store (oplog + commit path) --");
    let store = MetadataStore::in_memory_with_config(StoreConfig::default());
    store.create_table(schema()).unwrap();
    decades("store", |i| {
        store.insert("instances", record_for(i)).unwrap();
    });
}
