//! Concurrency soak for the sharded-lock write path.
//!
//! N threads hammer one table through the striped locks with a seeded
//! per-thread op mix: mostly inserts into a thread-owned id namespace,
//! plus duplicate-insert probes (must fail with `DuplicateKey`, exactly
//! once succeeding), deprecation flags, batch inserts through group
//! commit, and full queries raced against the writers. Afterwards the
//! store is checked against a deterministic reference state: no lost
//! rows, no duplicate ids, exact query results, and — for the durable
//! arm — identical state after a WAL-replay restart.
//!
//! The default tests are CI-sized smoke runs; `soak_full` is the long
//! variant (`cargo test -- --ignored`).

use gallery_store::error::StoreError;
use gallery_store::{
    ColumnDef, Constraint, MetadataStore, Query, Record, StoreConfig, SyncPolicy, TableSchema,
    ValueType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

const TABLE: &str = "instances";

fn schema() -> TableSchema {
    TableSchema::new(
        TABLE,
        "id",
        vec![
            ColumnDef::new("id", ValueType::Str),
            ColumnDef::new("owner", ValueType::Str).hash_indexed(),
            ColumnDef::new("rank", ValueType::Int).btree_indexed(),
            ColumnDef::new("deprecated", ValueType::Bool).nullable(),
        ],
    )
    .unwrap()
}

fn record(owner: usize, n: usize) -> Record {
    Record::new()
        .set("id", format!("t{owner}-{n:05}"))
        .set("owner", format!("owner-{owner}"))
        .set("rank", n as i64)
}

/// What one thread is expected to have done, reconstructed determinist-
/// ically from its seed after the threads join.
#[derive(Default)]
struct Expected {
    inserted: usize,
    deprecated: HashSet<usize>,
}

/// Drive one thread's op mix. Returns the number of rows it inserted and
/// which of its own rows it deprecated.
fn drive(store: &MetadataStore, owner: usize, ops: usize, seed: u64) -> Expected {
    let mut rng = StdRng::seed_from_u64(seed ^ owner as u64);
    let mut exp = Expected::default();
    let mut next = 0usize;
    for _ in 0..ops {
        let roll = rng.gen_range(0..100u64);
        if next == 0 || roll < 55 {
            store.insert(TABLE, record(owner, next)).unwrap();
            next += 1;
        } else if roll < 65 {
            // Batch insert through group commit.
            let n = 2 + rng.gen_range(0..3u64) as usize;
            let batch: Vec<Record> = (0..n).map(|i| record(owner, next + i)).collect();
            assert_eq!(store.insert_many(TABLE, batch).unwrap(), n);
            next += n;
        } else if roll < 75 {
            // Duplicate-insert probe on a row this thread already owns:
            // must fail, must not corrupt anything.
            let dup = rng.gen_range(0..next as u64) as usize;
            match store.insert(TABLE, record(owner, dup)) {
                Err(StoreError::DuplicateKey(_)) => {}
                other => panic!("duplicate insert must fail with DuplicateKey, got {other:?}"),
            }
        } else if roll < 85 {
            let victim = rng.gen_range(0..next as u64) as usize;
            store
                .set_flag(TABLE, &format!("t{owner}-{victim:05}"), "deprecated", true)
                .unwrap();
            exp.deprecated.insert(victim);
        } else {
            // Race a query against the other writers. Counts can't be
            // asserted mid-flight; exactness is judged after the join.
            let q = Query::all()
                .and(Constraint::eq("owner", format!("owner-{owner}")))
                .with_deprecated();
            let rows = store.query(TABLE, &q).unwrap();
            assert!(
                rows.len() <= next,
                "thread {owner} saw {} of its rows mid-run but only inserted {next}",
                rows.len()
            );
            // Own-writes visibility: everything this thread inserted
            // before the query must already be visible.
            assert!(
                rows.len() >= next,
                "thread {owner} lost sight of its own writes: {} < {next}",
                rows.len()
            );
        }
    }
    exp.inserted = next;
    exp
}

/// Check the final store state against each thread's expected state.
fn verify(store: &MetadataStore, expected: &[Expected], seed: u64) {
    let total: usize = expected.iter().map(|e| e.inserted).sum();
    assert_eq!(
        store.row_count(TABLE).unwrap(),
        total,
        "seed {seed:#x}: lost or duplicated rows"
    );
    // Global id uniqueness straight from a full scan.
    let all = store.query(TABLE, &Query::all().with_deprecated()).unwrap();
    let mut seen = HashSet::new();
    for row in &all {
        let id = row.get("id").and_then(|v| v.as_str()).unwrap().to_owned();
        assert!(seen.insert(id.clone()), "seed {seed:#x}: duplicate id {id}");
    }
    assert_eq!(seen.len(), total);
    for (owner, exp) in expected.iter().enumerate() {
        // Per-owner query exactness through the hash index (+ any pending
        // index delta).
        let q = Query::all()
            .and(Constraint::eq("owner", format!("owner-{owner}")))
            .with_deprecated();
        let rows = store.query(TABLE, &q).unwrap();
        assert_eq!(rows.len(), exp.inserted, "seed {seed:#x} owner {owner}");
        for row in &rows {
            let n = row.get("rank").and_then(|v| v.as_int()).unwrap() as usize;
            let deprecated = row
                .get("deprecated")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            assert_eq!(
                deprecated,
                exp.deprecated.contains(&n),
                "seed {seed:#x}: t{owner}-{n:05} flag state wrong"
            );
        }
        // Range query through the btree index agrees with the count.
        let half = (exp.inserted / 2) as i64;
        let ranged = store
            .query(
                TABLE,
                &Query::all()
                    .and(Constraint::eq("owner", format!("owner-{owner}")))
                    .and(Constraint::new("rank", gallery_store::Op::Ge, half))
                    .with_deprecated(),
            )
            .unwrap();
        assert_eq!(
            ranged.len(),
            exp.inserted - half as usize,
            "seed {seed:#x} owner {owner} range"
        );
    }
}

fn soak_in_memory(threads: usize, ops: usize, seed: u64, cfg: StoreConfig) {
    let store = Arc::new(MetadataStore::in_memory_with_config(cfg));
    store.create_table(schema()).unwrap();
    let expected: Vec<Expected> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|owner| {
                let store = Arc::clone(&store);
                s.spawn(move || drive(&store, owner, ops, seed))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    verify(&store, &expected, seed);
    // Deferred index deltas flushed: results must not change.
    store.flush_index_deltas();
    verify(&store, &expected, seed);
}

fn soak_durable(threads: usize, ops: usize, seed: u64) {
    let dir = std::env::temp_dir().join(format!(
        "gallery-soak-{seed:x}-{}-{}",
        std::process::id(),
        threads
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");
    let store = Arc::new(MetadataStore::durable(&path, SyncPolicy::Always).unwrap());
    store.create_table(schema()).unwrap();
    let expected: Vec<Expected> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|owner| {
                let store = Arc::clone(&store);
                s.spawn(move || drive(&store, owner, ops, seed))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    verify(&store, &expected, seed);
    drop(store);
    // Restart: WAL replay must reproduce the exact same state.
    let restored = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
    verify(&restored, &expected, seed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_smoke_in_memory() {
    soak_in_memory(8, 120, 0x50AC, StoreConfig::default());
}

#[test]
fn soak_smoke_single_stripe_eager_index() {
    // The degenerate config (old write path) must behave identically.
    soak_in_memory(
        8,
        120,
        0x50AC,
        StoreConfig {
            lock_stripes: 1,
            index_batch: 1,
            ..StoreConfig::default()
        },
    );
}

#[test]
fn soak_smoke_durable_group_commit() {
    soak_durable(8, 60, 0xD0C5);
}

/// Clean-tree gate: the full soak under rank checking *and* seeded
/// schedule perturbation must produce zero `GL` diagnostics. The shaker
/// widens race windows at every lock boundary, so an ordering bug that
/// only bites in rare interleavings still has to survive this to land.
#[test]
fn soak_rank_checked_is_diagnostic_free() {
    use gallery_store::testkit::schedule::ScheduleShaker;
    let shaker = ScheduleShaker::install(0x10C4);
    soak_in_memory(4, 80, 0x50AC, StoreConfig::default());
    soak_durable(4, 40, 0xD0C5);
    let report = gallery_sync::checker::report();
    assert!(
        report.is_clean(),
        "lock-order diagnostics on the clean tree: {:?}",
        report.diagnostics
    );
    assert!(report.acquisitions > 0, "checker was not actually on");
    assert!(shaker.injections() > 0, "shaker never perturbed a schedule");
}

#[test]
#[ignore = "long soak; run with --ignored"]
fn soak_full() {
    for seed in [0x50AC_u64, 0xFEED, 0xBEEF] {
        soak_in_memory(16, 1500, seed, StoreConfig::default());
    }
    soak_durable(16, 500, 0xD0C5);
}
