//! Property tests for the metadata store: query planning must never change
//! results (index vs scan equivalence), WAL replay must reproduce state
//! exactly, the DAL's blob-first invariant must hold under arbitrary fault
//! schedules, and degraded reads must never silently serve wrong bytes.

use bytes::Bytes;
use gallery_store::blob::cache::CachedBlobStore;
use gallery_store::blob::memory::MemoryBlobStore;
use gallery_store::blob::ObjectStore as _;
use gallery_store::fault::sites;
use gallery_store::{
    ColumnDef, Constraint, Dal, FaultPlan, MetadataStore, Op, Query, Record, SyncPolicy,
    TableSchema, Value, ValueType,
};
use proptest::prelude::*;
use std::sync::Arc;

fn schema(indexed: bool) -> TableSchema {
    let mut a = ColumnDef::new("a", ValueType::Int);
    let mut b = ColumnDef::new("b", ValueType::Str);
    if indexed {
        a = a.btree_indexed();
        b = b.hash_indexed();
    }
    TableSchema::new("t", "id", vec![ColumnDef::new("id", ValueType::Str), a, b]).unwrap()
}

fn load(store: &MetadataStore, rows: &[(i64, u8)]) {
    for (i, (a, b)) in rows.iter().enumerate() {
        store
            .insert(
                "t",
                Record::new()
                    .set("id", format!("r{i}"))
                    .set("a", *a)
                    .set("b", format!("s{b}")),
            )
            .unwrap();
    }
}

proptest! {
    /// Indexed execution returns exactly the same rows as full-scan
    /// execution for every conjunctive query.
    #[test]
    fn index_and_scan_agree(
        rows in proptest::collection::vec((-20i64..20, 0u8..6), 0..60),
        threshold in -20i64..20,
        needle in 0u8..6,
    ) {
        let indexed = MetadataStore::in_memory();
        indexed.create_table(schema(true)).unwrap();
        load(&indexed, &rows);
        let plain = MetadataStore::in_memory();
        plain.create_table(schema(false)).unwrap();
        load(&plain, &rows);

        for q in [
            Query::all().and(Constraint::new("a", Op::Lt, threshold)),
            Query::all().and(Constraint::new("a", Op::Ge, threshold)),
            Query::all().and(Constraint::eq("b", format!("s{needle}"))),
            Query::all()
                .and(Constraint::eq("b", format!("s{needle}")))
                .and(Constraint::new("a", Op::Gt, threshold)),
        ] {
            let mut from_indexed: Vec<String> = indexed
                .query("t", &q)
                .unwrap()
                .iter()
                .map(|r| r.get("id").unwrap().as_str().unwrap().to_owned())
                .collect();
            let mut from_plain: Vec<String> = plain
                .query("t", &q)
                .unwrap()
                .iter()
                .map(|r| r.get("id").unwrap().as_str().unwrap().to_owned())
                .collect();
            from_indexed.sort();
            from_plain.sort();
            prop_assert_eq!(from_indexed, from_plain, "query {:?}", q.constraints);
        }
    }

    /// WAL replay reconstructs exactly the pre-crash state.
    #[test]
    fn wal_replay_reproduces_state(
        rows in proptest::collection::vec((-50i64..50, 0u8..4), 1..40),
        flags in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "gallery-prop-wal-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let store = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
            let mut s = schema(true);
            s.columns.push(ColumnDef::new("deprecated", ValueType::Bool).nullable());
            store.create_table(s).unwrap();
            load(&store, &rows);
            for ix in &flags {
                let pk = format!("r{}", ix.index(rows.len()));
                store.set_flag("t", &pk, "deprecated", true).unwrap();
            }
        }
        let restored = MetadataStore::durable(&path, SyncPolicy::Never).unwrap();
        prop_assert_eq!(restored.row_count("t").unwrap(), rows.len());
        for (i, (a, _)) in rows.iter().enumerate() {
            let rec = restored.get("t", &format!("r{i}")).unwrap().unwrap();
            prop_assert_eq!(rec.get("a"), Some(&Value::Int(*a)));
        }
        for ix in &flags {
            let pk = format!("r{}", ix.index(rows.len()));
            let rec = restored.get("t", &pk).unwrap().unwrap();
            prop_assert_eq!(rec.get("deprecated"), Some(&Value::Bool(true)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under any probabilistic fault schedule, blob-first ordering never
    /// produces dangling metadata.
    #[test]
    fn blob_first_invariant_under_faults(
        seed in any::<u64>(),
        blob_p in 0.0f64..0.5,
        meta_p in 0.0f64..0.5,
        writes in 1usize..60,
    ) {
        let plan = FaultPlan::with_seed(seed);
        plan.fail_with_probability(sites::BLOB_PUT, blob_p);
        plan.fail_with_probability(sites::META_INSERT, meta_p);
        let dal = Dal::new(
            Arc::new(MetadataStore::in_memory().with_faults(plan.clone())),
            Arc::new(MemoryBlobStore::new().with_faults(plan)),
        );
        dal.create_table(TableSchema::new(
            "instances",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("blob_location", ValueType::Str).nullable(),
            ],
        ).unwrap()).unwrap();
        let mut ok = 0usize;
        for i in 0..writes {
            if dal
                .put_with_blob(
                    "instances",
                    Record::new().set("id", format!("i{i}")),
                    Bytes::from(format!("blob-{i}")),
                )
                .is_ok()
            {
                ok += 1;
            }
        }
        let report = dal.audit_consistency(&["instances"]).unwrap();
        prop_assert!(report.is_consistent(), "dangling: {:?}", report.dangling_metadata);
        prop_assert_eq!(report.rows_checked, ok);
        // every successful write's blob resolves
        for i in 0..writes {
            let pk = format!("i{i}");
            if dal.get("instances", &pk).unwrap().is_some() {
                prop_assert!(dal.fetch_blob_of("instances", &pk).is_ok());
            }
        }
    }

    /// After the backing object of one instance is corrupted or deleted, a
    /// degraded read of *any* instance either returns exactly the bytes
    /// originally written (a correct cache/backend hit — the `stale` flag
    /// marks backend-unverified data) or a detected error. It never serves
    /// wrong bytes as a success.
    #[test]
    fn degraded_reads_never_silently_wrong(
        n in 1usize..10,
        victim in any::<prop::sample::Index>(),
        delete_instead in any::<bool>(),
        cached in any::<bool>(),
    ) {
        let backend = Arc::new(MemoryBlobStore::new());
        let store: Arc<dyn gallery_store::ObjectStore> = if cached {
            let inner: Arc<dyn gallery_store::ObjectStore> = Arc::clone(&backend) as _;
            Arc::new(CachedBlobStore::new(inner, 1 << 20))
        } else {
            Arc::clone(&backend) as _
        };
        let dal = Dal::new(Arc::new(MetadataStore::in_memory()), store);
        dal.create_table(TableSchema::new(
            "instances",
            "id",
            vec![
                ColumnDef::new("id", ValueType::Str),
                ColumnDef::new("blob_location", ValueType::Str).nullable(),
            ],
        ).unwrap()).unwrap();
        let mut payloads = Vec::new();
        for i in 0..n {
            let body = format!("payload-{i}-{}", "x".repeat(i));
            dal.put_with_blob(
                "instances",
                Record::new().set("id", format!("i{i}")),
                Bytes::from(body.clone()),
            ).unwrap();
            payloads.push(body);
        }
        // Damage one instance's backing object behind the DAL's back.
        let victim = victim.index(n);
        let loc = {
            let rec = dal.get("instances", &format!("i{victim}")).unwrap().unwrap();
            gallery_store::BlobLocation::new(rec.get("blob_location").unwrap().as_str().unwrap())
        };
        if delete_instead {
            backend.delete(&loc).unwrap();
        } else {
            backend.corrupt(&loc);
        }
        for (i, payload) in payloads.iter().enumerate() {
            match dal.fetch_blob_of_degraded("instances", &format!("i{i}"), 2) {
                Ok(read) => prop_assert_eq!(
                    &read.data[..],
                    payload.as_bytes(),
                    "instance i{} served wrong bytes (stale={})",
                    i,
                    read.stale
                ),
                Err(e) => prop_assert!(
                    i == victim,
                    "undamaged instance i{} failed: {}",
                    i,
                    e
                ),
            }
        }
    }
}
