//! End-to-end crash-consistency checks: the crash-point matrix over the
//! simulated file system, the model-based differential tester, and the
//! orphan-repair path under injected delete faults. Everything is seeded —
//! a failure message carries the seed needed to reproduce it exactly.

use bytes::Bytes;
use gallery_store::blob::memory::MemoryBlobStore;
use gallery_store::fault::{sites, FaultPlan};
use gallery_store::telemetry::{kinds, Telemetry};
use gallery_store::testkit::{
    instance_schema, run_crash_matrix, run_differential, CrashMatrixConfig, TABLE,
};
use gallery_store::{Dal, MetadataStore, Record, WriteOrdering};
use std::sync::Arc;

#[test]
fn crash_matrix_blob_first_has_zero_violations() {
    let report = run_crash_matrix(&CrashMatrixConfig::smoke(0xDEAD_BEEF));
    assert!(
        report.is_clean(),
        "seed {:#x}: {:#?}",
        report.seed,
        report.violations
    );
    // The matrix must actually have explored crash points at both commit
    // sites (WAL append/commit and blob write/publish).
    assert!(report.crash_points >= 50, "only {}", report.crash_points);
    assert!(report.sites.keys().any(|s| s.starts_with("wal.")));
    assert!(report.sites.keys().any(|s| s.starts_with("blob.")));
    // Crash artifacts were produced and healed along the way: torn WAL
    // tails truncated, orphan blobs garbage-collected, stale tmp files
    // swept.
    assert!(report.torn_tails_truncated > 0);
    assert!(report.orphans_repaired > 0);
    assert!(report.tmp_files_swept > 0);
}

#[test]
fn crash_matrix_catches_metadata_first_ordering() {
    // Regression arm: with the deliberately unsafe write ordering the same
    // harness must report dangling metadata — proof it can catch the bug
    // class it exists for.
    let cfg = CrashMatrixConfig {
        torn_writes: false,
        drop_sync: false,
        bit_flips: 0,
        ..CrashMatrixConfig::smoke(0xBAD_0BDE)
    }
    .with_ordering(WriteOrdering::MetadataFirst);
    let report = run_crash_matrix(&cfg);
    assert!(
        report.caught_dangling_metadata(),
        "metadata-first ordering went undetected (seed {:#x})",
        report.seed
    );
}

#[test]
fn differential_model_agrees_across_seeds() {
    for seed in 200..208u64 {
        let report = run_differential(seed, 150);
        assert!(
            report.is_clean(),
            "seed {seed} diverged: {:#?}",
            report.divergences
        );
        assert_eq!(report.ops_applied, 150);
    }
}

#[test]
fn orphan_repair_under_delete_fault_is_observable() {
    let telemetry = Telemetry::new();
    let plan = FaultPlan::none();
    plan.fail_first_n(sites::BLOB_DELETE, 1);
    let blobs = Arc::new(MemoryBlobStore::new().with_faults(plan));
    let meta = Arc::new(MetadataStore::in_memory());
    let dal = Dal::new(meta, blobs).with_telemetry(Arc::clone(&telemetry));
    dal.create_table(instance_schema()).unwrap();

    // Two orphans (blobs no metadata references — interrupted blob-first
    // writes) plus one live instance.
    dal.blobs().put(Bytes::from_static(b"orphan-1")).unwrap();
    dal.blobs().put(Bytes::from_static(b"orphan-2")).unwrap();
    dal.put_with_blob(
        TABLE,
        Record::new().set("id", "live"),
        Bytes::from_static(b"live"),
    )
    .unwrap();

    // First pass: one delete hits the injected fault and is reported (not
    // fatal), the other orphan is repaired and counted.
    let rep = dal.repair_orphans(&[TABLE]).unwrap();
    assert_eq!(rep.audit.orphan_blobs.len(), 2);
    assert_eq!(rep.deleted.len(), 1);
    assert_eq!(rep.failed.len(), 1);
    let reg = telemetry.registry();
    assert_eq!(
        reg.counter("gallery_dal_orphans_repaired_total", &[]).get(),
        1
    );
    let events = telemetry.events().of_kind(kinds::ORPHAN_REPAIRED);
    assert_eq!(events.len(), 1);
    assert!(events[0].field("location").is_some());

    // Second pass finishes the job; the live instance is untouched.
    let rep2 = dal.repair_orphans(&[TABLE]).unwrap();
    assert_eq!(rep2.deleted.len(), 1);
    assert!(rep2.failed.is_empty());
    assert_eq!(
        reg.counter("gallery_dal_orphans_repaired_total", &[]).get(),
        2
    );
    let after = dal.audit_consistency(&[TABLE]).unwrap();
    assert!(after.is_consistent());
    assert!(after.orphan_blobs.is_empty());
    assert!(dal.fetch_blob_of(TABLE, "live").is_ok());
}
