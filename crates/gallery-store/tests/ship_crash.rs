//! WAL shipping under the crash matrix (docs/replication.md): a durable
//! follower is crashed at every mutating IO operation while applying
//! shipped frames, recovered from its durable bytes, and re-shipped to
//! convergence. Proves the shipping protocol composes with the storage
//! layer's crash consistency:
//!
//! - the follower always converges to the leader's exact state;
//! - no phantom rows — every follower row is a leader row (the WAL-first
//!   apply path means a crash can lose a suffix, never invent one);
//! - replay is idempotent — re-applying the full frame set from scratch
//!   applies nothing and changes nothing.

use gallery_store::{ColumnDef, FileSystem};
use gallery_store::{
    MetadataStore, Record, ShipFrame, SimFaultPlan, SimFs, SyncPolicy, TableSchema, ValueType,
};
use std::sync::Arc;

const WAL_PATH: &str = "/replica/meta.wal";

/// A leader with a varied oplog: two tables, inserts, and flag updates.
fn leader() -> MetadataStore {
    let store = MetadataStore::in_memory();
    store
        .create_table(
            TableSchema::new(
                "models",
                "id",
                vec![
                    ColumnDef::new("id", ValueType::Str),
                    ColumnDef::new("name", ValueType::Str),
                    ColumnDef::new("deprecated", ValueType::Bool),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    store
        .create_table(
            TableSchema::new(
                "instances",
                "id",
                vec![
                    ColumnDef::new("id", ValueType::Str),
                    ColumnDef::new("model_id", ValueType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    for i in 0..6 {
        store
            .insert(
                "models",
                Record::new()
                    .set("id", format!("m{i}"))
                    .set("name", "rf")
                    .set("deprecated", false),
            )
            .unwrap();
        store
            .insert(
                "instances",
                Record::new()
                    .set("id", format!("i{i}"))
                    .set("model_id", format!("m{i}")),
            )
            .unwrap();
    }
    store.set_flag("models", "m0", "deprecated", true).unwrap();
    store.set_flag("models", "m3", "deprecated", true).unwrap();
    store
}

fn open_follower(fs: &SimFs) -> gallery_store::Result<MetadataStore> {
    MetadataStore::durable_with_fs(
        Arc::new(fs.clone()) as Arc<dyn FileSystem>,
        WAL_PATH,
        SyncPolicy::Always,
    )
}

/// Ship everything the leader has to the follower in small batches (so a
/// crash lands mid-batch). Returns Err when the follower crashes.
fn ship_all(leader: &MetadataStore, follower: &MetadataStore) -> gallery_store::Result<()> {
    loop {
        let (leader_seq, frames) = leader.ship_since(follower.applied_seq(), 4)?;
        if frames.is_empty() {
            assert_eq!(follower.applied_seq(), leader_seq);
            return Ok(());
        }
        let report = follower.apply_ship(&frames)?;
        assert_eq!(report.resend_from, None, "leader ships from our seq");
        assert!(report.applied > 0 || report.skipped > 0);
    }
}

/// The follower's state must equal the leader's, row for row.
fn assert_converged(leader: &MetadataStore, follower: &MetadataStore) {
    assert_eq!(follower.applied_seq(), leader.applied_seq());
    let mut tables = leader.table_names();
    let mut follower_tables = follower.table_names();
    tables.sort();
    follower_tables.sort();
    assert_eq!(tables, follower_tables);
    for table in &tables {
        assert_eq!(
            follower.row_count(table).unwrap(),
            leader.row_count(table).unwrap(),
            "row count of {table}"
        );
    }
    // Same cardinality + every leader row present and equal ⇒ the
    // follower holds exactly the leader's rows, no phantoms.
    for i in 0..6 {
        for (table, pk) in [("models", format!("m{i}")), ("instances", format!("i{i}"))] {
            assert_eq!(
                follower.get(table, &pk).unwrap(),
                leader.get(table, &pk).unwrap(),
                "{table}/{pk}"
            );
        }
    }
}

/// Re-applying the complete frame set from sequence 0 must be a no-op.
fn assert_replay_idempotent(leader: &MetadataStore, follower: &MetadataStore) {
    let (_, frames) = leader.ship_since(0, 10_000).unwrap();
    let before = follower.applied_seq();
    let report = follower.apply_ship(&frames).unwrap();
    assert_eq!(report.applied, 0, "full replay applies nothing");
    assert_eq!(report.skipped, frames.len() as u64);
    assert_eq!(follower.applied_seq(), before);
}

#[test]
fn follower_crashed_at_every_io_op_converges() {
    let leader = leader();

    // Clean run first: count the IO ops a full apply performs, so the
    // matrix can enumerate every crash point.
    let clean_fs = SimFs::new();
    let follower = open_follower(&clean_fs).unwrap();
    ship_all(&leader, &follower).unwrap();
    assert_converged(&leader, &follower);
    let total_ops = clean_fs.ops();
    assert!(total_ops > 20, "matrix too small: {total_ops} ops");

    for crash_at in 0..total_ops {
        // Tear the crashing write on odd points: a partially persisted
        // final record is the classic crash artifact recovery truncates.
        let plan = SimFaultPlan {
            crash_at_op: Some(crash_at),
            torn_write_keep: (crash_at % 2 == 1).then_some(3),
            ..SimFaultPlan::default()
        };
        let fs = SimFs::with_plan(plan);
        // The crash can fire during open (bootstrap IO) or mid-apply;
        // either way the disk is whatever became durable.
        if let Ok(follower) = open_follower(&fs) {
            let _ = ship_all(&leader, &follower);
        }
        assert!(fs.crashed(), "crash point {crash_at} never fired");

        // Reboot: recovery truncates any torn tail, then shipping resumes
        // from whatever sequence survived.
        let rebooted = fs.recover();
        let follower = open_follower(&rebooted)
            .unwrap_or_else(|e| panic!("recovery failed at crash point {crash_at}: {e}"));
        assert!(
            follower.applied_seq() <= leader.applied_seq(),
            "crash point {crash_at}: follower ahead of leader"
        );
        ship_all(&leader, &follower)
            .unwrap_or_else(|e| panic!("re-ship failed at crash point {crash_at}: {e}"));
        assert_converged(&leader, &follower);
        assert_replay_idempotent(&leader, &follower);
    }
}

#[test]
fn double_crash_while_reshipping_converges() {
    // Crash once mid-apply, recover, then crash again during the re-ship —
    // recovery of a recovery. The second crash point is chosen mid-stream
    // of the resumed apply.
    let leader = leader();
    let fs = SimFs::with_plan(SimFaultPlan {
        crash_at_op: Some(12),
        ..SimFaultPlan::default()
    });
    if let Ok(follower) = open_follower(&fs) {
        let _ = ship_all(&leader, &follower);
    }
    assert!(fs.crashed());

    let rebooted = fs.recover();
    rebooted.set_plan(SimFaultPlan {
        crash_at_op: Some(8),
        torn_write_keep: Some(1),
        ..SimFaultPlan::default()
    });
    if let Ok(follower) = open_follower(&rebooted) {
        let _ = ship_all(&leader, &follower);
    }
    assert!(rebooted.crashed());

    let final_fs = rebooted.recover();
    let follower = open_follower(&final_fs).unwrap();
    ship_all(&leader, &follower).unwrap();
    assert_converged(&leader, &follower);
    assert_replay_idempotent(&leader, &follower);
}

#[test]
fn shipped_frames_survive_the_follower_wal_byte_for_byte() {
    // A frame applied on the follower is re-shippable from the follower's
    // own log with identical op JSON — chained replication would see the
    // same bytes the leader shipped.
    let leader = leader();
    let follower = MetadataStore::in_memory();
    let (_, frames) = leader.ship_since(0, 10_000).unwrap();
    follower.apply_ship(&frames).unwrap();
    let (_, reshipped) = follower.ship_since(0, 10_000).unwrap();
    assert_eq!(frames.len(), reshipped.len());
    for (a, b) in frames.iter().zip(reshipped.iter()) {
        assert_eq!(a, b);
    }
    // And a frame with corrupted JSON is rejected before any state change.
    let bad = ShipFrame {
        seq: follower.applied_seq() + 1,
        op_json: "{not json".into(),
    };
    let before = follower.applied_seq();
    assert!(follower.apply_ship(&[bad]).is_err());
    assert_eq!(follower.applied_seq(), before);
}
