//! Ridge-regression forecaster over lag/seasonality/event features — the
//! "linear regression models" of the paper's model-class evolution (§4.2),
//! fit from scratch via the normal equations.

use super::{Forecaster, ModelError};
use crate::features::FeatureSpec;
use crate::linalg::{dot, ridge_fit};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Linear one-step-ahead forecaster with L2 regularization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeForecaster {
    pub spec: FeatureSpec,
    pub lambda: f64,
    /// Learned weights (empty until fit).
    pub weights: Vec<f64>,
    pub fallback: f64,
}

impl RidgeForecaster {
    pub fn new(spec: FeatureSpec, lambda: f64) -> Self {
        RidgeForecaster {
            spec,
            lambda: lambda.max(0.0),
            weights: Vec::new(),
            fallback: 0.0,
        }
    }

    /// Standard feature set for the given daily period.
    pub fn standard(samples_per_day: usize, lambda: f64) -> Self {
        Self::new(FeatureSpec::standard(samples_per_day), lambda)
    }

    /// Event-aware variant — §4.2's "models that include holiday/event
    /// features".
    pub fn event_aware(samples_per_day: usize, lambda: f64) -> Self {
        Self::new(
            FeatureSpec::standard(samples_per_day).with_event_flag(),
            lambda,
        )
    }

    pub fn is_fitted(&self) -> bool {
        !self.weights.is_empty()
    }
}

impl Forecaster for RidgeForecaster {
    fn name(&self) -> &'static str {
        if self.spec.event_flag {
            "ridge_event_aware"
        } else {
            "ridge"
        }
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<(), ModelError> {
        if train.len() <= self.spec.min_index() + self.spec.width() {
            return Err(ModelError::new(format!(
                "need more than {} samples to fit, got {}",
                self.spec.min_index() + self.spec.width(),
                train.len()
            )));
        }
        let (xs, ys) = self.spec.design_matrix(train);
        self.weights = ridge_fit(&xs, &ys, self.lambda.max(1e-8))
            .ok_or_else(|| ModelError::new("normal equations are singular"))?;
        self.fallback = train.mean();
        Ok(())
    }

    fn forecast_next(&self, history: &[f64], t: usize, event_now: bool) -> f64 {
        if self.weights.is_empty() || history.is_empty() {
            return self.fallback;
        }
        let row = self.spec.row(history, t.max(history.len()), event_now);
        dot(&row, &self.weights).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::{CityConfig, EventWindow};
    use crate::eval::{backtest, Metric};

    #[test]
    fn learns_seasonal_structure_better_than_fallback() {
        let cfg = CityConfig::new("sf", 11);
        let series = cfg.generate(cfg.samples_per_day() * 21, 0);
        let (train, _) = series.split_at(cfg.samples_per_day() * 14);
        let mut model = RidgeForecaster::standard(cfg.samples_per_day(), 1.0);
        model.fit(&train).unwrap();
        let report = backtest(&model, &series, cfg.samples_per_day() * 14);
        assert!(
            report.get(Metric::Mape) < 0.15,
            "ridge should track daily structure, mape={}",
            report.get(Metric::Mape)
        );
    }

    #[test]
    fn event_aware_beats_static_during_events() {
        use crate::features::FeatureSpec;
        let mut cfg = CityConfig::new("sf", 12).noise_std(0.02);
        let day = cfg.samples_per_day();
        // events in both training (to learn the coefficient) and test
        for d in [3usize, 7, 11, 16, 18] {
            cfg = cfg.with_event(EventWindow {
                start: d * day,
                end: d * day + day / 2,
                multiplier: 1.8,
            });
        }
        let series = cfg.generate(day * 20, 0);
        let test_start = day * 14;
        let (train, _) = series.split_at(test_start);

        // Day-scale lags: the model must forecast from the daily pattern,
        // so the event flag carries real signal (short lags would let even
        // the static model adapt one step into an event).
        let spec = FeatureSpec {
            lags: vec![day, 2 * day],
            samples_per_day: day,
            weekly: true,
            event_flag: false,
        };
        let mut plain = RidgeForecaster::new(spec.clone(), 1.0);
        plain.fit(&train).unwrap();
        let mut aware = RidgeForecaster::new(
            FeatureSpec {
                event_flag: true,
                ..spec
            },
            1.0,
        );
        aware.fit(&train).unwrap();

        let plain_report = backtest(&plain, &series, test_start);
        let aware_report = backtest(&aware, &series, test_start);
        assert!(
            aware_report.get(Metric::Mape) < plain_report.get(Metric::Mape) * 0.9,
            "event-aware {} should clearly beat plain {}",
            aware_report.get(Metric::Mape),
            plain_report.get(Metric::Mape)
        );
    }

    #[test]
    fn too_short_series_rejected() {
        let mut model = RidgeForecaster::standard(96, 1.0);
        let short = TimeSeries::new(0, 1, vec![1.0; 50]);
        assert!(model.fit(&short).is_err());
    }

    #[test]
    fn unfitted_model_uses_fallback() {
        let model = RidgeForecaster::standard(96, 1.0);
        assert_eq!(model.forecast_next(&[1.0, 2.0], 2, false), 0.0);
    }

    #[test]
    fn predictions_nonnegative() {
        let cfg = CityConfig::new("sf", 13);
        let series = cfg.generate(cfg.samples_per_day() * 10, 0);
        let mut model = RidgeForecaster::standard(cfg.samples_per_day(), 1.0);
        model.fit(&series).unwrap();
        // even on absurd negative history, demand forecasts clamp at 0
        let crazy = vec![-1000.0; 200];
        assert!(model.forecast_next(&crazy, 200, false) >= 0.0);
    }
}
