//! CART regression tree, built from scratch: greedy binary splits by
//! variance reduction, depth- and leaf-size-limited.

use super::{Forecaster, ModelError};
use crate::features::FeatureSpec;
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// A node in the flattened tree arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    Leaf {
        prediction: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the <= branch.
        left: usize,
        /// Arena index of the > branch.
        right: usize,
    },
}

/// Regression tree over the shared [`FeatureSpec`] features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    pub spec: FeatureSpec,
    pub max_depth: usize,
    pub min_samples: usize,
    pub nodes: Vec<Node>,
    pub fallback: f64,
}

impl RegressionTree {
    pub fn new(samples_per_day: usize, max_depth: usize, min_samples: usize) -> Self {
        Self::with_spec(
            FeatureSpec::standard(samples_per_day),
            max_depth,
            min_samples,
        )
    }

    pub fn with_spec(spec: FeatureSpec, max_depth: usize, min_samples: usize) -> Self {
        RegressionTree {
            spec,
            max_depth: max_depth.max(1),
            min_samples: min_samples.max(2),
            nodes: Vec::new(),
            fallback: 0.0,
        }
    }

    pub fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Fit on an explicit design matrix (also used by the forest with
    /// bootstrap samples and feature masks).
    pub fn fit_matrix(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<(), ModelError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(ModelError::new("empty or misaligned training matrix"));
        }
        self.nodes.clear();
        let indices: Vec<usize> = (0..xs.len()).collect();
        let all_features: Vec<usize> = (0..xs[0].len()).collect();
        self.build(xs, ys, indices, &all_features, 0);
        self.fallback = ys.iter().sum::<f64>() / ys.len() as f64;
        Ok(())
    }

    /// Fit restricted to a feature subset (random forests pass a random
    /// mask per tree).
    pub fn fit_matrix_with_features(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        features: &[usize],
    ) -> Result<(), ModelError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(ModelError::new("empty or misaligned training matrix"));
        }
        self.nodes.clear();
        let indices: Vec<usize> = (0..xs.len()).collect();
        self.build(xs, ys, indices, features, 0);
        self.fallback = ys.iter().sum::<f64>() / ys.len() as f64;
        Ok(())
    }

    /// Recursively build; returns the arena index of the created node.
    fn build(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        indices: Vec<usize>,
        features: &[usize],
        depth: usize,
    ) -> usize {
        let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / indices.len() as f64;
        if depth >= self.max_depth || indices.len() < self.min_samples * 2 {
            self.nodes.push(Node::Leaf { prediction: mean });
            return self.nodes.len() - 1;
        }
        let parent_sse: f64 = indices.iter().map(|&i| (ys[i] - mean).powi(2)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &feature in features {
            // Candidate thresholds: quantile-ish cuts over sorted values.
            let mut vals: Vec<f64> = indices.iter().map(|&i| xs[i][feature]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let cuts = 16.min(vals.len() - 1);
            for c in 1..=cuts {
                let threshold = vals[c * (vals.len() - 1) / cuts];
                let (mut ln, mut ls, mut rn, mut rs) = (0usize, 0.0f64, 0usize, 0.0f64);
                for &i in &indices {
                    if xs[i][feature] <= threshold {
                        ln += 1;
                        ls += ys[i];
                    } else {
                        rn += 1;
                        rs += ys[i];
                    }
                }
                if ln < self.min_samples || rn < self.min_samples {
                    continue;
                }
                let (lm, rm) = (ls / ln as f64, rs / rn as f64);
                let sse: f64 = indices
                    .iter()
                    .map(|&i| {
                        let m = if xs[i][feature] <= threshold { lm } else { rm };
                        (ys[i] - m).powi(2)
                    })
                    .sum();
                if best.map(|(_, _, b)| sse < b).unwrap_or(true) {
                    best = Some((feature, threshold, sse));
                }
            }
        }
        // Require a real variance reduction: splitting on float noise in a
        // constant-target region would grow the tree without predictive
        // value.
        let min_gain = parent_sse * 1e-9 + 1e-9;
        let Some((feature, threshold, best_sse)) = best else {
            self.nodes.push(Node::Leaf { prediction: mean });
            return self.nodes.len() - 1;
        };
        if best_sse + min_gain >= parent_sse {
            self.nodes.push(Node::Leaf { prediction: mean });
            return self.nodes.len() - 1;
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| xs[i][feature] <= threshold);
        // Reserve our slot, then build children.
        let my_index = self.nodes.len();
        self.nodes.push(Node::Leaf { prediction: mean }); // placeholder
        let left = self.build(xs, ys, left_idx, features, depth + 1);
        let right = self.build(xs, ys, right_idx, features, depth + 1);
        self.nodes[my_index] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        my_index
    }

    /// Predict from a feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return self.fallback;
        }
        let mut index = 0usize;
        loop {
            match &self.nodes[index] {
                Node::Leaf { prediction } => return *prediction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    index = if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], index: usize) -> usize {
            match &nodes[index] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

impl Forecaster for RegressionTree {
    fn name(&self) -> &'static str {
        "regression_tree"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<(), ModelError> {
        if train.len() <= self.spec.min_index() + self.min_samples * 2 {
            return Err(ModelError::new("series too short for tree fitting"));
        }
        let (xs, ys) = self.spec.design_matrix(train);
        self.fit_matrix(&xs, &ys)
    }

    fn forecast_next(&self, history: &[f64], t: usize, event_now: bool) -> f64 {
        if history.is_empty() {
            return self.fallback;
        }
        let row = self.spec.row(history, t.max(history.len()), event_now);
        self.predict_row(&row).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xs with a single feature and a step function target.
    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 9.0 }).collect();
        (xs, ys)
    }

    #[test]
    fn learns_step_function() {
        let (xs, ys) = step_data();
        let mut tree = RegressionTree::with_spec(
            FeatureSpec {
                lags: vec![1],
                samples_per_day: 0,
                weekly: false,
                event_flag: false,
            },
            4,
            5,
        );
        tree.fit_matrix(&xs, &ys).unwrap();
        assert!((tree.predict_row(&[10.0]) - 1.0).abs() < 0.5);
        assert!((tree.predict_row(&[90.0]) - 9.0).abs() < 0.5);
    }

    #[test]
    fn respects_max_depth() {
        let (xs, ys) = step_data();
        let mut tree = RegressionTree::new(0, 2, 2);
        tree.fit_matrix(&xs, &ys).unwrap();
        assert!(tree.depth() <= 3); // root + 2 levels
    }

    #[test]
    fn min_samples_respected() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut tree = RegressionTree::new(0, 10, 5);
        tree.fit_matrix(&xs, &ys).unwrap();
        // with min 5 samples per side and 10 points, at most one split
        assert!(tree.nodes.len() <= 3);
    }

    #[test]
    fn constant_target_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![4.2; 20];
        let mut tree = RegressionTree::new(0, 5, 2);
        tree.fit_matrix(&xs, &ys).unwrap();
        assert_eq!(tree.nodes.len(), 1);
        assert!((tree.predict_row(&[3.0]) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_rejected() {
        let mut tree = RegressionTree::new(0, 5, 2);
        assert!(tree.fit_matrix(&[], &[]).is_err());
    }

    #[test]
    fn fits_series_end_to_end() {
        use crate::citygen::CityConfig;
        let cfg = CityConfig::new("sf", 21);
        let series = cfg.generate(cfg.samples_per_day() * 10, 0);
        let mut tree = RegressionTree::new(cfg.samples_per_day(), 6, 10);
        tree.fit(&series).unwrap();
        let pred = tree.forecast_next(&series.values, series.len(), false);
        assert!(pred > 0.0 && pred.is_finite());
    }
}
