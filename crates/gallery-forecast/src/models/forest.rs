//! Bagged random forest regressor — the "Random Forest" model class the
//! paper's rules reference (Listing 2), built from scratch on top of the
//! CART trees: bootstrap sampling plus per-tree random feature subsets.

use super::tree::RegressionTree;
use super::{Forecaster, ModelError};
use crate::features::FeatureSpec;
use crate::series::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random forest over the shared feature spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    pub spec: FeatureSpec,
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_samples: usize,
    pub seed: u64,
    pub trees: Vec<RegressionTree>,
    pub fallback: f64,
}

impl RandomForest {
    pub fn new(
        samples_per_day: usize,
        n_trees: usize,
        max_depth: usize,
        min_samples: usize,
        seed: u64,
    ) -> Self {
        Self::with_spec(
            FeatureSpec::standard(samples_per_day),
            n_trees,
            max_depth,
            min_samples,
            seed,
        )
    }

    pub fn with_spec(
        spec: FeatureSpec,
        n_trees: usize,
        max_depth: usize,
        min_samples: usize,
        seed: u64,
    ) -> Self {
        RandomForest {
            spec,
            n_trees: n_trees.max(1),
            max_depth: max_depth.max(1),
            min_samples: min_samples.max(2),
            seed,
            trees: Vec::new(),
            fallback: 0.0,
        }
    }

    /// Event-aware variant used by the §4.2 switching experiment.
    pub fn event_aware(
        samples_per_day: usize,
        n_trees: usize,
        max_depth: usize,
        min_samples: usize,
        seed: u64,
    ) -> Self {
        Self::with_spec(
            FeatureSpec::standard(samples_per_day).with_event_flag(),
            n_trees,
            max_depth,
            min_samples,
            seed,
        )
    }

    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }
}

impl Forecaster for RandomForest {
    fn name(&self) -> &'static str {
        if self.spec.event_flag {
            "random_forest_event_aware"
        } else {
            "random_forest"
        }
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<(), ModelError> {
        if train.len() <= self.spec.min_index() + self.min_samples * 2 {
            return Err(ModelError::new("series too short for forest fitting"));
        }
        let (xs, ys) = self.spec.design_matrix(train);
        let n = xs.len();
        let width = self.spec.width();
        // sqrt(d) feature subsampling, but always keep the bias column.
        let per_tree_features = ((width as f64).sqrt().ceil() as usize).clamp(2, width);
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        for _ in 0..self.n_trees {
            // Bootstrap sample.
            let mut bxs = Vec::with_capacity(n);
            let mut bys = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                bxs.push(xs[i].clone());
                bys.push(ys[i]);
            }
            // Random feature subset (excluding bias index 0 from removal).
            let mut features: Vec<usize> = (1..width).collect();
            for i in (1..features.len()).rev() {
                let j = rng.gen_range(0..=i);
                features.swap(i, j);
            }
            features.truncate(per_tree_features.saturating_sub(1).max(1));
            features.push(0);
            let mut tree =
                RegressionTree::with_spec(self.spec.clone(), self.max_depth, self.min_samples);
            tree.fit_matrix_with_features(&bxs, &bys, &features)?;
            self.trees.push(tree);
        }
        self.fallback = train.mean();
        Ok(())
    }

    fn forecast_next(&self, history: &[f64], t: usize, event_now: bool) -> f64 {
        if self.trees.is_empty() || history.is_empty() {
            return self.fallback;
        }
        let row = self.spec.row(history, t.max(history.len()), event_now);
        let sum: f64 = self.trees.iter().map(|tree| tree.predict_row(&row)).sum();
        (sum / self.trees.len() as f64).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::CityConfig;
    use crate::eval::{backtest, Metric};

    #[test]
    fn fit_is_deterministic_per_seed() {
        let cfg = CityConfig::new("sf", 31);
        let series = cfg.generate(cfg.samples_per_day() * 10, 0);
        let mut a = RandomForest::new(cfg.samples_per_day(), 5, 5, 10, 7);
        let mut b = RandomForest::new(cfg.samples_per_day(), 5, 5, 10, 7);
        a.fit(&series).unwrap();
        b.fit(&series).unwrap();
        assert_eq!(a, b);
        let mut c = RandomForest::new(cfg.samples_per_day(), 5, 5, 10, 8);
        c.fit(&series).unwrap();
        assert_ne!(a.trees, c.trees);
    }

    #[test]
    fn forest_beats_heuristic_on_seasonal_data() {
        use crate::models::MeanOfLastK;
        let cfg = CityConfig::new("sf", 32);
        let day = cfg.samples_per_day();
        let series = cfg.generate(day * 21, 0);
        let test_start = day * 14;
        let (train, _) = series.split_at(test_start);

        let mut forest = RandomForest::new(day, 10, 7, 8, 42);
        forest.fit(&train).unwrap();
        let mut heuristic = MeanOfLastK::new(5);
        heuristic.fit(&train).unwrap();

        let forest_mape = backtest(&forest, &series, test_start).get(Metric::Mape);
        let heuristic_mape = backtest(&heuristic, &series, test_start).get(Metric::Mape);
        assert!(
            forest_mape < heuristic_mape,
            "forest {forest_mape} should beat mean-of-last-5 {heuristic_mape}"
        );
    }

    #[test]
    fn averaging_smooths_single_tree() {
        let cfg = CityConfig::new("sf", 33);
        let day = cfg.samples_per_day();
        let series = cfg.generate(day * 14, 0);
        let mut forest = RandomForest::new(day, 8, 6, 8, 1);
        forest.fit(&series).unwrap();
        assert_eq!(forest.trees.len(), 8);
        let pred = forest.forecast_next(&series.values, series.len(), false);
        assert!(pred.is_finite() && pred >= 0.0);
    }

    #[test]
    fn too_short_series_rejected() {
        let mut forest = RandomForest::new(96, 3, 3, 10, 1);
        assert!(forest.fit(&TimeSeries::new(0, 1, vec![1.0; 20])).is_err());
    }
}
