//! Exponentially weighted moving average forecaster.

use super::{Forecaster, ModelError};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// EWMA with smoothing factor `alpha` in (0, 1]. The forecast for `t+1`
/// is the exponentially weighted mean of all history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    pub alpha: f64,
    pub fallback: f64,
}

impl Ewma {
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(1e-6, 1.0),
            fallback: 0.0,
        }
    }
}

impl Forecaster for Ewma {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<(), ModelError> {
        if train.is_empty() {
            return Err(ModelError::new("cannot fit on an empty series"));
        }
        self.fallback = train.mean();
        Ok(())
    }

    fn forecast_next(&self, history: &[f64], _t: usize, _event_now: bool) -> f64 {
        let mut state = None;
        // Bound the scan: weights older than ~60/alpha steps are negligible.
        let horizon = ((60.0 / self.alpha) as usize).min(history.len());
        for &v in &history[history.len() - horizon..] {
            state = Some(match state {
                None => v,
                Some(s) => self.alpha * v + (1.0 - self.alpha) * s,
            });
        }
        state.unwrap_or(self.fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_predicts_constant() {
        let m = Ewma::new(0.3);
        let history = vec![5.0; 100];
        assert!((m.forecast_next(&history, 100, false) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn recent_values_dominate() {
        let m = Ewma::new(0.5);
        let mut history = vec![0.0; 50];
        history.extend(vec![10.0; 10]);
        assert!(m.forecast_next(&history, 60, false) > 9.0);
    }

    #[test]
    fn alpha_clamped() {
        assert_eq!(Ewma::new(5.0).alpha, 1.0);
        assert!(Ewma::new(-1.0).alpha > 0.0);
    }

    #[test]
    fn empty_history_falls_back() {
        let mut m = Ewma::new(0.3);
        m.fit(&TimeSeries::new(0, 1, vec![4.0])).unwrap();
        assert_eq!(m.forecast_next(&[], 0, false), 4.0);
    }
}
