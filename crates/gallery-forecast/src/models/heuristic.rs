//! The heuristic baseline of §3.7: "a heuristic model which uses the mean
//! value of last 5 minutes as the forecasts. The heuristic model is stable
//! and consistent, but may not always produce the best performance."

use super::{Forecaster, ModelError};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Mean of the last `k` observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanOfLastK {
    pub k: usize,
    /// Fallback when no history exists (fit on the training mean).
    pub fallback: f64,
}

impl MeanOfLastK {
    pub fn new(k: usize) -> Self {
        MeanOfLastK {
            k: k.max(1),
            fallback: 0.0,
        }
    }
}

impl Forecaster for MeanOfLastK {
    fn name(&self) -> &'static str {
        "mean_of_last_k"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<(), ModelError> {
        if train.is_empty() {
            return Err(ModelError::new("cannot fit on an empty series"));
        }
        self.fallback = train.mean();
        Ok(())
    }

    fn forecast_next(&self, history: &[f64], _t: usize, _event_now: bool) -> f64 {
        if history.is_empty() {
            return self.fallback;
        }
        let start = history.len().saturating_sub(self.k);
        let window = &history[start..];
        window.iter().sum::<f64>() / window.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_window() {
        let mut m = MeanOfLastK::new(3);
        m.fit(&TimeSeries::new(0, 1, vec![10.0, 10.0])).unwrap();
        let history = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(m.forecast_next(&history, 5, false), 4.0);
    }

    #[test]
    fn short_history_uses_what_exists() {
        let m = MeanOfLastK::new(5);
        assert_eq!(m.forecast_next(&[2.0, 4.0], 2, false), 3.0);
    }

    #[test]
    fn empty_history_falls_back() {
        let mut m = MeanOfLastK::new(5);
        m.fit(&TimeSeries::new(0, 1, vec![7.0, 9.0])).unwrap();
        assert_eq!(m.forecast_next(&[], 0, false), 8.0);
    }

    #[test]
    fn empty_fit_rejected() {
        let mut m = MeanOfLastK::new(5);
        assert!(m.fit(&TimeSeries::new(0, 1, vec![])).is_err());
    }

    #[test]
    fn k_zero_clamped_to_one() {
        let m = MeanOfLastK::new(0);
        assert_eq!(m.k, 1);
        assert_eq!(m.forecast_next(&[1.0, 9.0], 2, false), 9.0);
    }
}
