//! The forecasting model zoo.
//!
//! All models implement [`Forecaster`]; [`AnyForecaster`] is the serde-
//! serializable sum type whose bytes become the opaque Gallery blob —
//! Gallery itself never interprets them (§3.1 "Model Neutral").

pub mod ewma;
pub mod forest;
pub mod heuristic;
pub mod linear;
pub mod seasonal;
pub mod tree;

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

pub use ewma::Ewma;
pub use forest::RandomForest;
pub use heuristic::MeanOfLastK;
pub use linear::RidgeForecaster;
pub use seasonal::SeasonalNaive;
pub use tree::RegressionTree;

/// Error while fitting or (de)serializing a model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelError {
    pub message: String,
}

impl ModelError {
    pub fn new(message: impl Into<String>) -> Self {
        ModelError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model error: {}", self.message)
    }
}

impl std::error::Error for ModelError {}

/// A one-step-ahead forecaster.
///
/// `forecast_next(history, t, event_now)` predicts the value at absolute
/// index `t` given `history[..t]` and whether a scheduled event covers `t`.
pub trait Forecaster: Send + Sync {
    fn name(&self) -> &'static str;
    fn fit(&mut self, train: &TimeSeries) -> Result<(), ModelError>;
    fn forecast_next(&self, history: &[f64], t: usize, event_now: bool) -> f64;
}

/// Serializable sum of every model class — the bytes Gallery stores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyForecaster {
    MeanOfLastK(MeanOfLastK),
    Ewma(Ewma),
    SeasonalNaive(SeasonalNaive),
    Ridge(RidgeForecaster),
    Tree(RegressionTree),
    Forest(RandomForest),
}

impl AnyForecaster {
    /// Serialize to an opaque blob (what `uploadModel` stores).
    pub fn to_blob(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("forecasters are always serializable")
    }

    /// Deserialize from an opaque blob (what serving fetches).
    pub fn from_blob(blob: &[u8]) -> Result<Self, ModelError> {
        serde_json::from_slice(blob).map_err(|e| ModelError::new(format!("bad model blob: {e}")))
    }

    fn inner(&self) -> &dyn Forecaster {
        match self {
            AnyForecaster::MeanOfLastK(m) => m,
            AnyForecaster::Ewma(m) => m,
            AnyForecaster::SeasonalNaive(m) => m,
            AnyForecaster::Ridge(m) => m,
            AnyForecaster::Tree(m) => m,
            AnyForecaster::Forest(m) => m,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn Forecaster {
        match self {
            AnyForecaster::MeanOfLastK(m) => m,
            AnyForecaster::Ewma(m) => m,
            AnyForecaster::SeasonalNaive(m) => m,
            AnyForecaster::Ridge(m) => m,
            AnyForecaster::Tree(m) => m,
            AnyForecaster::Forest(m) => m,
        }
    }
}

impl Forecaster for AnyForecaster {
    fn name(&self) -> &'static str {
        self.inner().name()
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<(), ModelError> {
        self.inner_mut().fit(train)
    }

    fn forecast_next(&self, history: &[f64], t: usize, event_now: bool) -> f64 {
        self.inner().forecast_next(history, t, event_now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citygen::CityConfig;

    #[test]
    fn any_forecaster_blob_roundtrip_all_variants() {
        let train = CityConfig::new("sf", 1).generate(96 * 14, 0);
        let variants: Vec<AnyForecaster> = vec![
            AnyForecaster::MeanOfLastK(MeanOfLastK::new(5)),
            AnyForecaster::Ewma(Ewma::new(0.3)),
            AnyForecaster::SeasonalNaive(SeasonalNaive::new(96)),
            AnyForecaster::Ridge(RidgeForecaster::standard(96, 1.0)),
            AnyForecaster::Tree(RegressionTree::new(96, 6, 10)),
            AnyForecaster::Forest(RandomForest::new(96, 5, 5, 20, 42)),
        ];
        for mut model in variants {
            model.fit(&train).unwrap();
            let blob = model.to_blob();
            let back = AnyForecaster::from_blob(&blob).unwrap();
            assert_eq!(back, model, "{} blob roundtrip", model.name());
            // restored model predicts identically
            let p1 = model.forecast_next(&train.values, train.len(), false);
            let p2 = back.forecast_next(&train.values, train.len(), false);
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn bad_blob_rejected() {
        assert!(AnyForecaster::from_blob(b"not a model").is_err());
    }
}
