//! Seasonal-naive forecaster: predict the value one season ago.

use super::{Forecaster, ModelError};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Predicts `history[t - period]`, averaged over the last `cycles`
/// occurrences when available (a seasonal moving average).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalNaive {
    pub period: usize,
    pub cycles: usize,
    pub fallback: f64,
}

impl SeasonalNaive {
    pub fn new(period: usize) -> Self {
        SeasonalNaive {
            period: period.max(1),
            cycles: 3,
            fallback: 0.0,
        }
    }

    pub fn cycles(mut self, cycles: usize) -> Self {
        self.cycles = cycles.max(1);
        self
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "seasonal_naive"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<(), ModelError> {
        if train.is_empty() {
            return Err(ModelError::new("cannot fit on an empty series"));
        }
        self.fallback = train.mean();
        Ok(())
    }

    fn forecast_next(&self, history: &[f64], _t: usize, _event_now: bool) -> f64 {
        let t = history.len();
        let mut sum = 0.0;
        let mut count = 0usize;
        for c in 1..=self.cycles {
            let offset = c * self.period;
            if t >= offset {
                sum += history[t - offset];
                count += 1;
            }
        }
        if count == 0 {
            if history.is_empty() {
                self.fallback
            } else {
                history[t - 1]
            }
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeats_last_season() {
        let m = SeasonalNaive::new(4).cycles(1);
        let history = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // t=6, period=4 -> history[2] = 3.0
        assert_eq!(m.forecast_next(&history, 6, false), 3.0);
    }

    #[test]
    fn averages_multiple_cycles() {
        let m = SeasonalNaive::new(2).cycles(2);
        let history = [10.0, 0.0, 20.0, 0.0];
        // offsets 2 and 4 -> history[2]=20, history[0]=10 -> 15
        assert_eq!(m.forecast_next(&history, 4, false), 15.0);
    }

    #[test]
    fn short_history_uses_last_value() {
        let m = SeasonalNaive::new(96);
        assert_eq!(m.forecast_next(&[7.0], 1, false), 7.0);
    }

    #[test]
    fn exact_on_perfectly_seasonal_data() {
        let m = SeasonalNaive::new(4).cycles(1);
        let pattern = [1.0, 5.0, 9.0, 2.0];
        let history: Vec<f64> = pattern.iter().cycle().take(40).copied().collect();
        for t in 8..40 {
            let pred = m.forecast_next(&history[..t], t, false);
            assert_eq!(pred, history[t], "t={t}");
        }
    }
}
