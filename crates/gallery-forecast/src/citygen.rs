//! Synthetic per-city demand generator.
//!
//! Uber's production traces are proprietary; this generator produces the
//! closest synthetic equivalent that exercises the same code paths
//! (DESIGN.md substitution table): per-city demand with daily and weekly
//! seasonality, market growth, noise — plus injectable *event windows*
//! (holidays, transit outages) whose demand multiplier creates the regime
//! changes that §4.2's dynamic model switching and §3.6's drift detection
//! depend on.

use crate::series::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// One special-event window (holiday, concert, transit outage).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventWindow {
    /// First affected sample index.
    pub start: usize,
    /// One past the last affected sample index.
    pub end: usize,
    /// Demand multiplier inside the window (e.g. 1.8 for a surge-heavy
    /// holiday, 0.5 for a lockdown-like slump).
    pub multiplier: f64,
}

/// Configuration of one synthetic city market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    pub name: String,
    /// Mean demand per interval at t=0.
    pub base_demand: f64,
    /// Multiplicative growth per week (Uber's "rapid growth in many
    /// markets"); 0.01 = +1%/week.
    pub weekly_growth: f64,
    /// Relative amplitude of the daily cycle (0–1).
    pub daily_amplitude: f64,
    /// Relative amplitude of the weekly cycle (0–1).
    pub weekly_amplitude: f64,
    /// Std-dev of multiplicative noise.
    pub noise_std: f64,
    /// Sampling interval in minutes.
    pub interval_minutes: u32,
    /// RNG seed (per-city, so fleets are reproducible).
    pub seed: u64,
    pub events: Vec<EventWindow>,
}

impl CityConfig {
    /// A reasonable mid-size market sampled every 15 minutes.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        CityConfig {
            name: name.into(),
            base_demand: 120.0,
            weekly_growth: 0.005,
            daily_amplitude: 0.45,
            weekly_amplitude: 0.20,
            noise_std: 0.06,
            interval_minutes: 15,
            seed,
            events: Vec::new(),
        }
    }

    pub fn base_demand(mut self, v: f64) -> Self {
        self.base_demand = v;
        self
    }

    pub fn weekly_growth(mut self, v: f64) -> Self {
        self.weekly_growth = v;
        self
    }

    pub fn noise_std(mut self, v: f64) -> Self {
        self.noise_std = v;
        self
    }

    pub fn with_event(mut self, event: EventWindow) -> Self {
        self.events.push(event);
        self
    }

    /// Samples per day at this config's interval.
    pub fn samples_per_day(&self) -> usize {
        (24 * 60 / self.interval_minutes) as usize
    }

    /// Samples per week.
    pub fn samples_per_week(&self) -> usize {
        self.samples_per_day() * 7
    }

    /// Generate `n` samples starting at `start_ms`.
    pub fn generate(&self, n: usize, start_ms: i64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let noise = Normal::new(0.0, self.noise_std.max(1e-12)).expect("valid std");
        let per_day = self.samples_per_day() as f64;
        let per_week = self.samples_per_week() as f64;
        let mut values = Vec::with_capacity(n);
        let mut flags = vec![false; n];
        for event in &self.events {
            for flag in flags.iter_mut().take(event.end.min(n)).skip(event.start) {
                *flag = true;
            }
        }
        for i in 0..n {
            let t = i as f64;
            // Daily cycle peaking in the evening commute.
            let daily = 1.0 + self.daily_amplitude * (TAU * (t / per_day) - 0.7 * TAU).sin();
            // Weekly cycle peaking on weekends.
            let weekly = 1.0 + self.weekly_amplitude * (TAU * t / per_week).sin();
            let growth = (1.0 + self.weekly_growth).powf(t / per_week);
            let mut demand = self.base_demand * daily * weekly * growth;
            for event in &self.events {
                if i >= event.start && i < event.end {
                    demand *= event.multiplier;
                }
            }
            demand *= 1.0 + noise.sample(&mut rng);
            values.push(demand.max(0.0));
        }
        TimeSeries::new(start_ms, self.interval_minutes as i64 * 60_000, values).with_events(flags)
    }
}

/// Build a reproducible fleet of city configurations with varied market
/// parameters (the paper's "hundreds of cities ... different growth
/// stages"). City `i` gets seed `base_seed + i` and parameters scaled by a
/// few deterministic patterns.
pub fn city_fleet(count: usize, base_seed: u64) -> Vec<CityConfig> {
    (0..count)
        .map(|i| {
            let name = format!("city_{i:03}");
            CityConfig::new(name, base_seed + i as u64)
                .base_demand(40.0 + 17.0 * (i % 13) as f64)
                .weekly_growth(0.002 * (i % 5) as f64)
                .noise_std(0.04 + 0.01 * (i % 4) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = CityConfig::new("sf", 7).generate(500, 0);
        let b = CityConfig::new("sf", 7).generate(500, 0);
        assert_eq!(a, b);
        let c = CityConfig::new("sf", 8).generate(500, 0);
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn demand_is_nonnegative_and_plausible() {
        let s = CityConfig::new("sf", 1).generate(2_000, 0);
        assert!(s.values.iter().all(|v| *v >= 0.0));
        assert!(s.mean() > 50.0 && s.mean() < 300.0, "mean {}", s.mean());
    }

    #[test]
    fn daily_seasonality_visible() {
        let cfg = CityConfig::new("sf", 2).noise_std(0.0);
        let s = cfg.generate(cfg.samples_per_day() * 7, 0);
        let per_day = cfg.samples_per_day();
        // demand at the daily peak hour beats the daily trough
        let day0: Vec<f64> = s.values[..per_day].to_vec();
        let max = day0.iter().copied().fold(f64::MIN, f64::max);
        let min = day0.iter().copied().fold(f64::MAX, f64::min);
        assert!(max / min > 1.5, "daily swing {max}/{min}");
    }

    #[test]
    fn growth_raises_later_weeks() {
        let cfg = CityConfig::new("sf", 3).weekly_growth(0.05).noise_std(0.0);
        let s = cfg.generate(cfg.samples_per_week() * 8, 0);
        let w = cfg.samples_per_week();
        let first: f64 = s.values[..w].iter().sum();
        let last: f64 = s.values[7 * w..].iter().sum();
        assert!(last > first * 1.3, "growth not visible: {first} -> {last}");
    }

    #[test]
    fn events_multiply_and_flag() {
        let mut cfg = CityConfig::new("sf", 4).noise_std(0.0);
        let n = cfg.samples_per_day();
        cfg = cfg.with_event(EventWindow {
            start: 10,
            end: 20,
            multiplier: 2.0,
        });
        let with = cfg.generate(n, 0);
        let without = CityConfig::new("sf", 4).noise_std(0.0).generate(n, 0);
        for i in 10..20 {
            assert!(with.event_flags[i]);
            assert!((with.values[i] / without.values[i] - 2.0).abs() < 1e-9);
        }
        assert!(!with.event_flags[9]);
        assert_eq!(with.values[9], without.values[9]);
    }

    #[test]
    fn fleet_is_varied_and_reproducible() {
        let fleet = city_fleet(20, 100);
        assert_eq!(fleet.len(), 20);
        let demands: std::collections::BTreeSet<u64> =
            fleet.iter().map(|c| c.base_demand as u64).collect();
        assert!(demands.len() > 5, "fleet parameters should vary");
        let again = city_fleet(20, 100);
        assert_eq!(fleet, again);
    }
}
