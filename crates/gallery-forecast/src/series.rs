//! Time series container used across the forecasting substrate.

use serde::{Deserialize, Serialize};

/// A regularly sampled univariate series (e.g. trip demand per interval for
/// one city), with an aligned boolean flag per point marking special events
/// (holidays, transit outages — §4.2's "dynamic model switching" inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Epoch ms of the first sample.
    pub start_ms: i64,
    /// Sampling interval in ms.
    pub interval_ms: i64,
    pub values: Vec<f64>,
    /// `event_flags[i]` marks sample `i` as inside a special event window.
    pub event_flags: Vec<bool>,
}

impl TimeSeries {
    pub fn new(start_ms: i64, interval_ms: i64, values: Vec<f64>) -> Self {
        let n = values.len();
        TimeSeries {
            start_ms,
            interval_ms,
            values,
            event_flags: vec![false; n],
        }
    }

    pub fn with_events(mut self, flags: Vec<bool>) -> Self {
        assert_eq!(
            flags.len(),
            self.values.len(),
            "event flags must align with values"
        );
        self.event_flags = flags;
        self
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp of sample `i`.
    pub fn timestamp(&self, i: usize) -> i64 {
        self.start_ms + self.interval_ms * i as i64
    }

    /// Split at index: `(prefix, suffix)`; suffix keeps correct timestamps.
    pub fn split_at(&self, index: usize) -> (TimeSeries, TimeSeries) {
        let index = index.min(self.len());
        let head = TimeSeries {
            start_ms: self.start_ms,
            interval_ms: self.interval_ms,
            values: self.values[..index].to_vec(),
            event_flags: self.event_flags[..index].to_vec(),
        };
        let tail = TimeSeries {
            start_ms: self.timestamp(index),
            interval_ms: self.interval_ms,
            values: self.values[index..].to_vec(),
            event_flags: self.event_flags[index..].to_vec(),
        };
        (head, tail)
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(1_000, 60_000, (0..10).map(|i| i as f64).collect())
    }

    #[test]
    fn timestamps() {
        let s = series();
        assert_eq!(s.timestamp(0), 1_000);
        assert_eq!(s.timestamp(3), 1_000 + 3 * 60_000);
    }

    #[test]
    fn split_preserves_timestamps() {
        let s = series();
        let (head, tail) = s.split_at(4);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.len(), 6);
        assert_eq!(tail.start_ms, s.timestamp(4));
        assert_eq!(tail.values[0], 4.0);
        assert_eq!(tail.timestamp(1), s.timestamp(5));
    }

    #[test]
    fn split_out_of_range_clamps() {
        let s = series();
        let (head, tail) = s.split_at(100);
        assert_eq!(head.len(), 10);
        assert!(tail.is_empty());
    }

    #[test]
    fn stats() {
        let s = series();
        assert_eq!(s.mean(), 4.5);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_events_panic() {
        let _ = series().with_events(vec![true; 3]);
    }
}
