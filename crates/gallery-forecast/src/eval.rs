//! Forecast evaluation: the metrics the paper's rules and case studies use
//! (MAPE, MAE, RMSE, bias, R² — §3.3.3, §4.2) and a rolling one-step-ahead
//! backtest harness.

use crate::models::Forecaster;
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// The standard regression metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    Mape,
    Mae,
    Rmse,
    Bias,
    R2,
}

impl Metric {
    pub fn name(self) -> &'static str {
        match self {
            Metric::Mape => "mape",
            Metric::Mae => "mae",
            Metric::Rmse => "rmse",
            Metric::Bias => "bias",
            Metric::R2 => "r2",
        }
    }
}

/// Evaluation result over a test window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    pub mape: f64,
    pub mae: f64,
    pub rmse: f64,
    pub bias: f64,
    pub r2: f64,
    pub n: usize,
}

impl EvalReport {
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Mape => self.mape,
            Metric::Mae => self.mae,
            Metric::Rmse => self.rmse,
            Metric::Bias => self.bias,
            Metric::R2 => self.r2,
        }
    }

    /// As `<metric>:<value>` pairs for Gallery's metric blob format.
    pub fn to_pairs(&self) -> Vec<(String, f64)> {
        vec![
            ("mape".into(), self.mape),
            ("mae".into(), self.mae),
            ("rmse".into(), self.rmse),
            ("bias".into(), self.bias),
            ("r2".into(), self.r2),
        ]
    }
}

/// Compute all metrics from prediction/actual pairs. MAPE skips zero
/// actuals (standard practice); bias is mean(pred - actual).
pub fn evaluate(predictions: &[f64], actuals: &[f64]) -> EvalReport {
    assert_eq!(predictions.len(), actuals.len(), "pred/actual misaligned");
    let n = predictions.len();
    if n == 0 {
        return EvalReport {
            mape: 0.0,
            mae: 0.0,
            rmse: 0.0,
            bias: 0.0,
            r2: 0.0,
            n: 0,
        };
    }
    let nf = n as f64;
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut bias_sum = 0.0;
    let mut ape_sum = 0.0;
    let mut ape_n = 0usize;
    for (&p, &a) in predictions.iter().zip(actuals) {
        let err = p - a;
        abs_sum += err.abs();
        sq_sum += err * err;
        bias_sum += err;
        if a.abs() > 1e-9 {
            ape_sum += (err / a).abs();
            ape_n += 1;
        }
    }
    let actual_mean = actuals.iter().sum::<f64>() / nf;
    let ss_tot: f64 = actuals.iter().map(|a| (a - actual_mean).powi(2)).sum();
    let r2 = if ss_tot > 1e-12 {
        1.0 - sq_sum / ss_tot
    } else {
        0.0
    };
    EvalReport {
        mape: if ape_n == 0 {
            0.0
        } else {
            ape_sum / ape_n as f64
        },
        mae: abs_sum / nf,
        rmse: (sq_sum / nf).sqrt(),
        bias: bias_sum / nf,
        r2,
        n,
    }
}

/// Rolling one-step-ahead backtest: for each test index `t >= test_start`,
/// forecast `series[t]` from `series[..t]` (the model was fit on data
/// before `test_start`; history grows as actuals arrive, matching a
/// production serving loop).
pub fn backtest(model: &dyn Forecaster, series: &TimeSeries, test_start: usize) -> EvalReport {
    let mut predictions = Vec::with_capacity(series.len().saturating_sub(test_start));
    let mut actuals = Vec::with_capacity(predictions.capacity());
    for t in test_start..series.len() {
        let pred = model.forecast_next(&series.values[..t], t, series.event_flags[t]);
        predictions.push(pred);
        actuals.push(series.values[t]);
    }
    evaluate(&predictions, &actuals)
}

/// Backtest restricted to indices where `mask(t)` holds (e.g. only event
/// windows — used by the §4.2 switching analysis).
pub fn backtest_where(
    model: &dyn Forecaster,
    series: &TimeSeries,
    test_start: usize,
    mask: impl Fn(usize) -> bool,
) -> EvalReport {
    let mut predictions = Vec::new();
    let mut actuals = Vec::new();
    for t in test_start..series.len() {
        if !mask(t) {
            continue;
        }
        let pred = model.forecast_next(&series.values[..t], t, series.event_flags[t]);
        predictions.push(pred);
        actuals.push(series.values[t]);
    }
    evaluate(&predictions, &actuals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Forecaster, MeanOfLastK};

    #[test]
    fn perfect_predictions() {
        let r = evaluate(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(r.mape, 0.0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.bias, 0.0);
        assert!((r.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_values() {
        // preds 10% above actuals
        let actuals = [10.0, 20.0, 40.0];
        let preds = [11.0, 22.0, 44.0];
        let r = evaluate(&preds, &actuals);
        assert!((r.mape - 0.1).abs() < 1e-12);
        assert!((r.bias - (1.0 + 2.0 + 4.0) / 3.0).abs() < 1e-12);
        assert!((r.mae - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let r = evaluate(&[1.0, 5.0], &[0.0, 10.0]);
        assert!((r.mape - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bias_sign_distinguishes_over_and_under() {
        let over = evaluate(&[12.0], &[10.0]);
        let under = evaluate(&[8.0], &[10.0]);
        assert!(over.bias > 0.0);
        assert!(under.bias < 0.0);
    }

    #[test]
    fn empty_inputs() {
        let r = evaluate(&[], &[]);
        assert_eq!(r.n, 0);
        assert_eq!(r.mape, 0.0);
    }

    #[test]
    fn backtest_runs_rolling() {
        let series = TimeSeries::new(0, 1, vec![5.0; 100]);
        let mut model = MeanOfLastK::new(5);
        model.fit(&series).unwrap();
        let r = backtest(&model, &series, 50);
        assert_eq!(r.n, 50);
        assert!(r.mae < 1e-12, "constant series is perfectly predictable");
    }

    #[test]
    fn backtest_where_filters() {
        let series = TimeSeries::new(0, 1, vec![5.0; 100]);
        let model = MeanOfLastK::new(5);
        let r = backtest_where(&model, &series, 50, |t| t % 2 == 0);
        assert_eq!(r.n, 25);
    }

    #[test]
    fn report_pairs_roundtrip_via_metric_blob() {
        let r = evaluate(&[1.0, 2.0], &[1.5, 2.5]);
        let pairs = r.to_pairs();
        let blob = gallery_core::metrics::format_metric_blob(&pairs);
        let parsed = gallery_core::metrics::parse_metric_blob(&blob).unwrap();
        assert_eq!(parsed.len(), 5);
    }
}
