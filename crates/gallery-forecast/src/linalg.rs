//! Minimal dense linear algebra for the ridge-regression forecaster:
//! normal equations assembled from a row-major design matrix, solved by
//! Gaussian elimination with partial pivoting.

/// Solve `A x = b` for square `A` (row-major), in place, with partial
/// pivoting. Returns `None` for singular (or numerically singular) systems.
#[allow(clippy::needless_range_loop)] // index form mirrors the textbook elimination
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    if a.len() != n || a.iter().any(|row| row.len() != n) {
        return None;
    }
    for col in 0..n {
        // Partial pivot: largest magnitude in this column at/below row=col.
        let pivot_row = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                let upper = a[col][k];
                a[row][k] -= factor * upper;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in row + 1..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[allow(clippy::needless_range_loop)] // symmetric-matrix assembly is clearest indexed
/// Assemble and solve the ridge normal equations
/// `(Xᵀ X + λ I_reg) w = Xᵀ y`, where the bias column (index 0) is not
/// regularized.
pub fn ridge_fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let n = xs.len();
    if n == 0 || n != ys.len() {
        return None;
    }
    let d = xs[0].len();
    if xs.iter().any(|r| r.len() != d) {
        return None;
    }
    let mut xtx = vec![vec![0.0; d]; d];
    let mut xty = vec![0.0; d];
    for (row, &y) in xs.iter().zip(ys) {
        for i in 0..d {
            xty[i] += row[i] * y;
            for j in i..d {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle and add the ridge (skipping the bias).
    for i in 0..d {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
        if i > 0 {
            xtx[i][i] += lambda;
        }
    }
    solve(xtx, xty)
}

/// Dot product (used at predict time).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero pivot forces a row swap
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_3x3() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(a, vec![8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expect) {
            assert!((xi - ei).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn shape_mismatch_detected() {
        assert!(solve(vec![vec![1.0, 2.0]], vec![1.0, 2.0]).is_none());
        assert!(ridge_fit(&[vec![1.0]], &[1.0, 2.0], 0.1).is_none());
    }

    #[test]
    fn ridge_recovers_linear_function() {
        // y = 2 + 3a - b, exactly.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                xs.push(vec![1.0, a as f64, b as f64]);
                ys.push(2.0 + 3.0 * a as f64 - b as f64);
            }
        }
        let w = ridge_fit(&xs, &ys, 1e-8).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-4, "{w:?}");
        assert!((w[1] - 3.0).abs() < 1e-6);
        assert!((w[2] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![1.0, i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 5.0 * r[1]).collect();
        let w_small = ridge_fit(&xs, &ys, 1e-9).unwrap();
        let w_big = ridge_fit(&xs, &ys, 1e4).unwrap();
        assert!(w_big[1].abs() < w_small[1].abs());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
