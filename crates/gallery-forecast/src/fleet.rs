//! Fleet training: the §4.2 workflow — per city, train each model class,
//! serialize to an opaque blob, upload to Gallery with searchable
//! metadata, and record backtest metrics. This is the bridge the case
//! studies and examples drive.

use crate::citygen::CityConfig;
use crate::eval::backtest;
use crate::models::{AnyForecaster, Forecaster, ModelError};
use crate::series::TimeSeries;
use bytes::Bytes;
use gallery_core::metadata::{fields, Metadata};
use gallery_core::{
    Gallery, GalleryError, InstanceId, InstanceSpec, MetricScope, Model, ModelId, ModelSpec,
};

/// Error from fleet operations.
#[derive(Debug)]
pub enum FleetError {
    Gallery(GalleryError),
    Model(ModelError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Gallery(e) => write!(f, "{e}"),
            FleetError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<GalleryError> for FleetError {
    fn from(e: GalleryError) -> Self {
        FleetError::Gallery(e)
    }
}

impl From<ModelError> for FleetError {
    fn from(e: ModelError) -> Self {
        FleetError::Model(e)
    }
}

/// One trained-and-registered instance.
#[derive(Debug, Clone)]
pub struct TrainedEntry {
    pub city: String,
    pub model_class: &'static str,
    pub model_id: ModelId,
    pub instance_id: InstanceId,
    pub validation_mape: f64,
}

/// Registers one Gallery model per (city, model-class) pair and uploads
/// trained instances with reproducibility metadata.
pub struct FleetTrainer<'g> {
    pub gallery: &'g Gallery,
    pub project: String,
    pub model_domain: String,
}

impl<'g> FleetTrainer<'g> {
    pub fn new(gallery: &'g Gallery, project: impl Into<String>) -> Self {
        FleetTrainer {
            gallery,
            project: project.into(),
            model_domain: "UberX".into(),
        }
    }

    /// Register the Gallery model for a (city, model-class) pair. Base
    /// version id encodes the approach, e.g. `demand_forecast/city_003/ridge`.
    pub fn register_model(&self, city: &str, model_class: &str) -> Result<Model, FleetError> {
        let base = format!("demand_forecast/{city}/{model_class}");
        Ok(self.gallery.create_model(
            ModelSpec::new(self.project.clone(), base)
                .name(model_class)
                .owner("marketplace-forecasting")
                .description(format!(
                    "per-city demand forecaster ({model_class}) for {city}"
                ))
                .metadata(
                    Metadata::new()
                        .with(fields::CITY, city)
                        .with(fields::MODEL_DOMAIN, self.model_domain.clone()),
                ),
        )?)
    }

    /// Train one model on `train`, upload the blob, backtest on
    /// `full_series[test_start..]`, and record validation metrics.
    pub fn train_and_upload(
        &self,
        model: &Model,
        mut forecaster: AnyForecaster,
        city: &CityConfig,
        train: &TimeSeries,
        full_series: &TimeSeries,
        test_start: usize,
    ) -> Result<TrainedEntry, FleetError> {
        forecaster.fit(train)?;
        let report = backtest(&forecaster, full_series, test_start);
        let metadata = Metadata::new()
            .with(fields::CITY, city.name.clone())
            .with(fields::MODEL_NAME, forecaster.name())
            .with(fields::MODEL_TYPE, "gallery-forecast")
            .with(fields::MODEL_DOMAIN, self.model_domain.clone())
            .with(fields::TRAINING_FRAMEWORK, "gallery-forecast/0.1")
            .with(
                fields::TRAINING_DATA,
                format!("citygen://{}/{}", city.name, city.seed),
            )
            .with(fields::TRAINING_DATA_VERSION, format!("n={}", train.len()))
            .with(
                fields::TRAINING_CODE,
                "crates/gallery-forecast/src/fleet.rs",
            )
            .with(fields::FEATURES, "lags,daily_fourier,weekly_fourier")
            .with(fields::HYPERPARAMETERS, format!("{:?}", forecaster.name()))
            .with(fields::RANDOM_SEED, city.seed as i64);
        let instance = self.gallery.upload_instance(
            &model.id,
            InstanceSpec::new().metadata(metadata),
            Bytes::from(forecaster.to_blob()),
        )?;
        for (name, value) in report.to_pairs() {
            self.gallery.insert_metric(
                &instance.id,
                gallery_core::MetricSpec::new(name, MetricScope::Validation, value),
            )?;
        }
        Ok(TrainedEntry {
            city: city.name.clone(),
            model_class: forecaster.name(),
            model_id: model.id.clone(),
            instance_id: instance.id,
            validation_mape: report.mape,
        })
    }

    /// Fetch a stored instance's blob and rebuild the forecaster — the
    /// simulation platform's "instantiate such models as they're needed"
    /// path (§4.3).
    pub fn load_forecaster(&self, instance_id: &InstanceId) -> Result<AnyForecaster, FleetError> {
        let blob = self.gallery.fetch_instance_blob(instance_id)?;
        Ok(AnyForecaster::from_blob(&blob)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::MeanOfLastK;

    #[test]
    fn train_upload_reload_predicts_identically() {
        let gallery = Gallery::in_memory();
        let trainer = FleetTrainer::new(&gallery, "marketplace");
        let cfg = CityConfig::new("sf", 5);
        let day = cfg.samples_per_day();
        let series = cfg.generate(day * 10, 0);
        let (train, _) = series.split_at(day * 7);
        let model = trainer.register_model("sf", "mean_of_last_k").unwrap();
        let entry = trainer
            .train_and_upload(
                &model,
                AnyForecaster::MeanOfLastK(MeanOfLastK::new(5)),
                &cfg,
                &train,
                &series,
                day * 7,
            )
            .unwrap();
        // metrics recorded
        let mape = gallery
            .latest_metric(&entry.instance_id, "mape", MetricScope::Validation)
            .unwrap()
            .unwrap();
        assert!((mape.value - entry.validation_mape).abs() < 1e-12);
        // reload from blob and compare predictions
        let restored = trainer.load_forecaster(&entry.instance_id).unwrap();
        let p = restored.forecast_next(&series.values, series.len(), false);
        let mut fresh = AnyForecaster::MeanOfLastK(MeanOfLastK::new(5));
        fresh.fit(&train).unwrap();
        assert_eq!(p, fresh.forecast_next(&series.values, series.len(), false));
        // reproducibility metadata is complete
        let health = gallery.health_report(&entry.instance_id).unwrap();
        assert!(
            health.missing_fields.is_empty(),
            "{:?}",
            health.missing_fields
        );
    }
}
