//! Feature extraction for the regression-based forecasters.
//!
//! One-step-ahead supervised framing: the target at index `t` is
//! `series[t]`; features are recent lags, Fourier terms encoding
//! time-of-day and day-of-week, and (optionally) the event flag — the
//! "holiday/event features" that §4.2's event-aware models include and the
//! static models do not.

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// Which features a model consumes. Stored inside the serialized model
/// blob so serving rebuilds exactly the training-time features (§3.3.2
/// reproducibility).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Lag offsets in samples, e.g. `[1, 2, 3, 96]`.
    pub lags: Vec<usize>,
    /// Samples per day (for time-of-day Fourier terms); 0 disables.
    pub samples_per_day: usize,
    /// Include day-of-week Fourier terms (needs `samples_per_day > 0`).
    pub weekly: bool,
    /// Include the event/holiday flag as a 0/1 feature.
    pub event_flag: bool,
}

impl FeatureSpec {
    /// Sensible default for 15-minute demand data: short lags + the same
    /// time yesterday, daily and weekly seasonality encodings.
    pub fn standard(samples_per_day: usize) -> Self {
        FeatureSpec {
            lags: vec![1, 2, 3, samples_per_day.max(4)],
            samples_per_day,
            weekly: true,
            event_flag: false,
        }
    }

    /// The event-aware variant (§4.2 "models that include holiday/event
    /// features").
    pub fn with_event_flag(mut self) -> Self {
        self.event_flag = true;
        self
    }

    /// Smallest index that has all lags available.
    pub fn min_index(&self) -> usize {
        self.lags.iter().copied().max().unwrap_or(0)
    }

    /// Total feature vector width (including the bias term).
    pub fn width(&self) -> usize {
        let mut w = 1 + self.lags.len(); // bias + lags
        if self.samples_per_day > 0 {
            w += 2; // daily sin/cos
            if self.weekly {
                w += 2; // weekly sin/cos
            }
        }
        if self.event_flag {
            w += 1;
        }
        w
    }

    /// Build the feature row for predicting index `t` from `history[..t]`.
    /// `event_now` is the event flag of the point being predicted (known
    /// in advance for scheduled holidays/events).
    pub fn row(&self, history: &[f64], t: usize, event_now: bool) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.width());
        row.push(1.0); // bias
        for &lag in &self.lags {
            let v = if t >= lag {
                history[t - lag]
            } else {
                history[0]
            };
            row.push(v);
        }
        if self.samples_per_day > 0 {
            let day_pos = TAU * (t % self.samples_per_day) as f64 / self.samples_per_day as f64;
            row.push(day_pos.sin());
            row.push(day_pos.cos());
            if self.weekly {
                let per_week = self.samples_per_day * 7;
                let week_pos = TAU * (t % per_week) as f64 / per_week as f64;
                row.push(week_pos.sin());
                row.push(week_pos.cos());
            }
        }
        if self.event_flag {
            row.push(if event_now { 1.0 } else { 0.0 });
        }
        row
    }

    /// Build the full supervised design matrix and target vector over a
    /// training series.
    pub fn design_matrix(&self, series: &TimeSeries) -> (Vec<Vec<f64>>, Vec<f64>) {
        let start = self.min_index();
        let mut xs = Vec::with_capacity(series.len().saturating_sub(start));
        let mut ys = Vec::with_capacity(series.len().saturating_sub(start));
        for t in start..series.len() {
            xs.push(self.row(&series.values, t, series.event_flags[t]));
            ys.push(series.values[t]);
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> TimeSeries {
        TimeSeries::new(0, 60_000, (0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn width_matches_row_length() {
        for spec in [
            FeatureSpec::standard(96),
            FeatureSpec::standard(96).with_event_flag(),
            FeatureSpec {
                lags: vec![1],
                samples_per_day: 0,
                weekly: false,
                event_flag: false,
            },
        ] {
            let s = series(200);
            let row = spec.row(&s.values, 100, true);
            assert_eq!(row.len(), spec.width(), "spec {spec:?}");
        }
    }

    #[test]
    fn lags_pick_correct_values() {
        let spec = FeatureSpec {
            lags: vec![1, 5],
            samples_per_day: 0,
            weekly: false,
            event_flag: false,
        };
        let s = series(50);
        let row = spec.row(&s.values, 20, false);
        assert_eq!(row, vec![1.0, 19.0, 15.0]);
    }

    #[test]
    fn event_flag_appended() {
        let spec = FeatureSpec {
            lags: vec![1],
            samples_per_day: 0,
            weekly: false,
            event_flag: true,
        };
        let s = series(10);
        assert_eq!(spec.row(&s.values, 5, true).last(), Some(&1.0));
        assert_eq!(spec.row(&s.values, 5, false).last(), Some(&0.0));
    }

    #[test]
    fn design_matrix_shapes() {
        let spec = FeatureSpec::standard(96);
        let s = series(300);
        let (xs, ys) = spec.design_matrix(&s);
        assert_eq!(xs.len(), 300 - spec.min_index());
        assert_eq!(xs.len(), ys.len());
        assert!(xs.iter().all(|r| r.len() == spec.width()));
        // target aligns: first target is series[min_index]
        assert_eq!(ys[0], spec.min_index() as f64);
    }

    #[test]
    fn daily_fourier_periodicity() {
        let spec = FeatureSpec {
            lags: vec![1],
            samples_per_day: 96,
            weekly: false,
            event_flag: false,
        };
        let s = series(300);
        let a = spec.row(&s.values, 100, false);
        let b = spec.row(&s.values, 196, false); // one day later
                                                 // Fourier terms identical one period apart (indices 2 and 3).
        assert!((a[2] - b[2]).abs() < 1e-12);
        assert!((a[3] - b[3]).abs() < 1e-12);
    }
}
