//! Champion serving with a guarded heuristic fallback (§3.7).
//!
//! "We have a heuristic model which ... is stable and consistent, but may
//! not always produce the best performance. We also have complex
//! forecasting models ... generally better performing but may not perform
//! well when there are unanticipated events ... Therefore, we can combine
//! the benefits of different models to achieve the overall best
//! performance by using the model metrics in Gallery to make decisions."
//!
//! [`GuardedServing`] serves the champion while its recent rolling error
//! stays within a guardrail relative to the fallback's, and switches to
//! the stable heuristic the moment the champion misbehaves — recovering
//! automatically once the champion is healthy again.

use crate::models::Forecaster;
use std::collections::VecDeque;

/// Which model served a given interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    Champion,
    Fallback,
}

/// Rolling absolute-percentage-error window for one model.
#[derive(Debug, Clone)]
struct RollingError {
    window: usize,
    errors: VecDeque<f64>,
}

impl RollingError {
    fn new(window: usize) -> Self {
        RollingError {
            window: window.max(1),
            errors: VecDeque::new(),
        }
    }

    fn observe(&mut self, prediction: f64, actual: f64) {
        if actual.abs() > 1e-9 {
            if self.errors.len() == self.window {
                self.errors.pop_front();
            }
            self.errors
                .push_back(((prediction - actual) / actual).abs());
        }
    }

    fn mape(&self) -> Option<f64> {
        if self.errors.is_empty() {
            None
        } else {
            Some(self.errors.iter().sum::<f64>() / self.errors.len() as f64)
        }
    }

    fn is_warm(&self) -> bool {
        self.errors.len() >= self.window
    }
}

/// Champion + guarded fallback serving policy.
pub struct GuardedServing<'a> {
    champion: &'a dyn Forecaster,
    fallback: &'a dyn Forecaster,
    champion_err: RollingError,
    fallback_err: RollingError,
    /// Serve the fallback when champion MAPE > ratio * fallback MAPE.
    guardrail_ratio: f64,
    switches: u64,
    served_champion: u64,
    served_fallback: u64,
}

impl<'a> GuardedServing<'a> {
    pub fn new(
        champion: &'a dyn Forecaster,
        fallback: &'a dyn Forecaster,
        window: usize,
        guardrail_ratio: f64,
    ) -> Self {
        GuardedServing {
            champion,
            fallback,
            champion_err: RollingError::new(window),
            fallback_err: RollingError::new(window),
            guardrail_ratio: guardrail_ratio.max(1.0),
            switches: 0,
            served_champion: 0,
            served_fallback: 0,
        }
    }

    /// Which model would serve right now.
    pub fn current_choice(&self) -> Served {
        match (self.champion_err.mape(), self.fallback_err.mape()) {
            (Some(c), Some(f)) if self.champion_err.is_warm() && c > self.guardrail_ratio * f => {
                Served::Fallback
            }
            _ => Served::Champion,
        }
    }

    /// Serve one interval: both models predict (shadow evaluation), the
    /// chosen model's prediction is returned, and once the actual arrives
    /// the caller reports it via [`GuardedServing::observe`].
    pub fn serve(&mut self, history: &[f64], t: usize, event_now: bool) -> (f64, Served) {
        let choice = self.current_choice();
        let prediction = match choice {
            Served::Champion => {
                self.served_champion += 1;
                self.champion.forecast_next(history, t, event_now)
            }
            Served::Fallback => {
                self.served_fallback += 1;
                self.fallback.forecast_next(history, t, event_now)
            }
        };
        (prediction, choice)
    }

    /// Report the actual value for interval `t`; both models' shadow
    /// predictions are scored so the guardrail always has fresh evidence.
    pub fn observe(&mut self, history: &[f64], t: usize, event_now: bool, actual: f64) {
        let before = self.current_choice();
        let champion_pred = self.champion.forecast_next(history, t, event_now);
        let fallback_pred = self.fallback.forecast_next(history, t, event_now);
        self.champion_err.observe(champion_pred, actual);
        self.fallback_err.observe(fallback_pred, actual);
        if self.current_choice() != before {
            self.switches += 1;
        }
    }

    pub fn switches(&self) -> u64 {
        self.switches
    }

    pub fn served_counts(&self) -> (u64, u64) {
        (self.served_champion, self.served_fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelError;
    use crate::series::TimeSeries;

    /// A forecaster with a fixed bias factor against the true value 100.
    struct Scripted {
        factor: f64,
    }

    impl Forecaster for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn fit(&mut self, _train: &TimeSeries) -> Result<(), ModelError> {
            Ok(())
        }
        fn forecast_next(&self, _history: &[f64], t: usize, _event: bool) -> f64 {
            100.0 * self.factor(t)
        }
    }

    impl Scripted {
        fn factor(&self, _t: usize) -> f64 {
            self.factor
        }
    }

    /// A forecaster that is accurate before `break_at` and wild after.
    struct Breaking {
        break_at: usize,
    }

    impl Forecaster for Breaking {
        fn name(&self) -> &'static str {
            "breaking"
        }
        fn fit(&mut self, _train: &TimeSeries) -> Result<(), ModelError> {
            Ok(())
        }
        fn forecast_next(&self, _history: &[f64], t: usize, _event: bool) -> f64 {
            if t < self.break_at {
                100.0
            } else {
                400.0 // champion misbehaving
            }
        }
    }

    #[test]
    fn healthy_champion_keeps_serving() {
        let champion = Scripted { factor: 1.01 }; // 1% error
        let fallback = Scripted { factor: 1.10 }; // 10% error
        let mut policy = GuardedServing::new(&champion, &fallback, 5, 1.5);
        for t in 0..50 {
            let (_, served) = policy.serve(&[], t, false);
            assert_eq!(served, Served::Champion, "t={t}");
            policy.observe(&[], t, false, 100.0);
        }
        assert_eq!(policy.switches(), 0);
    }

    #[test]
    fn broken_champion_falls_back_and_recovers() {
        let champion = Breaking { break_at: 20 };
        let fallback = Scripted { factor: 1.05 };
        let mut policy = GuardedServing::new(&champion, &fallback, 5, 1.5);
        let mut served_after_break = Vec::new();
        for t in 0..40 {
            let (_, served) = policy.serve(&[], t, false);
            if t >= 26 {
                served_after_break.push(served);
            }
            policy.observe(&[], t, false, 100.0);
        }
        assert!(
            served_after_break.iter().all(|s| *s == Served::Fallback),
            "after the rolling window fills with bad champion errors, the fallback serves"
        );
        assert!(policy.switches() >= 1);
        let (champ, fall) = policy.served_counts();
        assert!(champ > 0 && fall > 0);
    }

    #[test]
    fn guardrail_ratio_clamped_to_at_least_one() {
        let champion = Scripted { factor: 1.0 };
        let fallback = Scripted { factor: 1.0 };
        let policy = GuardedServing::new(&champion, &fallback, 3, 0.1);
        assert_eq!(policy.guardrail_ratio, 1.0);
    }

    #[test]
    fn cold_start_serves_champion() {
        let champion = Scripted { factor: 2.0 }; // terrible, but unknown yet
        let fallback = Scripted { factor: 1.0 };
        let mut policy = GuardedServing::new(&champion, &fallback, 10, 1.2);
        let (_, served) = policy.serve(&[], 0, false);
        assert_eq!(served, Served::Champion, "no evidence yet -> champion");
    }
}
