//! # gallery-forecast
//!
//! The Marketplace-Forecasting substrate of the Gallery reproduction
//! (§4.2 of the paper). Uber's production demand traces and SparkML/TF
//! model stack are proprietary; this crate provides the closest synthetic
//! equivalents, built from scratch:
//!
//! - [`citygen`] — per-city demand generator with daily/weekly
//!   seasonality, market growth, noise, and injectable event windows
//!   (holidays / transit outages);
//! - [`models`] — a model zoo spanning the paper's model-class evolution:
//!   the mean-of-last-5 heuristic, EWMA, seasonal-naive, ridge regression
//!   (normal equations), CART regression trees, and bagged random forests,
//!   each with an event-aware variant where features allow;
//! - [`eval`] — MAPE/MAE/RMSE/bias/R² metrics and rolling one-step-ahead
//!   backtesting;
//! - [`fleet`] — the Gallery integration: train per-city instances,
//!   serialize to opaque blobs, upload with reproducibility metadata, and
//!   record validation metrics.

pub mod citygen;
pub mod eval;
pub mod features;
pub mod fleet;
pub mod linalg;
pub mod models;
pub mod series;
pub mod serving;

pub use citygen::{city_fleet, CityConfig, EventWindow};
pub use eval::{backtest, backtest_where, evaluate, EvalReport, Metric};
pub use features::FeatureSpec;
pub use fleet::{FleetError, FleetTrainer, TrainedEntry};
pub use models::{
    AnyForecaster, Ewma, Forecaster, MeanOfLastK, ModelError, RandomForest, RegressionTree,
    RidgeForecaster, SeasonalNaive,
};
pub use series::TimeSeries;
pub use serving::{GuardedServing, Served};
